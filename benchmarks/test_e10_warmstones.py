"""E10 — The WARMstones scorecard and scheduler-selection table (Section 4.3)."""

from __future__ import annotations

from repro.experiments import e10_warmstones


def test_e10_warmstones_scorecard(run_once, show_table):
    result = run_once(lambda: e10_warmstones.run(seed=10))
    show_table("E10: best mapper per (graph, system)", result.winner_rows())

    # The scorecard covers the full benchmark-suite x systems x mappers grid.
    assert len(result.entries) == 6 * 3 * 4
    assert len(result.winners) == 6 * 3
    # Shape: heterogeneous systems are where cost-aware mappers earn their
    # keep; on the homogeneous single cluster the choice barely matters.
    heterogeneous_winners = {
        mapper for (graph, system), mapper in result.winners.items() if system != "cluster"
    }
    assert heterogeneous_winners & {"min-min", "max-min", "heft"}
    # The off-line selection table gives a near-best recommendation for a
    # held-out application ("look up the closest matches ... to find a
    # scheduler which should work well for me").
    assert result.lookup_regret < 1.5
