"""E1 — Figure 1: the scheduling-entity hierarchy (users, meta-, machine-, node schedulers)."""

from __future__ import annotations

from repro.experiments import e01_entities


def test_e01_entity_hierarchy(run_once, show_table):
    result = run_once(
        lambda: e01_entities.run(
            sites=2, machine_size=128, local_jobs_per_site=400, meta_jobs=80, load=0.6, seed=1
        )
    )
    show_table("E1: jobs routed through each scheduling entity (Figure 1)", result.rows())

    # Every machine scheduler handled both local and meta work, and the meta
    # scheduler placed every meta job it accepted on some site.
    assert all(count > 0 for count in result.local_jobs_per_site.values())
    assert all(count > 0 for count in result.meta_jobs_per_site.values())
    assert result.meta_jobs_total > 0
    assert sum(result.meta_jobs_per_site.values()) >= result.meta_jobs_total
    assert result.coallocated_jobs > 0
