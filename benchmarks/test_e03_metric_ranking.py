"""E3 — Metric-dependent scheduler ranking across a load sweep (Section 1.2, ref [30])."""

from __future__ import annotations

from repro.experiments import e03_metric_ranking


def test_e03_metric_dependent_ranking(run_once, show_table):
    result = run_once(
        lambda: e03_metric_ranking.run(jobs=1500, machine_size=128, loads=(0.5, 0.7, 0.9), seed=3)
    )
    show_table("E3: response-time vs bounded-slowdown ranking per load", result.rows())

    # Shape: backfilling dominates FCFS on bounded slowdown, by a factor that
    # grows with load (the classic backfilling result).
    for load in result.loads:
        reports = {r.scheduler: r for r in result.reports[load]}
        assert (
            reports["easy-backfill"].mean_bounded_slowdown
            <= reports["fcfs"].mean_bounded_slowdown
        )
    assert result.backfilling_speedup_over_fcfs(0.9) > 2.0
    assert result.backfilling_speedup_over_fcfs(0.9) > result.backfilling_speedup_over_fcfs(0.5)

    # Shape: the two metrics do not always induce the same ranking (the
    # paper's motivating observation for standardizing the objective).
    assert result.rankings_ever_disagree() or min(result.ranking_agreement.values()) < 1.0
