"""E4 — Objective-weight sensitivity of the scheduler ranking (ref [41], Krallmann et al.)."""

from __future__ import annotations

from repro.experiments import e04_objective_weights


def test_e04_objective_weight_sensitivity(run_once, show_table):
    result = run_once(
        lambda: e04_objective_weights.run(jobs=1500, machine_size=128, load=0.8, seed=4)
    )
    show_table("E4: winning policy per objective weighting", result.rows())

    # Shape: changing only the weights changes which policy wins.
    assert result.distinct_winners() >= 2
    # A user-centric weighting and a system-centric weighting are both present
    # and produce complete rankings over the same five policies.
    for ranking in result.rankings.values():
        assert len(ranking) == 5
