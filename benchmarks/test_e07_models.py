"""E7 — Workload models side by side with an archive-like reference (Section 2.1, ref [58])."""

from __future__ import annotations

from repro.experiments import e07_models


def test_e07_model_comparison(run_once, show_table):
    result = run_once(lambda: e07_models.run(jobs=2000, machine_size=128, load=0.7, seed=7))
    show_table("E7: workload models vs archive-like reference", result.rows())

    ordering = result.models_ordered_by_distance()
    # Shape: a measurement-based model is the most representative; the naive
    # guesswork baseline never is, and Lublin sits in the top two (the Talby
    # et al. co-plot finding the paper cites).
    assert ordering[0] != "uniform-naive"
    assert "lublin99" in ordering[:2]
    # Every workload was also pushed through the scheduler, so the table links
    # workload statistics to the scheduling results they produce.
    assert len(result.scheduling) == len(result.statistics) == 6
