"""Ablation — gang-scheduling multiprogramming level (DESIGN.md, design-choice ablations).

Gang scheduling trades wait time for stretched runtimes; the knob is the
multiprogramming level (number of Ousterhout-matrix slots).  This ablation
sweeps the level on one workload and compares against EASY backfilling,
reproducing the space-slicing versus time-slicing discussion of Section 2.2
("Including the internal job structure" / the sigmetrics comparison the paper
recalls).
"""

from __future__ import annotations

from repro.evaluation import simulate
from repro.metrics import compute_metrics
from repro.schedulers import EasyBackfillScheduler, simulate_gang
from repro.workloads import Lublin99Model


def test_ablation_gang_multiprogramming_level(run_once, show_table):
    def run():
        workload = Lublin99Model(machine_size=128).generate_with_load(1200, 0.75, seed=14)
        out = {}
        out["easy-backfill"] = compute_metrics(
            simulate(workload, EasyBackfillScheduler(), machine_size=128)
        )
        for slots in (1, 2, 4, 8):
            out[f"gang-{slots}"] = compute_metrics(
                simulate_gang(workload, machine_size=128, max_slots=slots)
            )
        return out

    reports = run_once(run)

    rows = [
        {
            "policy": name,
            "mean_wait": round(report.mean_wait, 1),
            "mean_response": round(report.mean_response, 1),
            "mean_bounded_slowdown": round(report.mean_bounded_slowdown, 2),
            "utilization": round(report.utilization, 3),
        }
        for name, report in reports.items()
    ]
    show_table("Ablation: gang-scheduling multiprogramming level vs EASY", rows)

    # More slots monotonically cut the time jobs spend waiting for a slot...
    waits = [reports[f"gang-{slots}"].mean_wait for slots in (1, 2, 4, 8)]
    assert all(b <= a * 1.05 for a, b in zip(waits, waits[1:]))
    # ...and with several slots gang scheduling waits less than space sharing,
    # the classic time-slicing advantage (paid for in stretched runtimes).
    assert reports["gang-8"].mean_wait <= reports["easy-backfill"].mean_wait
    assert reports["gang-8"].mean_response >= reports["gang-8"].mean_wait
