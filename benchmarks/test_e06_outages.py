"""E6 — Outage impact: failures, maintenance, and outage-aware draining (Section 2.2)."""

from __future__ import annotations

from repro.experiments import e06_outages


def test_e06_outage_impact(run_once, show_table):
    result = run_once(
        lambda: e06_outages.run(jobs=1200, machine_size=128, load=0.7, mtbf_days=3.0, seed=6)
    )
    show_table("E6: scheduler metrics under outage configurations", result.rows())

    reports = result.reports
    # Shape: unannounced failures kill jobs and waste capacity relative to the
    # idealized no-outage evaluation.
    assert result.outage_kills["unannounced-failures"] > 0
    assert reports["unannounced-failures"].utilization <= reports["no-outages"].utilization
    assert reports["unannounced-failures"].makespan >= reports["no-outages"].makespan
    # Shape: draining ahead of announced maintenance eliminates almost all of
    # the kills the outage-blind scheduler suffers (jobs that were already
    # running when the window was announced can still be caught).
    blind = result.outage_kills["maintenance-blind"]
    drained = result.outage_kills["maintenance-drained"]
    assert drained < blind
    assert drained <= max(1, int(0.2 * blind))
