"""E2 — SWF conformance: parse / validate / write round trip over the synthetic archives."""

from __future__ import annotations

from repro.experiments import e02_swf_roundtrip


def test_e02_swf_conformance(run_once, show_table):
    result = run_once(lambda: e02_swf_roundtrip.run(jobs_per_archive=2500, seed=11))
    show_table("E2: SWF conformance per synthetic archive", result.rows())

    assert result.all_pass
    assert set(result.archives) == {"nasa-ipsc", "ctc-sp2", "sdsc-paragon", "lanl-cm5"}
    for name in result.archives:
        assert result.jobs[name] == 2500
        assert result.clean[name]
        assert result.round_trip_exact[name]
        assert result.dense_ids[name]
