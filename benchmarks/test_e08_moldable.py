"""E8 — Moldable job scheduling with the Downey speedup model (Section 2.1, flexible jobs)."""

from __future__ import annotations

from repro.experiments import e08_moldable


def test_e08_moldable_scheduling(run_once, show_table):
    result = run_once(
        lambda: e08_moldable.run(jobs=800, machine_size=128, loads=(0.5, 0.8), seed=8)
    )
    show_table("E8: rigid vs adaptive (moldable) scheduling", result.rows())

    # Shape: adaptivity matters most at high load; at the top of the sweep the
    # adaptive policy is at least competitive with rigid EASY and clearly
    # ahead of rigid FCFS.
    high = max(result.loads)
    reports = result.reports[high]
    assert reports["moldable-adaptive"].mean_response <= reports["fcfs"].mean_response
    assert result.adaptive_gain_over_rigid_easy(high) > 0.8
    # The adaptive policy really does choose its own allocations.
    assert result.mean_adaptive_allocation[high] > 0
