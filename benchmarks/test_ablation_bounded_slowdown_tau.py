"""Ablation — the bounded-slowdown threshold tau (DESIGN.md, design-choice ablations).

The bounded-slowdown metric needs an interactivity threshold; the literature
uses 10 s or 60 s.  This ablation evaluates the same three policies on the
same workload under both thresholds and reports how much the metric values —
and potentially the ranking — move, which is exactly the kind of sensitivity
the paper wants evaluations to be explicit about.
"""

from __future__ import annotations

from repro.evaluation import compare_schedulers
from repro.metrics import rank_schedulers
from repro.schedulers import (
    ConservativeBackfillScheduler,
    EasyBackfillScheduler,
    FCFSScheduler,
)
from repro.workloads import Lublin99Model


def test_ablation_bounded_slowdown_threshold(run_once, show_table):
    def run():
        workload = Lublin99Model(machine_size=128).generate_with_load(1500, 0.8, seed=13)
        policies = [FCFSScheduler(), EasyBackfillScheduler(), ConservativeBackfillScheduler()]
        out = {}
        for tau in (10.0, 60.0):
            rows = compare_schedulers(workload, policies, machine_size=128, tau=tau)
            out[tau] = [row.report for row in rows]
        return out

    reports_by_tau = run_once(run)

    rows = []
    for tau, reports in reports_by_tau.items():
        for report in reports:
            rows.append(
                {
                    "tau": tau,
                    "scheduler": report.scheduler,
                    "mean_bounded_slowdown": round(report.mean_bounded_slowdown, 2),
                    "p90_bounded_slowdown": round(report.p90_bounded_slowdown, 2),
                }
            )
    show_table("Ablation: bounded-slowdown threshold (tau = 10 s vs 60 s)", rows)

    for reports in reports_by_tau.values():
        by_name = {r.scheduler: r for r in reports}
        # Backfilling dominates FCFS regardless of the threshold...
        assert by_name["easy-backfill"].mean_bounded_slowdown <= by_name["fcfs"].mean_bounded_slowdown
    # ...but the threshold changes the magnitude: a larger tau damps the
    # contribution of very short jobs, so values shrink.
    for scheduler in ("fcfs", "easy-backfill", "conservative-backfill"):
        v10 = next(r for r in reports_by_tau[10.0] if r.scheduler == scheduler)
        v60 = next(r for r in reports_by_tau[60.0] if r.scheduler == scheduler)
        assert v60.mean_bounded_slowdown <= v10.mean_bounded_slowdown
