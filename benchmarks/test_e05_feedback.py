"""E5 — Feedback: open versus closed (dependency-honouring) replay (Section 2.2)."""

from __future__ import annotations

from repro.experiments import e05_feedback


def test_e05_open_vs_closed_replay(run_once, show_table):
    result = run_once(
        lambda: e05_feedback.run(jobs=1200, machine_size=128, loads=(0.6, 0.9, 1.1), seed=5)
    )
    show_table("E5: open vs closed replay across offered load", result.rows())

    assert result.dependent_fraction > 0.3
    assert result.sessions > 0
    # Shape: ignoring feedback consistently overstates waits — the closed
    # replay self-throttles, so its mean wait sits below the open replay's at
    # every load, with a substantial gap at and beyond saturation.
    for load in result.loads:
        assert result.divergence_at(load) >= 1.0
    assert result.divergence_at(max(result.loads)) > 1.3
