"""E9 — Metacomputing: prediction accuracy, reservations, and co-allocation (Sections 3-4)."""

from __future__ import annotations

from repro.experiments import e09_grid


def test_e09_grid_scheduling(run_once, show_table):
    result = run_once(
        lambda: e09_grid.run(
            sites=4,
            machine_size=128,
            local_jobs_per_site=250,
            meta_jobs=120,
            local_load=0.6,
            coallocation_fraction=0.3,
            seed=9,
        )
    )
    show_table("E9: meta-scheduling configurations", result.rows())
    show_table("E9: queue-wait predictor accuracy", result.predictor_rows())

    rows = {row["configuration"]: row for row in result.rows()}
    # Shape: advance reservations are what makes co-allocation dependable —
    # more co-allocations complete and fewer meta jobs starve.
    for policy in ("least-loaded", "earliest-start"):
        assert (
            rows[f"{policy}/reservations"]["meta_unfinished"]
            <= rows[f"{policy}/no-reservations"]["meta_unfinished"]
        )
        assert (
            rows[f"{policy}/reservations"]["coallocations_done"]
            >= rows[f"{policy}/no-reservations"]["coallocations_done"]
        )

    # Shape: predictors are scored on every single-site meta job, and the
    # informed (profile / category) families are reported alongside the
    # naive mean — the table EXPERIMENTS.md records.
    predictor_rows = result.predictor_rows()
    assert {row["predictor"] for row in predictor_rows} == {
        "mean-wait",
        "category-mean",
        "profile",
    }
    assert all(row["samples"] > 0 for row in predictor_rows)
