"""Shared helpers for the benchmark harness.

Each benchmark regenerates one experiment of the paper (see DESIGN.md,
"Experiment index") through the corresponding :mod:`repro.experiments`
harness.  Benchmarks run each experiment exactly once (``rounds=1``): the
quantity of interest is the table the experiment produces, not a
micro-benchmark timing distribution, and a single run of the larger
experiments already takes seconds.
"""

from __future__ import annotations

import pytest

from repro.evaluation import format_table


@pytest.fixture
def run_once(benchmark):
    """Run a zero-argument callable exactly once under pytest-benchmark."""

    def _run(fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)

    return _run


@pytest.fixture
def show_table():
    """Print an experiment table (visible with ``pytest -s`` and in EXPERIMENTS.md)."""

    def _show(title, rows, columns=None):
        print(f"\n=== {title} ===")
        print(format_table(rows, columns=columns))

    return _show
