"""Setuptools shim.

The project metadata lives in pyproject.toml; this file exists so that
``pip install -e .`` works with the legacy (non-PEP-660) editable-install
path available in offline environments that lack the ``wheel`` package.
"""

from setuptools import setup

setup()
