"""The Downey '97 workload model (flexible jobs described by speedup curves).

Downey, "A parallel workload model and its implications for processor
allocation" (HPDC 1997), describes jobs not by a fixed (size, runtime) pair
but by their **total sequential work** and a **speedup function** with two
parameters: the average parallelism ``A`` and the variance-of-parallelism
parameter ``sigma``.  From the SDSC and CTC logs he reports:

* cumulative (sequential-equivalent) runtimes are approximately
  **log-uniform** over a wide range,
* average parallelism is approximately **log-uniform** between 1 and the
  machine size,
* sigma is small (mostly below 2).

The model serves two purposes in this repository:

* :meth:`Downey97Model.generate` produces a *rigid* workload (each job gets
  the processor count a typical user would request: its average parallelism,
  rounded to a power of two), so the model can be compared head-to-head with
  the rigid models in experiment E7;
* :meth:`Downey97Model.generate_moldable` additionally returns the
  :class:`~repro.workloads.speedup.MoldableJob` descriptions, which is what
  the moldable-scheduling experiment (E8) consumes — there the *scheduler*
  chooses each job's allocation from its speedup curve.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.api.registry import register_model
from repro.core.swf.workload import Workload
from repro.simulation.distributions import LogUniform, make_rng
from repro.workloads.base import (
    PoissonArrivals,
    UserPopulation,
    WorkloadModel,
    assemble_workload,
    round_to_power_of_two,
)
from repro.workloads.speedup import DowneySpeedup, MoldableJob

__all__ = ["Downey97Model"]


@register_model("downey97")
class Downey97Model(WorkloadModel):
    """Log-uniform work and parallelism, Downey speedup curves."""

    name = "downey97"

    def __init__(
        self,
        machine_size: int = 128,
        mean_interarrival: float = 900.0,
        min_work_seconds: float = 60.0,
        max_work_seconds: float = 500_000.0,
        max_sigma: float = 2.0,
        users: int = 60,
    ) -> None:
        super().__init__(machine_size)
        if min_work_seconds <= 0 or max_work_seconds <= min_work_seconds:
            raise ValueError("work bounds must satisfy 0 < min < max")
        if max_sigma < 0:
            raise ValueError("max_sigma must be non-negative")
        self.mean_interarrival = mean_interarrival
        self.work_distribution = LogUniform(min_work_seconds, max_work_seconds)
        self.parallelism_distribution = LogUniform(1.0, float(machine_size))
        self.max_sigma = max_sigma
        self.population = UserPopulation(users=users)

    # ------------------------------------------------------------------
    def _sample_job(self, rng: np.random.Generator) -> Tuple[float, DowneySpeedup, int]:
        """(sequential work, speedup model, rigid processor request)."""
        work = self.work_distribution.sample(rng)
        A = max(1.0, self.parallelism_distribution.sample(rng))
        sigma = float(rng.uniform(0.0, self.max_sigma))
        speedup = DowneySpeedup(A=A, sigma=sigma)
        rigid_request = round_to_power_of_two(A, self.machine_size)
        return work, speedup, rigid_request

    def generate(self, jobs: int, seed: Optional[int] = None) -> Workload:
        workload, _ = self.generate_moldable(jobs, seed=seed)
        return workload

    def generate_moldable(
        self, jobs: int, seed: Optional[int] = None
    ) -> Tuple[Workload, Dict[int, MoldableJob]]:
        """Generate the rigid workload plus per-job moldable descriptions.

        The moldable descriptions are keyed by the SWF job number of the
        returned workload, so a moldable scheduling policy can look up each
        queued job's speedup curve.
        """
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        rng = make_rng(seed)

        arrivals = PoissonArrivals(self.mean_interarrival).generate(rng, jobs)
        order = np.argsort(arrivals, kind="stable")

        sizes: List[int] = []
        runtimes: List[float] = []
        descriptions: List[Tuple[float, DowneySpeedup]] = []
        for _ in range(jobs):
            work, speedup, rigid_request = self._sample_job(rng)
            runtime = work / speedup.speedup(rigid_request)
            sizes.append(rigid_request)
            runtimes.append(max(1.0, runtime))
            descriptions.append((work, speedup))

        users, groups, executables = self.population.assign(rng, jobs)
        estimates = [r * float(rng.uniform(1.5, 8.0)) for r in runtimes]
        workload = assemble_workload(
            name=self.name,
            computer="synthetic space-shared machine (Downey 97 model)",
            machine_size=self.machine_size,
            arrivals=arrivals,
            sizes=sizes,
            runtimes=runtimes,
            estimates=estimates,
            users=users,
            groups=groups,
            executables=executables,
            notes=[
                "Downey 1997 model: log-uniform sequential work and average parallelism, "
                "Downey speedup curves; rigid requests use the average parallelism."
            ],
        )
        # assemble_workload sorts by arrival, which matches `order`; map the
        # moldable descriptions to the final job numbers accordingly.
        moldable: Dict[int, MoldableJob] = {}
        for new_number, original_index in enumerate(order, start=1):
            work, speedup = descriptions[int(original_index)]
            moldable[new_number] = MoldableJob(
                job_id=new_number,
                sequential_work=work,
                speedup_model=speedup,
                max_processors=self.machine_size,
            )
        return workload, moldable
