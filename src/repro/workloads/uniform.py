"""A naive baseline workload model (the "guesswork" the paper warns about).

Before real data was available, evaluations used simple guesses: uniformly
distributed job sizes, exponential runtimes and interarrival times, no
correlations, no daily cycle, no power-of-two emphasis.  This model exists as
the contrast case for experiment E7 — its summary statistics differ markedly
from both the archive-like traces and the measurement-based models, which is
exactly the paper's argument for standardizing on representative workloads.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.api.registry import register_model
from repro.core.swf.workload import Workload
from repro.simulation.distributions import make_rng
from repro.workloads.base import PoissonArrivals, UserPopulation, WorkloadModel, assemble_workload

__all__ = ["UniformModel"]


@register_model("uniform")
class UniformModel(WorkloadModel):
    """Uniform sizes, exponential runtimes, Poisson arrivals, no structure."""

    name = "uniform-naive"

    def __init__(
        self,
        machine_size: int = 128,
        mean_interarrival: float = 2600.0,
        mean_runtime: float = 3600.0,
        max_size_fraction: float = 1.0,
        users: int = 60,
    ) -> None:
        super().__init__(machine_size)
        if mean_runtime <= 0:
            raise ValueError("mean_runtime must be positive")
        if not 0 < max_size_fraction <= 1.0:
            raise ValueError("max_size_fraction must be in (0, 1]")
        self.mean_interarrival = mean_interarrival
        self.mean_runtime = mean_runtime
        self.max_size = max(1, int(machine_size * max_size_fraction))
        self.population = UserPopulation(users=users)

    def generate(self, jobs: int, seed: Optional[int] = None) -> Workload:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        rng = make_rng(seed)
        arrivals = PoissonArrivals(self.mean_interarrival).generate(rng, jobs)
        sizes = rng.integers(1, self.max_size + 1, size=jobs)
        runtimes = np.maximum(1.0, rng.exponential(self.mean_runtime, size=jobs))
        users, groups, executables = self.population.assign(rng, jobs)
        estimates = runtimes * rng.uniform(1.5, 8.0, size=jobs)
        return assemble_workload(
            name=self.name,
            computer="hypothetical machine (naive uniform model)",
            machine_size=self.machine_size,
            arrivals=arrivals,
            sizes=sizes,
            runtimes=runtimes,
            estimates=estimates,
            users=users,
            groups=groups,
            executables=executables,
            notes=["Naive baseline model: uniform sizes, exponential runtimes, Poisson arrivals."],
        )
