"""The Jann et al. '97 rigid-job workload model (hyper-Erlang fits per size class).

Jann, Pattnaik, Franke, Wang, Skovira & Riodan, "Modeling of workload in
MPPs" (JSSPP 1997), model the Cornell Theory Center SP2 trace by splitting
jobs into size classes aligned with powers of two (1, 2, 3-4, 5-8, ...,
129-256) and fitting a **hyper-Erlang distribution of common order** to the
interarrival times and to the service times of each class, matching the
first three moments of the observed data.

We reproduce the structure: per-class job fractions that decay with size,
and per-class hyper-Erlang interarrival and runtime distributions whose
means scale the way the CTC fits do (larger classes are rarer but run
longer).  The published 30-odd coefficients are not reproduced digit for
digit — the archive is unavailable offline — but the generator keeps the
model's defining property: each size class is its own independent arrival
stream with heavy-tailed, hyper-Erlang-shaped times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.api.registry import register_model
from repro.core.swf.workload import Workload
from repro.simulation.distributions import HyperErlang, make_rng
from repro.workloads.base import UserPopulation, WorkloadModel, assemble_workload

__all__ = ["Jann97Model", "SizeClass"]


@dataclass(frozen=True)
class SizeClass:
    """One power-of-two-aligned size class of the Jann model."""

    low: int
    high: int
    weight: float
    mean_runtime: float
    runtime_cv: float
    name: str = ""

    def sample_size(self, rng: np.random.Generator) -> int:
        if self.low == self.high:
            return self.low
        return int(rng.integers(self.low, self.high + 1))


def _default_classes(machine_size: int) -> List[SizeClass]:
    """Size classes 1, 2, 3-4, 5-8, ... up to the machine size.

    Weights decay geometrically with the class index and runtimes grow with
    it, which is the qualitative shape of the CTC SP2 fits.
    """
    classes: List[SizeClass] = []
    boundaries: List[Tuple[int, int]] = [(1, 1), (2, 2)]
    low = 3
    while low <= machine_size:
        high = min(2 * (low - 1), machine_size)
        boundaries.append((low, high))
        low = high + 1
    base_weight = 1.0
    for index, (lo, hi) in enumerate(boundaries):
        weight = base_weight * (0.62 ** index)
        mean_runtime = 1200.0 * (1.55 ** index)
        classes.append(
            SizeClass(
                low=lo,
                high=hi,
                weight=weight,
                mean_runtime=mean_runtime,
                runtime_cv=2.5,
                name=f"{lo}-{hi}",
            )
        )
    return classes


def _hyper_erlang_for(mean: float, cv: float, order: int = 2) -> HyperErlang:
    """Two-branch hyper-Erlang of the given order matching a mean and CV > 1.

    The two branches share the order; one is fast and common, the other slow
    and rare, with the probability and rates chosen so the mixture hits the
    requested mean and (approximately) the requested coefficient of
    variation.  This mirrors how Jann et al. use hyper-Erlangs: a compact
    parametric family able to express CV above and below one.
    """
    if mean <= 0:
        raise ValueError("mean must be positive")
    if cv <= 1.0:
        # A single Erlang branch has CV = 1/sqrt(order) <= 1; use it directly.
        rate = order / mean
        return HyperErlang(probs=(1.0,), rates=(rate,), order=order)
    # Branch means m1 = mean/3 (fast) and m2 chosen so p*m1 + (1-p)*m2 = mean
    # with p set by the dispersion; heavier CV pushes more weight to the tail.
    p = min(0.95, 1.0 - 1.0 / (cv * cv + 1.0))
    m1 = mean / 3.0
    m2 = (mean - p * m1) / (1.0 - p)
    return HyperErlang(probs=(p, 1.0 - p), rates=(order / m1, order / m2), order=order)


@register_model("jann97")
class Jann97Model(WorkloadModel):
    """Per-size-class hyper-Erlang model of arrivals and runtimes."""

    name = "jann97"

    def __init__(
        self,
        machine_size: int = 128,
        mean_interarrival: float = 1050.0,
        classes: Optional[List[SizeClass]] = None,
        erlang_order: int = 2,
        users: int = 60,
    ) -> None:
        super().__init__(machine_size)
        self.mean_interarrival = mean_interarrival
        self.classes = classes if classes is not None else _default_classes(machine_size)
        if not self.classes:
            raise ValueError("at least one size class is required")
        self.erlang_order = erlang_order
        self.population = UserPopulation(users=users)

    def generate(self, jobs: int, seed: Optional[int] = None) -> Workload:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        rng = make_rng(seed)

        weights = np.asarray([c.weight for c in self.classes], dtype=float)
        weights = weights / weights.sum()
        per_class_counts = rng.multinomial(jobs, weights)

        arrivals: List[float] = []
        sizes: List[int] = []
        runtimes: List[float] = []
        for size_class, count in zip(self.classes, per_class_counts):
            if count == 0:
                continue
            # Each class is an independent arrival stream; its mean gap is the
            # overall mean interarrival scaled up by the inverse of its share
            # of the jobs, so the merged stream keeps the requested rate.
            class_mean_gap = self.mean_interarrival * per_class_counts.sum() / count
            gap_dist = _hyper_erlang_for(class_mean_gap, cv=1.8, order=self.erlang_order)
            runtime_dist = _hyper_erlang_for(
                size_class.mean_runtime, size_class.runtime_cv, order=self.erlang_order
            )
            t = float(gap_dist.sample(rng))
            for _ in range(count):
                arrivals.append(t)
                sizes.append(size_class.sample_size(rng))
                runtimes.append(max(1.0, float(runtime_dist.sample(rng))))
                t += float(gap_dist.sample(rng))

        users, groups, executables = self.population.assign(rng, len(arrivals))
        estimates = [r * float(rng.uniform(1.5, 8.0)) for r in runtimes]
        return assemble_workload(
            name=self.name,
            computer="synthetic IBM SP2 (Jann 97 model)",
            machine_size=self.machine_size,
            arrivals=arrivals,
            sizes=sizes,
            runtimes=runtimes,
            estimates=estimates,
            users=users,
            groups=groups,
            executables=executables,
            notes=[
                "Jann et al. 1997 model: per-size-class hyper-Erlang interarrival and runtime distributions."
            ],
        )
