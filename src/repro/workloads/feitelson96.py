"""The Feitelson '96 rigid-job workload model.

Feitelson, "Packing schemes for gang scheduling" (JSSPP 1996) introduced one
of the first workload models derived from multiple accounting logs.  Its
defining features, reproduced here:

* **job sizes** follow a harmonic-like distribution (small jobs are much more
  common than large ones) with strong *emphasis on powers of two* and on a
  few "interesting" sizes (1, full machine);
* **runtimes** are hyper-exponential with the branch probability tied to the
  job size, producing the observed positive correlation between size and
  runtime;
* **repeated runs**: the same job (size and runtime template) is executed
  several times in a row, reflecting users iterating on an application;
* **arrivals** are Poisson (the original model concentrates on packing, not
  on the arrival process).

Exact parameter values from the original paper are approximated; what the
downstream experiments rely on is the structural shape (size emphasis on
powers of two, size-runtime correlation, repetition), which is preserved.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.api.registry import register_model
from repro.core.swf.workload import Workload
from repro.simulation.distributions import make_rng
from repro.workloads.base import (
    PoissonArrivals,
    UserPopulation,
    WorkloadModel,
    assemble_workload,
    round_to_power_of_two,
)

__all__ = ["Feitelson96Model"]


@register_model("feitelson96")
class Feitelson96Model(WorkloadModel):
    """Rigid-job model with power-of-two size emphasis and size-correlated runtimes."""

    name = "feitelson96"

    def __init__(
        self,
        machine_size: int = 128,
        mean_interarrival: float = 7200.0,
        power_of_two_probability: float = 0.75,
        repetition_probability: float = 0.6,
        max_repetitions: int = 8,
        mean_short_runtime: float = 600.0,
        mean_long_runtime: float = 8 * 3600.0,
        users: int = 60,
    ) -> None:
        super().__init__(machine_size)
        if not 0 <= power_of_two_probability <= 1:
            raise ValueError("power_of_two_probability must be in [0, 1]")
        if not 0 <= repetition_probability < 1:
            raise ValueError("repetition_probability must be in [0, 1)")
        self.mean_interarrival = mean_interarrival
        self.power_of_two_probability = power_of_two_probability
        self.repetition_probability = repetition_probability
        self.max_repetitions = max(1, max_repetitions)
        self.mean_short_runtime = mean_short_runtime
        self.mean_long_runtime = mean_long_runtime
        self.population = UserPopulation(users=users)

    # ------------------------------------------------------------------
    def _sample_size(self, rng: np.random.Generator) -> int:
        """Harmonic-ish size with power-of-two emphasis and endpoints boosted."""
        max_log = int(np.floor(np.log2(self.machine_size)))
        u = rng.random()
        if u < 0.15:
            return 1  # serial jobs are common in every log
        if u < 0.20:
            return self.machine_size  # full-machine runs
        # Log-uniform base size...
        size = float(2 ** rng.uniform(0, max_log))
        if rng.random() < self.power_of_two_probability:
            return round_to_power_of_two(size, self.machine_size)
        return max(1, min(int(round(size)), self.machine_size))

    def _sample_runtime(self, rng: np.random.Generator, size: int) -> float:
        """Hyper-exponential runtime whose long branch is likelier for big jobs."""
        size_fraction = np.log2(max(size, 1) + 1) / np.log2(self.machine_size + 1)
        p_long = 0.2 + 0.5 * size_fraction
        if rng.random() < p_long:
            return rng.exponential(self.mean_long_runtime)
        return rng.exponential(self.mean_short_runtime)

    def generate(self, jobs: int, seed: Optional[int] = None) -> Workload:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        rng = make_rng(seed)

        sizes: List[int] = []
        runtimes: List[float] = []
        while len(sizes) < jobs:
            size = self._sample_size(rng)
            runtime = max(1.0, self._sample_runtime(rng, size))
            repetitions = 1
            if rng.random() < self.repetition_probability:
                repetitions = int(rng.integers(2, self.max_repetitions + 1))
            for _ in range(min(repetitions, jobs - len(sizes))):
                sizes.append(size)
                # Repeated runs vary a little in runtime (new inputs, small edits).
                jitter = float(rng.normal(loc=1.0, scale=0.1))
                runtimes.append(max(1.0, runtime * max(jitter, 0.1)))

        arrivals = PoissonArrivals(self.mean_interarrival).generate(rng, jobs)
        users, groups, executables = self.population.assign(rng, jobs)
        # Users over-estimate runtimes by a factor of 2-10, as observed in logs.
        estimates = [r * float(rng.uniform(1.5, 10.0)) for r in runtimes]

        return assemble_workload(
            name=self.name,
            computer="synthetic 2-D mesh (Feitelson 96 model)",
            machine_size=self.machine_size,
            arrivals=arrivals,
            sizes=sizes,
            runtimes=runtimes,
            estimates=estimates,
            users=users,
            groups=groups,
            executables=executables,
            max_runtime=int(self.mean_long_runtime * 10),
            notes=["Feitelson 1996 rigid-job model: power-of-two sizes, correlated runtimes."],
        )
