"""Speedup models for flexible (moldable) jobs.

Section 2.1 describes flexible-job workload models that "provide data about
the total computation and the speedup function, instead of the required
number of processors and runtime", letting the scheduler choose the
allocation.  Two published speedup families are implemented:

* :class:`DowneySpeedup` — Downey's two-parameter model (average parallelism
  ``A`` and variance ``sigma``), the model behind his moldable-job workload
  and processor-allocation studies;
* :class:`AmdahlSpeedup` — the classic serial-fraction law, useful as a
  contrasting family in tests and ablations.

:class:`MoldableJob` couples a speedup model with a total amount of
sequential work and answers "how long does this job run on n processors",
which is what the moldable scheduling policy (experiment E8) needs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol

__all__ = ["SpeedupModel", "DowneySpeedup", "AmdahlSpeedup", "MoldableJob"]


class SpeedupModel(Protocol):
    """Anything that maps a processor count to a speedup factor."""

    def speedup(self, processors: int) -> float:  # pragma: no cover - protocol
        ...


@dataclass(frozen=True)
class DowneySpeedup:
    """Downey's speedup model.

    Parameters
    ----------
    A:
        Average parallelism of the application (>= 1).
    sigma:
        Coefficient of variation of parallelism.  ``sigma = 0`` gives ideal
        speedup up to ``A`` processors and flat beyond; larger values bend
        the curve earlier.  Downey reports workloads dominated by
        ``sigma <= 2``.

    The formulas follow Downey, "A parallel workload model and its
    implications for processor allocation" (1997): a low-variance regime
    (``sigma <= 1``) and a high-variance regime (``sigma > 1``), each defined
    piecewise in the processor count.
    """

    A: float
    sigma: float

    def __post_init__(self) -> None:
        if self.A < 1:
            raise ValueError("average parallelism A must be >= 1")
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative")

    def speedup(self, processors: int) -> float:
        """Speedup on ``processors`` processors (1 <= speedup <= A)."""
        n = float(processors)
        if n < 1:
            raise ValueError("processors must be >= 1")
        A, sigma = self.A, self.sigma
        if A == 1.0:
            return 1.0
        if sigma == 0:
            return min(n, A)
        if sigma <= 1.0:
            if n <= A:
                denom = A + sigma * (n - 1.0) / 2.0
                if n >= 2 * A - 1:  # defensive; cannot happen when n <= A and A >= 1
                    denom = sigma * (A - 0.5) + n * (1 - sigma / 2.0)
                s = A * n / denom
            elif n <= 2 * A - 1:
                s = A * n / (sigma * (A - 0.5) + n * (1.0 - sigma / 2.0))
            else:
                s = A
        else:
            boundary = A + A * sigma - sigma
            if n <= boundary:
                s = n * A * (sigma + 1.0) / (sigma * (n + A - 1.0) + A)
            else:
                s = A
        return max(1.0, min(s, A))

    def efficiency(self, processors: int) -> float:
        """Speedup divided by processor count."""
        return self.speedup(processors) / processors


@dataclass(frozen=True)
class AmdahlSpeedup:
    """Amdahl's law: ``1 / (f + (1 - f)/n)`` with serial fraction ``f``."""

    serial_fraction: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.serial_fraction <= 1.0:
            raise ValueError("serial_fraction must be in [0, 1]")

    def speedup(self, processors: int) -> float:
        n = float(processors)
        if n < 1:
            raise ValueError("processors must be >= 1")
        f = self.serial_fraction
        return 1.0 / (f + (1.0 - f) / n)

    def efficiency(self, processors: int) -> float:
        return self.speedup(processors) / processors


@dataclass(frozen=True)
class MoldableJob:
    """A flexible job: total sequential work plus a speedup model.

    ``runtime_on(n)`` is the wall-clock time on ``n`` processors; the
    scheduler is free to pick ``n`` anywhere in ``[1, max_processors]`` at
    start time (moldable, not malleable: the allocation cannot change later).
    """

    job_id: int
    sequential_work: float
    speedup_model: SpeedupModel
    max_processors: int

    def __post_init__(self) -> None:
        if self.sequential_work <= 0:
            raise ValueError("sequential_work must be positive")
        if self.max_processors < 1:
            raise ValueError("max_processors must be >= 1")

    def runtime_on(self, processors: int) -> float:
        """Wall-clock runtime on ``processors`` processors."""
        if not 1 <= processors <= self.max_processors:
            raise ValueError(
                f"processors must be in [1, {self.max_processors}], got {processors}"
            )
        return self.sequential_work / self.speedup_model.speedup(processors)

    def efficient_processors(self, efficiency_threshold: float = 0.5) -> int:
        """Largest processor count whose parallel efficiency meets the threshold."""
        if not 0 < efficiency_threshold <= 1.0:
            raise ValueError("efficiency_threshold must be in (0, 1]")
        best = 1
        for n in range(1, self.max_processors + 1):
            if self.speedup_model.speedup(n) / n >= efficiency_threshold:
                best = n
        return best
