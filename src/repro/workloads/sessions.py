"""Closed user-session workload generation (the feedback extension).

Section 2.2 argues that real arrivals are produced by users who wait for the
previous job to finish, think, and then submit the next one — a feedback loop
the SWF expresses through fields 17 (preceding job) and 18 (think time).
:class:`SessionModel` generates workloads with that structure explicitly:

* each user produces a sequence of *sessions*;
* within a session, consecutive jobs depend on each other: each carries its
  predecessor's number and an exponential think time;
* sessions are separated by long idle gaps (the user went home);
* job sizes/runtimes are delegated to any rigid workload model, so sessions
  can be layered on top of the Lublin, Feitelson, or Jann job mix.

The submit times recorded in the generated trace are the ones that would be
observed if every job started immediately (zero wait).  When the trace is
replayed **open** (absolute submit times), this timing is fixed regardless of
scheduler performance; when replayed **closed** (``honor_dependencies=True``
in the simulator), each dependent submittal slides with the completion of its
predecessor — reproducing the feedback effect experiment E5 measures.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.api.registry import register_model
from repro.core.swf.fields import MISSING
from repro.core.swf.header import SWFHeader
from repro.core.swf.records import SWFJob
from repro.core.swf.workload import Workload
from repro.simulation.distributions import make_rng
from repro.workloads.base import WorkloadModel
from repro.workloads.lublin99 import Lublin99Model

__all__ = ["SessionModel"]


@register_model("sessions")
class SessionModel(WorkloadModel):
    """Generate closed (session-structured) workloads with explicit dependencies."""

    name = "sessions"

    def __init__(
        self,
        machine_size: int = 128,
        job_model: Optional[WorkloadModel] = None,
        users: int = 40,
        mean_session_length: float = 4.0,
        mean_think_time: float = 600.0,
        mean_between_sessions: float = 8 * 3600.0,
    ) -> None:
        super().__init__(machine_size)
        if users < 1:
            raise ValueError("users must be >= 1")
        if mean_session_length < 1:
            raise ValueError("mean_session_length must be >= 1")
        if mean_think_time < 0 or mean_between_sessions < 0:
            raise ValueError("think/idle times must be non-negative")
        self.job_model = job_model if job_model is not None else Lublin99Model(machine_size)
        self.users = users
        self.mean_session_length = mean_session_length
        self.mean_think_time = mean_think_time
        self.mean_between_sessions = mean_between_sessions

    def generate(self, jobs: int, seed: Optional[int] = None) -> Workload:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        rng = make_rng(seed)

        # Draw the job mix (sizes, runtimes, executables) from the rigid model,
        # then re-time it with the session structure.
        template = self.job_model.generate(jobs, seed=None if seed is None else seed + 1)
        template_jobs = template.summary_jobs()

        per_user_jobs: List[List[SWFJob]] = [[] for _ in range(self.users)]
        for index, job in enumerate(template_jobs):
            per_user_jobs[index % self.users].append(job)

        records: List[SWFJob] = []
        job_counter = 0
        # Temporary numbering; a final renumber pass fixes job numbers and
        # dependency references once all users' jobs are merged and sorted.
        provisional: List[dict] = []
        for user_index, user_jobs in enumerate(per_user_jobs, start=1):
            if not user_jobs:
                continue
            t = float(rng.uniform(0, self.mean_between_sessions))
            position = 0
            while position < len(user_jobs):
                session_length = max(1, int(rng.geometric(1.0 / self.mean_session_length)))
                session_jobs = user_jobs[position : position + session_length]
                position += len(session_jobs)
                previous_key: Optional[int] = None
                previous_end = t
                for job in session_jobs:
                    think = float(rng.exponential(self.mean_think_time)) if previous_key is not None else 0.0
                    submit = previous_end + think
                    runtime = job.run_time if job.run_time != MISSING else 0
                    provisional.append(
                        {
                            "key": job_counter,
                            "submit": submit,
                            "job": job,
                            "user": user_index,
                            "preceding_key": previous_key,
                            "think": int(round(think)) if previous_key is not None else MISSING,
                        }
                    )
                    previous_key = job_counter
                    previous_end = submit + runtime  # zero-wait assumption
                    job_counter += 1
                t = previous_end + float(rng.exponential(self.mean_between_sessions))

        provisional.sort(key=lambda d: d["submit"])
        origin = provisional[0]["submit"] if provisional else 0.0
        key_to_number = {d["key"]: i + 1 for i, d in enumerate(provisional)}
        for i, d in enumerate(provisional, start=1):
            job = d["job"]
            preceding = (
                key_to_number[d["preceding_key"]] if d["preceding_key"] is not None else MISSING
            )
            records.append(
                job.replace(
                    job_number=i,
                    submit_time=int(round(d["submit"] - origin)),
                    user_id=d["user"],
                    preceding_job=preceding,
                    think_time=d["think"],
                )
            )

        header = SWFHeader.standard(
            computer=f"synthetic machine ({self.job_model.name} mix, session arrivals)",
            installation="synthetic model: sessions",
            max_nodes=self.machine_size,
            notes=[
                "Closed session model: fields 17/18 carry explicit dependencies; "
                "submit times assume zero wait (see repro.workloads.sessions).",
            ],
        )
        workload = Workload(records, header, name=f"sessions-{self.job_model.name}")
        return workload.sorted_by_submit().renumbered()
