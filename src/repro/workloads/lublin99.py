"""The Lublin '99 rigid-job workload model.

Lublin's Hebrew University master's thesis (cited by the paper as reference
[46]; later published as Lublin & Feitelson 2003) is the model the paper
singles out: "A statistical analysis shows that the one proposed by Lublin is
relatively representative of multiple workloads."  Its defining components,
reproduced here:

* **job type**: a job is interactive or batch with fixed probability; the two
  types differ in runtime scale and arrival intensity;
* **size**: with some probability the job is serial; otherwise the base-two
  logarithm of the size is drawn from a two-stage uniform distribution
  (producing the characteristic "mostly small, some large, strong
  power-of-two presence" histogram), and the result is rounded to a power of
  two with high probability;
* **runtime**: a two-stage hyper-Gamma distribution whose mixing probability
  depends linearly on the job size, giving the observed size-runtime
  correlation;
* **arrivals**: a daily cycle modulates the arrival rate (the original model
  uses a gamma fit per hour-of-day slot; we modulate a Poisson process by the
  same peak-to-trough cycle, which preserves the property that matters for
  scheduling: congestion builds during the daytime peak).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.api.registry import register_model
from repro.core.swf.workload import Workload
from repro.simulation.distributions import HyperGamma, make_rng
from repro.workloads.base import (
    DailyCycleArrivals,
    UserPopulation,
    WorkloadModel,
    assemble_workload,
    round_to_power_of_two,
)

__all__ = ["Lublin99Model"]


@register_model("lublin99")
class Lublin99Model(WorkloadModel):
    """Two-stage uniform log2-size, size-dependent hyper-Gamma runtime, daily cycle."""

    name = "lublin99"

    def __init__(
        self,
        machine_size: int = 128,
        mean_interarrival: float = 4400.0,
        interactive_probability: float = 0.3,
        serial_probability: float = 0.24,
        power_of_two_probability: float = 0.75,
        # two-stage uniform over log2(size): stage 1 is [lo, med], stage 2 [med, hi]
        size_stage_split: float = 0.7,
        runtime_shape1: float = 4.2,
        runtime_shape2: float = 0.78,
        runtime_scale_interactive: float = 60.0,
        runtime_scale_batch: float = 1800.0,
        peak_to_trough: float = 4.0,
        users: int = 60,
    ) -> None:
        super().__init__(machine_size)
        for name, p in (
            ("interactive_probability", interactive_probability),
            ("serial_probability", serial_probability),
            ("power_of_two_probability", power_of_two_probability),
            ("size_stage_split", size_stage_split),
        ):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        self.mean_interarrival = mean_interarrival
        self.interactive_probability = interactive_probability
        self.serial_probability = serial_probability
        self.power_of_two_probability = power_of_two_probability
        self.size_stage_split = size_stage_split
        self.runtime_shape1 = runtime_shape1
        self.runtime_shape2 = runtime_shape2
        self.runtime_scale_interactive = runtime_scale_interactive
        self.runtime_scale_batch = runtime_scale_batch
        self.peak_to_trough = peak_to_trough
        self.population = UserPopulation(users=users)

    # ------------------------------------------------------------------
    def _sample_size(self, rng: np.random.Generator) -> int:
        if rng.random() < self.serial_probability:
            return 1
        max_log = float(np.log2(self.machine_size))
        lo, med, hi = 0.7, max_log * 0.55, max_log
        if rng.random() < self.size_stage_split:
            log_size = rng.uniform(lo, med)
        else:
            log_size = rng.uniform(med, hi)
        size = 2.0 ** log_size
        if rng.random() < self.power_of_two_probability:
            return round_to_power_of_two(size, self.machine_size)
        return max(2, min(int(round(size)), self.machine_size))

    def _runtime_distribution(self, size: int, interactive: bool) -> HyperGamma:
        """Hyper-Gamma whose mixing probability depends linearly on the size.

        Larger jobs are more likely to draw from the long-runtime branch —
        the linear-dependence device Lublin introduced.
        """
        size_fraction = np.log2(max(size, 1) + 1) / np.log2(self.machine_size + 1)
        p_short = float(np.clip(0.85 - 0.6 * size_fraction, 0.05, 0.95))
        scale = (
            self.runtime_scale_interactive if interactive else self.runtime_scale_batch
        )
        return HyperGamma(
            p=p_short,
            shape1=self.runtime_shape1,
            scale1=scale / self.runtime_shape1,
            shape2=self.runtime_shape2,
            scale2=30.0 * scale / self.runtime_shape2,
        )

    def generate(self, jobs: int, seed: Optional[int] = None) -> Workload:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        rng = make_rng(seed)

        arrivals = DailyCycleArrivals(
            self.mean_interarrival, peak_to_trough=self.peak_to_trough
        ).generate(rng, jobs)

        sizes: List[int] = []
        runtimes: List[float] = []
        queues: List[int] = []
        for _ in range(jobs):
            interactive = rng.random() < self.interactive_probability
            size = self._sample_size(rng)
            if interactive:
                # Interactive work is overwhelmingly small and serial-ish.
                size = min(size, max(1, self.machine_size // 8))
            runtime = max(1.0, float(self._runtime_distribution(size, interactive).sample(rng)))
            sizes.append(size)
            runtimes.append(runtime)
            queues.append(0 if interactive else 1)

        users, groups, executables = self.population.assign(rng, jobs)
        estimates = [r * float(rng.uniform(1.2, 6.0)) for r in runtimes]
        return assemble_workload(
            name=self.name,
            computer="synthetic MPP (Lublin 99 model)",
            machine_size=self.machine_size,
            arrivals=arrivals,
            sizes=sizes,
            runtimes=runtimes,
            estimates=estimates,
            users=users,
            groups=groups,
            executables=executables,
            queues=queues,
            notes=[
                "Lublin 1999 model: two-stage uniform log2 sizes, size-dependent hyper-Gamma "
                "runtimes, daily arrival cycle."
            ],
        )
