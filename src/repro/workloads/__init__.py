"""Workload models: rigid, flexible (speedup-based), and session-structured.

Rigid models (Section 2.1, "Workload models"):

* :class:`Feitelson96Model` — power-of-two sizes, size-correlated runtimes,
* :class:`Jann97Model` — per-size-class hyper-Erlang fits,
* :class:`Lublin99Model` — the model the paper calls most representative,
* :class:`Downey97Model` — log-uniform work and parallelism with speedup
  curves (also provides moldable-job descriptions),
* :class:`UniformModel` — the naive "guesswork" baseline.

Flexible-job support lives in :mod:`repro.workloads.speedup`
(:class:`DowneySpeedup`, :class:`AmdahlSpeedup`, :class:`MoldableJob`), and
closed user-session generation in :class:`SessionModel`.
"""

from repro.workloads.base import (
    DailyCycleArrivals,
    PoissonArrivals,
    UserPopulation,
    WorkloadModel,
    assemble_workload,
    round_to_power_of_two,
)
from repro.workloads.feitelson96 import Feitelson96Model
from repro.workloads.jann97 import Jann97Model, SizeClass
from repro.workloads.lublin99 import Lublin99Model
from repro.workloads.downey97 import Downey97Model
from repro.workloads.uniform import UniformModel
from repro.workloads.sessions import SessionModel
from repro.workloads.speedup import AmdahlSpeedup, DowneySpeedup, MoldableJob, SpeedupModel
from repro.workloads.internal import (
    InternalStructure,
    InternalStructureModel,
    apply_structure,
    synchronization_stretch,
)

__all__ = [
    "DailyCycleArrivals",
    "PoissonArrivals",
    "UserPopulation",
    "WorkloadModel",
    "assemble_workload",
    "round_to_power_of_two",
    "Feitelson96Model",
    "Jann97Model",
    "SizeClass",
    "Lublin99Model",
    "Downey97Model",
    "UniformModel",
    "SessionModel",
    "AmdahlSpeedup",
    "DowneySpeedup",
    "MoldableJob",
    "SpeedupModel",
    "InternalStructure",
    "InternalStructureModel",
    "apply_structure",
    "synchronization_stretch",
]

#: The rigid models experiment E7 compares.
RIGID_MODELS = (Feitelson96Model, Jann97Model, Lublin99Model, Downey97Model, UniformModel)
