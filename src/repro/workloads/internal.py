"""Internal job structure: the Feitelson-Rudolph strawman parameters.

Section 2.2 ("Including the internal job structure") recalls the strawman
proposal from the previous year's introductory paper [23]: summarize the
internal structure of a parallel application with a small number of
parameters — "the number of processors, the number of barriers, the
granularity, and the variance of these attributes" — so that workloads can
exercise the interaction between applications and the scheduler (most
importantly, the cost of running fine-grained synchronization without
coscheduling, the gang-scheduling argument of reference [22]).

This module implements that strawman:

* :class:`InternalStructure` — the per-job parameters,
* :class:`InternalStructureModel` — samples structures for the jobs of a
  workload (fine-grained jobs are a configurable fraction; granularity is
  log-uniform; variance is uniform),
* :func:`synchronization_stretch` — the factor by which a job's runtime
  stretches when its processes are *not* coscheduled, following the standard
  barrier-cost argument: every barrier interval ends when the slowest,
  skewed process arrives,
* :func:`apply_structure` — rewrite a workload's runtimes for a given
  coscheduling regime, so the regular evaluation pipeline can quantify the
  benefit of gang scheduling for fine-grained applications.

No public data exists for these parameters (the paper says so explicitly);
the defaults below only aim to span the fine-grained-to-coarse-grained range
the strawman was designed to exercise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.swf.fields import MISSING
from repro.core.swf.header import SWFHeader
from repro.core.swf.workload import Workload
from repro.simulation.distributions import LogUniform, make_rng

__all__ = [
    "InternalStructure",
    "InternalStructureModel",
    "synchronization_stretch",
    "apply_structure",
]


@dataclass(frozen=True)
class InternalStructure:
    """Strawman description of one job's internal behaviour.

    Attributes
    ----------
    processes:
        Number of cooperating processes (normally the job's processor count).
    barriers:
        Number of barrier synchronizations over the job's lifetime.
    granularity_seconds:
        Mean computation time between consecutive barriers, per process.
    variance:
        Coefficient of variation of the per-process interval lengths; the
        skew that makes uncoordinated scheduling expensive.
    """

    processes: int
    barriers: int
    granularity_seconds: float
    variance: float

    def __post_init__(self) -> None:
        if self.processes < 1:
            raise ValueError("processes must be >= 1")
        if self.barriers < 0:
            raise ValueError("barriers must be non-negative")
        if self.granularity_seconds < 0:
            raise ValueError("granularity must be non-negative")
        if self.variance < 0:
            raise ValueError("variance must be non-negative")

    @property
    def is_fine_grained(self) -> bool:
        """Fine-grained = barrier every second or faster (needs coscheduling)."""
        return self.barriers > 0 and self.granularity_seconds <= 1.0

    @property
    def synchronization_fraction(self) -> float:
        """Fraction of the runtime spent between barriers (1.0 when barriers exist)."""
        return 1.0 if self.barriers > 0 else 0.0


def synchronization_stretch(
    structure: InternalStructure,
    coscheduled: bool,
    context_switch_seconds: float = 0.01,
) -> float:
    """Runtime stretch factor for a job under a given coscheduling regime.

    When the processes are **coscheduled** (gang scheduling, or a dedicated
    partition), each barrier interval costs the mean interval plus the skew
    of the slowest process: ``1 + variance * log(processes) / barriers_norm``
    is approximated simply as a per-interval factor ``1 + variance *
    sqrt(2 ln processes) / 3`` (the expected normalized maximum of
    ``processes`` i.i.d. intervals), which is mild.

    When they are **not coscheduled**, a process reaching a barrier may find
    peers descheduled; the interval then additionally pays a reschedule
    latency on the order of the context-switch/dispatch time for each of the
    (on average half of the) peers that are not running, which dominates for
    fine granularities.  The returned factor multiplies the job's dedicated
    runtime; it is 1.0 for jobs without barriers or with a single process.
    """
    if structure.barriers == 0 or structure.processes == 1:
        return 1.0
    # Expected normalized maximum of `processes` intervals with CV `variance`.
    skew = structure.variance * np.sqrt(2.0 * np.log(structure.processes)) / 3.0
    coscheduled_factor = 1.0 + skew
    if coscheduled:
        return float(coscheduled_factor)
    if structure.granularity_seconds <= 0:
        return float(coscheduled_factor)
    # Without coscheduling, each interval pays an extra dispatch delay for the
    # laggard peers, amortized over the interval length.
    dispatch_penalty = context_switch_seconds * structure.processes / 2.0
    uncoordinated_factor = coscheduled_factor * (
        1.0 + dispatch_penalty / structure.granularity_seconds
    )
    return float(uncoordinated_factor)


class InternalStructureModel:
    """Sample strawman structures for the jobs of a workload."""

    def __init__(
        self,
        fine_grained_fraction: float = 0.4,
        fine_granularity_bounds: Tuple[float, float] = (0.001, 1.0),
        coarse_granularity_bounds: Tuple[float, float] = (10.0, 600.0),
        max_variance: float = 1.0,
    ) -> None:
        if not 0.0 <= fine_grained_fraction <= 1.0:
            raise ValueError("fine_grained_fraction must be in [0, 1]")
        if max_variance < 0:
            raise ValueError("max_variance must be non-negative")
        self.fine_grained_fraction = fine_grained_fraction
        self.fine_granularity = LogUniform(*fine_granularity_bounds)
        self.coarse_granularity = LogUniform(*coarse_granularity_bounds)
        self.max_variance = max_variance

    def sample(self, processes: int, runtime: int, rng: np.random.Generator) -> InternalStructure:
        """Sample the structure of one job given its size and runtime."""
        if processes <= 1 or runtime <= 0:
            return InternalStructure(
                processes=max(processes, 1), barriers=0, granularity_seconds=0.0, variance=0.0
            )
        if rng.random() < self.fine_grained_fraction:
            granularity = self.fine_granularity.sample(rng)
        else:
            granularity = self.coarse_granularity.sample(rng)
        granularity = min(granularity, float(runtime))
        barriers = max(1, int(runtime / granularity))
        variance = float(rng.uniform(0.0, self.max_variance))
        return InternalStructure(
            processes=processes,
            barriers=barriers,
            granularity_seconds=granularity,
            variance=variance,
        )

    def annotate(self, workload: Workload, seed: Optional[int] = None) -> Dict[int, InternalStructure]:
        """Sample a structure for every summary job, keyed by job number."""
        rng = make_rng(seed)
        structures: Dict[int, InternalStructure] = {}
        for job in workload.summary_jobs():
            processes = job.processors if job.processors != MISSING else 1
            runtime = job.run_time if job.run_time != MISSING else 0
            structures[job.job_number] = self.sample(int(processes), int(runtime), rng)
        return structures


def apply_structure(
    workload: Workload,
    structures: Dict[int, InternalStructure],
    coscheduled: bool,
    context_switch_seconds: float = 0.01,
) -> Workload:
    """Rewrite runtimes for the given coscheduling regime.

    Returns a new workload whose runtimes (and estimates, scaled by the same
    factor) include the synchronization cost.  Feeding both variants through
    the usual evaluation pipeline quantifies the gang-scheduling benefit for
    fine-grained applications that Section 2.2 describes.
    """
    jobs = []
    for job in workload:
        structure = structures.get(job.job_number)
        if structure is None or not job.is_summary_line or job.run_time == MISSING:
            jobs.append(job)
            continue
        stretch = synchronization_stretch(
            structure, coscheduled=coscheduled, context_switch_seconds=context_switch_seconds
        )
        new_runtime = int(round(job.run_time * stretch))
        new_estimate = (
            int(round(job.requested_time * stretch)) if job.requested_time != MISSING else MISSING
        )
        jobs.append(job.replace(run_time=new_runtime, requested_time=new_estimate))
    suffix = "coscheduled" if coscheduled else "uncoordinated"
    return Workload(jobs, SWFHeader(workload.header.entries), name=f"{workload.name}-{suffix}")
