"""Descriptive statistics of a workload.

These are the summary characteristics the workload-modeling literature uses
to compare logs with models (job-size distribution, runtime distribution,
interarrival process, user activity), and what experiment E7 reports when it
places the Feitelson / Jann / Lublin / Downey models side by side with an
archive-like reference trace.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.swf.fields import MISSING
from repro.core.swf.workload import Workload

__all__ = ["DistributionSummary", "WorkloadStatistics", "summarize", "describe_distribution"]


@dataclass(frozen=True)
class DistributionSummary:
    """Five-number-plus summary of a sample (all values in the sample's units)."""

    count: int
    mean: float
    std: float
    cv: float
    minimum: float
    p25: float
    median: float
    p75: float
    p90: float
    maximum: float

    @staticmethod
    def empty() -> "DistributionSummary":
        return DistributionSummary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)


def describe_distribution(values: Sequence[float]) -> DistributionSummary:
    """Summarize a numeric sample; an empty sample yields the zero summary."""
    data = np.asarray([v for v in values if v is not None], dtype=float)
    if data.size == 0:
        return DistributionSummary.empty()
    mean = float(np.mean(data))
    std = float(np.std(data))
    return DistributionSummary(
        count=int(data.size),
        mean=mean,
        std=std,
        cv=float(std / mean) if mean != 0 else 0.0,
        minimum=float(np.min(data)),
        p25=float(np.percentile(data, 25)),
        median=float(np.percentile(data, 50)),
        p75=float(np.percentile(data, 75)),
        p90=float(np.percentile(data, 90)),
        maximum=float(np.max(data)),
    )


@dataclass
class WorkloadStatistics:
    """Workload-level summary used by E7 and by the examples.

    Attributes mirror the quantities reported in the workload-characterization
    papers the standard builds on: number of jobs/users/groups/applications,
    size / runtime / interarrival distributions, the fraction of power-of-two
    and serial jobs, the fraction of interactive and killed jobs, and the
    offered load relative to the header's machine size.
    """

    name: str
    jobs: int
    users: int
    groups: int
    executables: int
    machine_size: int
    span_seconds: int
    offered_load: float
    serial_fraction: float
    power_of_two_fraction: float
    interactive_fraction: float
    killed_fraction: float
    with_dependency_fraction: float
    size: DistributionSummary
    runtime: DistributionSummary
    interarrival: DistributionSummary
    requested_time_accuracy: Optional[float]
    size_histogram: Dict[int, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        """Flat dictionary representation (used when printing experiment tables)."""
        return {
            "name": self.name,
            "jobs": self.jobs,
            "users": self.users,
            "machine_size": self.machine_size,
            "offered_load": round(self.offered_load, 4),
            "serial_fraction": round(self.serial_fraction, 4),
            "power_of_two_fraction": round(self.power_of_two_fraction, 4),
            "interactive_fraction": round(self.interactive_fraction, 4),
            "killed_fraction": round(self.killed_fraction, 4),
            "mean_size": round(self.size.mean, 2),
            "mean_runtime": round(self.runtime.mean, 1),
            "runtime_cv": round(self.runtime.cv, 3),
            "mean_interarrival": round(self.interarrival.mean, 1),
            "interarrival_cv": round(self.interarrival.cv, 3),
        }


def _is_power_of_two(n: int) -> bool:
    return n >= 1 and (n & (n - 1)) == 0


def summarize(workload: Workload, machine_size: Optional[int] = None) -> WorkloadStatistics:
    """Compute the :class:`WorkloadStatistics` of a workload's summary jobs."""
    jobs = workload.summary_jobs()
    if machine_size is None:
        machine_size = workload.header.max_nodes or workload.max_processors()

    sizes = [j.processors for j in jobs if j.processors != MISSING]
    runtimes = [j.run_time for j in jobs if j.run_time != MISSING]
    submits = sorted(j.submit_time for j in jobs if j.submit_time != MISSING)
    interarrivals = [b - a for a, b in zip(submits, submits[1:])]

    interactive = sum(1 for j in jobs if j.is_interactive)
    killed = sum(1 for j in jobs if j.is_killed)
    with_dep = sum(1 for j in jobs if j.has_dependency)
    serial = sum(1 for s in sizes if s == 1)
    pow2 = sum(1 for s in sizes if _is_power_of_two(s))

    accuracies = [
        j.run_time / j.requested_time
        for j in jobs
        if j.run_time != MISSING and j.requested_time != MISSING and j.requested_time > 0
    ]

    n = len(jobs)
    return WorkloadStatistics(
        name=workload.name,
        jobs=n,
        users=len(workload.users()),
        groups=len(workload.groups()),
        executables=len(workload.executables()),
        machine_size=int(machine_size or 0),
        span_seconds=workload.span(),
        offered_load=workload.offered_load(machine_size),
        serial_fraction=serial / len(sizes) if sizes else 0.0,
        power_of_two_fraction=pow2 / len(sizes) if sizes else 0.0,
        interactive_fraction=interactive / n if n else 0.0,
        killed_fraction=killed / n if n else 0.0,
        with_dependency_fraction=with_dep / n if n else 0.0,
        size=describe_distribution(sizes),
        runtime=describe_distribution(runtimes),
        interarrival=describe_distribution(interarrivals),
        requested_time_accuracy=float(np.mean(accuracies)) if accuracies else None,
        size_histogram=dict(Counter(sizes)),
    )
