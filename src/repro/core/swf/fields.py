"""Field-level definitions of the Standard Workload Format, version 2.

Section 2.3 of the paper defines each job as one line of 18 space-separated
integers, in a fixed order.  This module is the single source of truth for

* the field order and names (:data:`FIELD_NAMES`),
* the unknown-value sentinel (``-1``, :data:`MISSING`),
* the completion-status codes including the multi-line checkpoint codes
  (:class:`CompletionStatus`),
* the interpretation of the "Requested Time" field
  (:class:`RequestedTimeKind`), and
* the predefined header-comment labels (:data:`HEADER_LABELS`).

Everything else in :mod:`repro.core.swf` (records, parser, writer, validator)
builds on these definitions, so a change to the standard is a change here.
"""

from __future__ import annotations

from enum import Enum, IntEnum

__all__ = [
    "MISSING",
    "INTERACTIVE_QUEUE",
    "SWF_VERSION",
    "FIELD_NAMES",
    "FIELD_COUNT",
    "FIELD_DESCRIPTIONS",
    "CompletionStatus",
    "RequestedTimeKind",
    "HEADER_LABELS",
]

#: Sentinel for "value not known / not applicable", per the standard.
MISSING: int = -1

#: Queue number conventionally denoting interactive jobs (Section 2.3, field 15).
INTERACTIVE_QUEUE: int = 0

#: The version of the standard implemented here ("The format described here is version 2").
SWF_VERSION: int = 2

#: Names of the 18 fields, in file order (field 1 is ``job_number``).
FIELD_NAMES: tuple = (
    "job_number",            # 1
    "submit_time",           # 2
    "wait_time",             # 3
    "run_time",              # 4
    "allocated_processors",  # 5
    "average_cpu_time",      # 6
    "used_memory",           # 7
    "requested_processors",  # 8
    "requested_time",        # 9
    "requested_memory",      # 10
    "status",                # 11
    "user_id",               # 12
    "group_id",              # 13
    "executable_id",         # 14
    "queue_number",          # 15
    "partition_number",      # 16
    "preceding_job",         # 17
    "think_time",            # 18
)

#: Number of fields on each job line.
FIELD_COUNT: int = len(FIELD_NAMES)

#: One-line description per field, used by ``swf describe`` style tooling and docs.
FIELD_DESCRIPTIONS: dict = {
    "job_number": "Counter field, starting from 1; equals the line number among job lines.",
    "submit_time": "Seconds since the start of the log (earliest submit time is 0).",
    "wait_time": "Seconds between submit time and start of execution.",
    "run_time": "Wall-clock seconds the job was running (end time minus start time).",
    "allocated_processors": "Number of processors actually allocated to the job.",
    "average_cpu_time": "Average (over allocated processors) CPU seconds used, user+system.",
    "used_memory": "Average used memory per processor, in kilobytes.",
    "requested_processors": "Number of processors requested at submit time.",
    "requested_time": "Requested wall-clock runtime or average CPU time per processor, in seconds.",
    "requested_memory": "Requested memory per processor, in kilobytes.",
    "status": "1 completed, 0 killed, -1 unknown/model; 2/3/4 for partial-execution lines.",
    "user_id": "Anonymized user number, 1..number of users.",
    "group_id": "Anonymized group number, 1..number of groups.",
    "executable_id": "Anonymized application/script number, 1..number of applications.",
    "queue_number": "Queue number; 0 denotes interactive jobs by convention.",
    "partition_number": "Partition number, 1..number of partitions.",
    "preceding_job": "Job number of a job that must terminate before this one is submitted.",
    "think_time": "Seconds between the preceding job's termination and this job's submittal.",
}


class CompletionStatus(IntEnum):
    """Values of field 11 ("Completed?").

    The base standard uses ``1`` for a completed job and ``0`` for a killed
    job, with ``-1`` meaning "not meaningful" (e.g. for synthetic models).
    Logs that record checkpoint/swap-out behaviour may carry a job on several
    lines; those partial-execution lines use codes 2 (to be continued),
    3 (last partial line, completed), and 4 (last partial line, killed), while
    the single summary line keeps codes 0/1.  Workload studies are instructed
    to use only the summary lines.
    """

    UNKNOWN = -1
    KILLED = 0
    COMPLETED = 1
    PARTIAL_TO_BE_CONTINUED = 2
    PARTIAL_LAST_COMPLETED = 3
    PARTIAL_LAST_KILLED = 4

    @property
    def is_summary(self) -> bool:
        """True for lines that summarize a whole job (codes -1, 0, 1)."""
        return self in (
            CompletionStatus.UNKNOWN,
            CompletionStatus.KILLED,
            CompletionStatus.COMPLETED,
        )

    @property
    def is_partial(self) -> bool:
        """True for per-burst partial-execution lines (codes 2, 3, 4)."""
        return self in (
            CompletionStatus.PARTIAL_TO_BE_CONTINUED,
            CompletionStatus.PARTIAL_LAST_COMPLETED,
            CompletionStatus.PARTIAL_LAST_KILLED,
        )

    @property
    def is_terminal_partial(self) -> bool:
        """True for the final burst of a checkpointed job (codes 3, 4)."""
        return self in (
            CompletionStatus.PARTIAL_LAST_COMPLETED,
            CompletionStatus.PARTIAL_LAST_KILLED,
        )


class RequestedTimeKind(str, Enum):
    """Interpretation of field 9, fixed per file by a header note.

    The standard allows "Requested Time" to be either a wall-clock runtime
    estimate or an average-CPU-time-per-processor request; which one applies
    is stated in a header comment, so it is a property of the
    :class:`~repro.core.swf.header.SWFHeader`, not of individual jobs.
    """

    WALLCLOCK = "wallclock"
    AVERAGE_CPU = "average_cpu"
    UNKNOWN = "unknown"


#: Predefined header-comment labels (Section 2.3, "Header Comments").
HEADER_LABELS: tuple = (
    "Version",
    "Computer",
    "Installation",
    "Acknowledge",
    "Information",
    "Conversion",
    "MaxJobs",
    "MaxRecords",
    "Preemption",
    "UnixStartTime",
    "TimeZoneString",
    "StartTime",
    "EndTime",
    "MaxNodes",
    "MaxProcs",
    "MaxRuntime",
    "MaxMemory",
    "AllowOveruse",
    "MaxQueues",
    "Queues",
    "Queue",
    "MaxPartitions",
    "Partitions",
    "Partition",
    "Note",
)
