"""The Standard Workload Format, version 2 — the paper's primary contribution.

Public surface:

* :class:`SWFJob` — one job line (18 integer fields),
* :class:`SWFHeader` — the ``;Label: value`` header comments,
* :class:`Workload` — header + ordered job list, with workload-level helpers,
* :func:`parse_swf` / :func:`parse_swf_text` and
  :func:`write_swf` / :func:`write_swf_text` — lossless round-trip I/O,
* :func:`validate` — the standard's consistency rules,
* :func:`anonymize_workload` / :class:`IdentityMapper` — incremental
  renumbering of users, groups, and executables,
* :func:`annotate_feedback` / :func:`sessions_of` — the feedback extension
  (fields 17 and 18),
* :mod:`~repro.core.swf.checkpoint` — multi-line checkpoint/swap records,
* :mod:`~repro.core.swf.converters` — raw accounting-log converters,
* :func:`summarize` — descriptive workload statistics.
"""

from repro.core.swf.fields import (
    FIELD_COUNT,
    FIELD_NAMES,
    INTERACTIVE_QUEUE,
    MISSING,
    SWF_VERSION,
    CompletionStatus,
    RequestedTimeKind,
)
from repro.core.swf.records import SWFJob
from repro.core.swf.header import HeaderEntry, SWFHeader
from repro.core.swf.workload import Workload
from repro.core.swf.parser import ParseReport, SWFParseError, parse_swf, parse_swf_text
from repro.core.swf.writer import (
    canonical_swf_bytes,
    format_job_line,
    write_swf,
    write_swf_text,
)
from repro.core.swf.validator import Severity, ValidationIssue, ValidationReport, validate
from repro.core.swf.anonymize import IdentityMapper, anonymize_workload
from repro.core.swf.feedback import (
    FeedbackStats,
    annotate_feedback,
    sessions_of,
    strip_feedback,
)
from repro.core.swf.checkpoint import (
    CheckpointedJob,
    expand_to_bursts,
    group_checkpointed,
    summarize_bursts,
)
from repro.core.swf.converters import (
    ACCOUNTING_CSV_COLUMNS,
    ConversionError,
    convert_accounting_csv,
    convert_ipsc_log,
)
from repro.core.swf.statistics import (
    DistributionSummary,
    WorkloadStatistics,
    describe_distribution,
    summarize,
)

__all__ = [
    "FIELD_COUNT",
    "FIELD_NAMES",
    "INTERACTIVE_QUEUE",
    "MISSING",
    "SWF_VERSION",
    "CompletionStatus",
    "RequestedTimeKind",
    "SWFJob",
    "HeaderEntry",
    "SWFHeader",
    "Workload",
    "ParseReport",
    "SWFParseError",
    "parse_swf",
    "parse_swf_text",
    "canonical_swf_bytes",
    "format_job_line",
    "write_swf",
    "write_swf_text",
    "Severity",
    "ValidationIssue",
    "ValidationReport",
    "validate",
    "IdentityMapper",
    "anonymize_workload",
    "FeedbackStats",
    "annotate_feedback",
    "sessions_of",
    "strip_feedback",
    "CheckpointedJob",
    "expand_to_bursts",
    "group_checkpointed",
    "summarize_bursts",
    "ACCOUNTING_CSV_COLUMNS",
    "ConversionError",
    "convert_accounting_csv",
    "convert_ipsc_log",
    "DistributionSummary",
    "WorkloadStatistics",
    "describe_distribution",
    "summarize",
]
