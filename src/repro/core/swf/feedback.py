"""Feedback annotation: inserting postulated job dependencies into a workload.

Section 2.2 ("Including feedback") observes that accounting logs record
absolute arrival times and therefore lose the dependence of a user's next
submittal on the completion of the previous job.  The proposed remedy, which
fields 17 ("Preceding Job Number") and 18 ("Think Time from Preceding Job")
make expressible, is:

    "we identify sequences of dependent jobs (e.g. all those submitted by the
    same user in rapid succession), and replace the absolute arrival times of
    jobs in the sequence with interarrival times relative to the previous job
    in the sequence."

:func:`annotate_feedback` implements exactly that heuristic: for each user it
walks the jobs in submit order and, whenever a job was submitted within
``max_think_time`` seconds of the termination of the user's previous job
(and not before it terminated), it records the dependency and the observed
think time.  :func:`sessions_of` groups jobs into the resulting dependency
chains ("sessions"), and :func:`strip_feedback` removes the annotation.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.swf.fields import MISSING
from repro.core.swf.header import SWFHeader
from repro.core.swf.records import SWFJob
from repro.core.swf.workload import Workload

__all__ = [
    "FeedbackStats",
    "annotate_feedback",
    "strip_feedback",
    "sessions_of",
]


@dataclass(frozen=True)
class FeedbackStats:
    """Summary of an :func:`annotate_feedback` run."""

    total_jobs: int
    annotated_jobs: int
    sessions: int
    mean_think_time: float

    @property
    def annotated_fraction(self) -> float:
        """Fraction of jobs that received a preceding-job dependency."""
        if self.total_jobs == 0:
            return 0.0
        return self.annotated_jobs / self.total_jobs


def annotate_feedback(
    workload: Workload,
    max_think_time: int = 20 * 60,
    same_user_only: bool = True,
) -> "tuple[Workload, FeedbackStats]":
    """Insert postulated dependencies (fields 17/18) into a workload.

    Parameters
    ----------
    workload:
        The workload to annotate; only summary lines are considered.
    max_think_time:
        A job is considered dependent on the user's previous job when it was
        submitted no more than this many seconds after that job terminated
        (default 20 minutes, the usual session-boundary threshold in the
        literature).
    same_user_only:
        Restrict dependency chains to jobs of the same user (the paper's
        heuristic).  When false, chains are built per (user, executable).

    Returns
    -------
    (workload, stats)
        A new workload with fields 17/18 filled in where the heuristic
        applies, and a :class:`FeedbackStats` summary.
    """
    if max_think_time < 0:
        raise ValueError("max_think_time must be non-negative")

    jobs = sorted(workload.summary_jobs(), key=lambda j: (j.submit_time, j.job_number))
    last_job_of_key: Dict[object, SWFJob] = {}
    annotated: Dict[int, SWFJob] = {}
    think_times: List[int] = []
    session_count = 0

    for job in jobs:
        if job.user_id == MISSING or job.submit_time == MISSING:
            annotated[job.job_number] = job
            continue
        key = job.user_id if same_user_only else (job.user_id, job.executable_id)
        previous = last_job_of_key.get(key)
        new_job = job
        if previous is not None and previous.end_time is not None:
            gap = job.submit_time - previous.end_time
            if 0 <= gap <= max_think_time:
                new_job = job.replace(
                    preceding_job=previous.job_number, think_time=int(gap)
                )
                think_times.append(int(gap))
            else:
                session_count += 1
        else:
            session_count += 1
        annotated[job.job_number] = new_job
        last_job_of_key[key] = job

    out_jobs = [annotated.get(j.job_number, j) if j.is_summary_line else j for j in workload]
    result = Workload(out_jobs, SWFHeader(workload.header.entries), name=workload.name)
    stats = FeedbackStats(
        total_jobs=len(jobs),
        annotated_jobs=len(think_times),
        sessions=session_count,
        mean_think_time=(sum(think_times) / len(think_times)) if think_times else 0.0,
    )
    return result, stats


def strip_feedback(workload: Workload) -> Workload:
    """Remove all preceding-job / think-time annotations from a workload."""
    jobs = [
        job.replace(preceding_job=MISSING, think_time=MISSING)
        if job.preceding_job != MISSING or job.think_time != MISSING
        else job
        for job in workload
    ]
    return Workload(jobs, SWFHeader(workload.header.entries), name=workload.name)


def sessions_of(workload: Workload) -> List[List[SWFJob]]:
    """Group summary jobs into dependency chains ("sessions").

    A session is a maximal chain ``j1 -> j2 -> ...`` where each job names the
    previous one in field 17.  Jobs without a dependency start a new session.
    Sessions are returned in order of their first job's submit time.
    """
    summary = {j.job_number: j for j in workload.summary_jobs()}
    successor: Dict[int, int] = {}
    has_predecessor = set()
    for job in summary.values():
        if job.has_dependency and job.preceding_job in summary:
            successor[job.preceding_job] = job.job_number
            has_predecessor.add(job.job_number)

    sessions: List[List[SWFJob]] = []
    for job in sorted(summary.values(), key=lambda j: (j.submit_time, j.job_number)):
        if job.job_number in has_predecessor:
            continue
        chain = [job]
        current = job.job_number
        while current in successor:
            current = successor[current]
            chain.append(summary[current])
        sessions.append(chain)
    return sessions
