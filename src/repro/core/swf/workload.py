"""The :class:`Workload` container: a header plus an ordered list of jobs.

A workload is what every other part of the library consumes: schedulers
replay it, models generate it, statistics summarize it, and the SWF parser
and writer convert it to and from the on-disk standard format.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, List, Optional, Sequence

import numpy as np

from repro.core.swf.columns import JobColumns
from repro.core.swf.fields import FIELD_NAMES, MISSING
from repro.core.swf.header import SWFHeader
from repro.core.swf.records import SWFJob

__all__ = ["Workload"]

_SUBMIT_IDX = FIELD_NAMES.index("submit_time")
_NUMBER_IDX = FIELD_NAMES.index("job_number")
_PRECEDING_IDX = FIELD_NAMES.index("preceding_job")
_THINK_IDX = FIELD_NAMES.index("think_time")


class Workload:
    """An ordered collection of :class:`SWFJob` records with an :class:`SWFHeader`.

    The class is deliberately list-like (iteration, ``len``, indexing) and
    adds the workload-level operations the evaluation methodology needs:
    summary-line filtering, time-span and offered-load computation, load
    scaling, and job renumbering.
    """

    def __init__(
        self,
        jobs: Optional[Iterable[SWFJob]] = None,
        header: Optional[SWFHeader] = None,
        name: str = "workload",
    ) -> None:
        self._jobs: List[SWFJob] = list(jobs or [])
        self.header: SWFHeader = header if header is not None else SWFHeader()
        self.name = name
        self._columns: Optional[JobColumns] = None

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._jobs)

    def __iter__(self) -> Iterator[SWFJob]:
        return iter(self._jobs)

    def __getitem__(self, index):
        return self._jobs[index]

    def __eq__(self, other) -> bool:
        if not isinstance(other, Workload):
            return NotImplemented
        return self._jobs == other._jobs and self.header == other.header

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Workload(name={self.name!r}, jobs={len(self._jobs)})"

    @property
    def jobs(self) -> List[SWFJob]:
        """The job list (a reference, not a copy; treat as read-only)."""
        return self._jobs

    def append(self, job: SWFJob) -> None:
        """Append a job to the workload."""
        self._jobs.append(job)
        self._columns = None

    def extend(self, jobs: Iterable[SWFJob]) -> None:
        """Append several jobs to the workload."""
        self._jobs.extend(jobs)
        self._columns = None

    def columns(self) -> JobColumns:
        """Int64 column view of the hot job fields (cached until mutation)."""
        if self._columns is None or self._columns.n != len(self._jobs):
            self._columns = JobColumns(self._jobs)
        return self._columns

    def copy(self, name: Optional[str] = None) -> "Workload":
        """Shallow copy (jobs are immutable, so sharing them is safe)."""
        return Workload(
            jobs=list(self._jobs),
            header=SWFHeader(self.header.entries),
            name=name if name is not None else self.name,
        )

    # ------------------------------------------------------------------
    # views and filters
    # ------------------------------------------------------------------
    def summary_jobs(self) -> List[SWFJob]:
        """Only whole-job lines (status -1/0/1), as workload studies should use."""
        return [job for job in self._jobs if job.is_summary_line]

    def partial_jobs(self) -> List[SWFJob]:
        """Only the partial-execution burst lines (status 2/3/4)."""
        return [job for job in self._jobs if not job.is_summary_line]

    def filter(self, predicate: Callable[[SWFJob], bool], name: Optional[str] = None) -> "Workload":
        """New workload containing the jobs for which ``predicate`` is true."""
        return Workload(
            jobs=[job for job in self._jobs if predicate(job)],
            header=SWFHeader(self.header.entries),
            name=name if name is not None else f"{self.name}-filtered",
        )

    def sorted_by_submit(self) -> "Workload":
        """New workload with jobs sorted by ascending submit time (stable)."""
        cols = self.columns()
        order = np.lexsort((cols.np("job_number"), cols.np("submit")))
        jobs = self._jobs
        ordered = [jobs[idx] for idx in order.tolist()]
        return Workload(ordered, SWFHeader(self.header.entries), name=self.name)

    def renumbered(self) -> "Workload":
        """New workload with job numbers rewritten to 1..N in current order.

        Dependency references (field 17) are remapped when the preceding job
        is present in the workload and dropped otherwise, preserving the
        standard's requirement that job numbers match line numbers.
        """
        mapping = {job.job_number: idx + 1 for idx, job in enumerate(self._jobs)}
        renumbered: List[SWFJob] = []
        for idx, job in enumerate(self._jobs):
            preceding = job.preceding_job
            think = job.think_time
            if preceding != MISSING:
                if preceding in mapping:
                    preceding = mapping[preceding]
                else:
                    preceding = MISSING
                    think = MISSING
            if job.job_number == idx + 1 and preceding == job.preceding_job and think == job.think_time:
                renumbered.append(job)
                continue
            fields = job.to_fields()
            fields[_NUMBER_IDX] = idx + 1
            fields[_PRECEDING_IDX] = preceding
            fields[_THINK_IDX] = think
            renumbered.append(SWFJob._from_trusted_fields(fields))
        return Workload(renumbered, SWFHeader(self.header.entries), name=self.name)

    # ------------------------------------------------------------------
    # workload-level quantities
    # ------------------------------------------------------------------
    def span(self) -> int:
        """Seconds from the first submit to the last known completion (or submit)."""
        cols = self.columns()
        summary = cols.summary_mask()
        if not summary.any():
            return 0
        submit = cols.np("submit")[summary]
        wait = cols.np("wait")[summary]
        run = cols.np("run")[summary]
        known_submit = submit != MISSING
        if not known_submit.any():
            raise ValueError("min() arg is an empty sequence")
        start = int(submit[known_submit].min())
        # end_time when submit/wait/run are all known, else the submit time;
        # candidates that land exactly on the -1 sentinel are skipped, like
        # the per-job loop this replaces.
        has_end = known_submit & (wait != MISSING) & (run != MISSING)
        candidate = np.where(has_end, submit + wait + run, submit)
        candidate = candidate[candidate != MISSING]
        end = int(candidate.max()) if candidate.size else start
        return max(0, max(start, end) - start)

    def total_area(self) -> int:
        """Total processor-seconds demanded by summary jobs with known size and runtime."""
        cols = self.columns()
        return int(cols.area_per_job()[cols.summary_mask()].sum())

    def offered_load(self, machine_size: Optional[int] = None) -> float:
        """Offered load: total area divided by (machine size x submit-time span).

        ``machine_size`` defaults to the header's MaxNodes.  Returns 0.0 for
        degenerate workloads (no span or unknown machine size).
        """
        if machine_size is None:
            machine_size = self.header.max_nodes
        if not machine_size:
            return 0.0
        cols = self.columns()
        summary = cols.summary_mask()
        if int(summary.sum()) < 2:
            return 0.0
        submit = cols.np("submit")[summary]
        submit = submit[submit != MISSING]
        if not submit.size:
            return 0.0
        span = int(submit.max()) - int(submit.min())
        if span <= 0:
            return 0.0
        return self.total_area() / (machine_size * span)

    def max_processors(self) -> int:
        """Largest processor count appearing in the workload (0 if none known)."""
        cols = self.columns()
        procs = cols.np("procs")[cols.summary_mask()]
        procs = procs[procs != MISSING]
        return int(procs.max()) if procs.size else 0

    def users(self) -> List[int]:
        """Sorted distinct user ids (missing values excluded)."""
        return sorted({j.user_id for j in self._jobs if j.user_id != MISSING})

    def groups(self) -> List[int]:
        """Sorted distinct group ids (missing values excluded)."""
        return sorted({j.group_id for j in self._jobs if j.group_id != MISSING})

    def executables(self) -> List[int]:
        """Sorted distinct executable ids (missing values excluded)."""
        return sorted({j.executable_id for j in self._jobs if j.executable_id != MISSING})

    # ------------------------------------------------------------------
    # transformations used by the evaluation methodology
    # ------------------------------------------------------------------
    def scale_load(self, factor: float, name: Optional[str] = None) -> "Workload":
        """Change the offered load by stretching or compressing interarrival times.

        A ``factor`` of 1.2 increases the offered load by 20% (arrivals come
        20% faster); runtimes and sizes are untouched, which is the standard
        way the literature varies load when replaying a trace or model.
        """
        if factor <= 0:
            raise ValueError("load scale factor must be positive")
        cols = self.columns()
        submit = cols.np("submit")
        known = submit != MISSING
        # int(round(x)) on float64 — np.rint is the same round-half-to-even
        scaled = np.where(known, np.rint(submit / factor).astype(np.int64), submit)
        numbers = cols.np("job_number")
        # one fused pass replaces replace-all + sorted_by_submit + renumbered
        # (three full object rebuilds); np.lexsort is stable with the same
        # (submit, job_number) key
        order = np.lexsort((numbers, scaled))
        mapping = {int(numbers[idx]): rank + 1 for rank, idx in enumerate(order)}
        scaled_list = scaled.tolist()
        jobs = self._jobs
        rebuilt: List[SWFJob] = []
        for rank, idx in enumerate(order.tolist()):
            fields = jobs[idx].to_fields()
            fields[_NUMBER_IDX] = rank + 1
            fields[_SUBMIT_IDX] = scaled_list[idx]
            preceding = fields[_PRECEDING_IDX]
            if preceding != MISSING:
                remapped = mapping.get(preceding)
                if remapped is None:
                    fields[_PRECEDING_IDX] = MISSING
                    fields[_THINK_IDX] = MISSING
                else:
                    fields[_PRECEDING_IDX] = remapped
            rebuilt.append(SWFJob._from_trusted_fields(fields))
        return Workload(rebuilt, SWFHeader(self.header.entries),
                        name=name if name is not None else f"{self.name}-x{factor:g}")

    def truncate(self, max_jobs: int, name: Optional[str] = None) -> "Workload":
        """Keep only the first ``max_jobs`` jobs (by current order)."""
        if max_jobs < 0:
            raise ValueError("max_jobs must be non-negative")
        return Workload(
            self._jobs[:max_jobs],
            SWFHeader(self.header.entries),
            name=name if name is not None else f"{self.name}-head{max_jobs}",
        )

    def shift_origin(self) -> "Workload":
        """Shift submit times so the earliest submit time becomes zero."""
        submit = self.columns().np("submit")
        known = submit != MISSING
        if not known.any():
            return self.copy()
        origin = int(submit[known].min())
        shifted: List[SWFJob] = []
        for job, new_submit in zip(self._jobs, np.where(known, submit - origin, submit).tolist()):
            if job.submit_time == new_submit:
                shifted.append(job)
            else:
                fields = job.to_fields()
                fields[_SUBMIT_IDX] = new_submit
                shifted.append(SWFJob._from_trusted_fields(fields))
        return Workload(shifted, SWFHeader(self.header.entries), name=self.name)
