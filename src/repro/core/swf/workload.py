"""The :class:`Workload` container: a header plus an ordered list of jobs.

A workload is what every other part of the library consumes: schedulers
replay it, models generate it, statistics summarize it, and the SWF parser
and writer convert it to and from the on-disk standard format.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, List, Optional, Sequence

from repro.core.swf.fields import MISSING
from repro.core.swf.header import SWFHeader
from repro.core.swf.records import SWFJob

__all__ = ["Workload"]


class Workload:
    """An ordered collection of :class:`SWFJob` records with an :class:`SWFHeader`.

    The class is deliberately list-like (iteration, ``len``, indexing) and
    adds the workload-level operations the evaluation methodology needs:
    summary-line filtering, time-span and offered-load computation, load
    scaling, and job renumbering.
    """

    def __init__(
        self,
        jobs: Optional[Iterable[SWFJob]] = None,
        header: Optional[SWFHeader] = None,
        name: str = "workload",
    ) -> None:
        self._jobs: List[SWFJob] = list(jobs or [])
        self.header: SWFHeader = header if header is not None else SWFHeader()
        self.name = name

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._jobs)

    def __iter__(self) -> Iterator[SWFJob]:
        return iter(self._jobs)

    def __getitem__(self, index):
        return self._jobs[index]

    def __eq__(self, other) -> bool:
        if not isinstance(other, Workload):
            return NotImplemented
        return self._jobs == other._jobs and self.header == other.header

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Workload(name={self.name!r}, jobs={len(self._jobs)})"

    @property
    def jobs(self) -> List[SWFJob]:
        """The job list (a reference, not a copy; treat as read-only)."""
        return self._jobs

    def append(self, job: SWFJob) -> None:
        """Append a job to the workload."""
        self._jobs.append(job)

    def extend(self, jobs: Iterable[SWFJob]) -> None:
        """Append several jobs to the workload."""
        self._jobs.extend(jobs)

    def copy(self, name: Optional[str] = None) -> "Workload":
        """Shallow copy (jobs are immutable, so sharing them is safe)."""
        return Workload(
            jobs=list(self._jobs),
            header=SWFHeader(self.header.entries),
            name=name if name is not None else self.name,
        )

    # ------------------------------------------------------------------
    # views and filters
    # ------------------------------------------------------------------
    def summary_jobs(self) -> List[SWFJob]:
        """Only whole-job lines (status -1/0/1), as workload studies should use."""
        return [job for job in self._jobs if job.is_summary_line]

    def partial_jobs(self) -> List[SWFJob]:
        """Only the partial-execution burst lines (status 2/3/4)."""
        return [job for job in self._jobs if not job.is_summary_line]

    def filter(self, predicate: Callable[[SWFJob], bool], name: Optional[str] = None) -> "Workload":
        """New workload containing the jobs for which ``predicate`` is true."""
        return Workload(
            jobs=[job for job in self._jobs if predicate(job)],
            header=SWFHeader(self.header.entries),
            name=name if name is not None else f"{self.name}-filtered",
        )

    def sorted_by_submit(self) -> "Workload":
        """New workload with jobs sorted by ascending submit time (stable)."""
        ordered = sorted(self._jobs, key=lambda j: (j.submit_time, j.job_number))
        return Workload(ordered, SWFHeader(self.header.entries), name=self.name)

    def renumbered(self) -> "Workload":
        """New workload with job numbers rewritten to 1..N in current order.

        Dependency references (field 17) are remapped when the preceding job
        is present in the workload and dropped otherwise, preserving the
        standard's requirement that job numbers match line numbers.
        """
        mapping = {job.job_number: idx + 1 for idx, job in enumerate(self._jobs)}
        renumbered: List[SWFJob] = []
        for idx, job in enumerate(self._jobs):
            preceding = job.preceding_job
            think = job.think_time
            if preceding != MISSING:
                if preceding in mapping:
                    preceding = mapping[preceding]
                else:
                    preceding = MISSING
                    think = MISSING
            renumbered.append(
                job.replace(job_number=idx + 1, preceding_job=preceding, think_time=think)
            )
        return Workload(renumbered, SWFHeader(self.header.entries), name=self.name)

    # ------------------------------------------------------------------
    # workload-level quantities
    # ------------------------------------------------------------------
    def span(self) -> int:
        """Seconds from the first submit to the last known completion (or submit)."""
        jobs = self.summary_jobs()
        if not jobs:
            return 0
        start = min(job.submit_time for job in jobs if job.submit_time != MISSING)
        end = start
        for job in jobs:
            candidate = job.end_time
            if candidate is None:
                candidate = job.submit_time
            if candidate is not None and candidate != MISSING:
                end = max(end, candidate)
        return max(0, end - start)

    def total_area(self) -> int:
        """Total processor-seconds demanded by summary jobs with known size and runtime."""
        return sum(job.area or 0 for job in self.summary_jobs())

    def offered_load(self, machine_size: Optional[int] = None) -> float:
        """Offered load: total area divided by (machine size x submit-time span).

        ``machine_size`` defaults to the header's MaxNodes.  Returns 0.0 for
        degenerate workloads (no span or unknown machine size).
        """
        if machine_size is None:
            machine_size = self.header.max_nodes
        if not machine_size:
            return 0.0
        jobs = self.summary_jobs()
        if len(jobs) < 2:
            return 0.0
        submit_times = [j.submit_time for j in jobs if j.submit_time != MISSING]
        if not submit_times:
            return 0.0
        span = max(submit_times) - min(submit_times)
        if span <= 0:
            return 0.0
        return self.total_area() / (machine_size * span)

    def max_processors(self) -> int:
        """Largest processor count appearing in the workload (0 if none known)."""
        sizes = [job.processors for job in self.summary_jobs() if job.processors != MISSING]
        return max(sizes) if sizes else 0

    def users(self) -> List[int]:
        """Sorted distinct user ids (missing values excluded)."""
        return sorted({j.user_id for j in self._jobs if j.user_id != MISSING})

    def groups(self) -> List[int]:
        """Sorted distinct group ids (missing values excluded)."""
        return sorted({j.group_id for j in self._jobs if j.group_id != MISSING})

    def executables(self) -> List[int]:
        """Sorted distinct executable ids (missing values excluded)."""
        return sorted({j.executable_id for j in self._jobs if j.executable_id != MISSING})

    # ------------------------------------------------------------------
    # transformations used by the evaluation methodology
    # ------------------------------------------------------------------
    def scale_load(self, factor: float, name: Optional[str] = None) -> "Workload":
        """Change the offered load by stretching or compressing interarrival times.

        A ``factor`` of 1.2 increases the offered load by 20% (arrivals come
        20% faster); runtimes and sizes are untouched, which is the standard
        way the literature varies load when replaying a trace or model.
        """
        if factor <= 0:
            raise ValueError("load scale factor must be positive")
        scaled = [
            job.replace(submit_time=int(round(job.submit_time / factor)))
            if job.submit_time != MISSING
            else job
            for job in self._jobs
        ]
        wl = Workload(scaled, SWFHeader(self.header.entries),
                      name=name if name is not None else f"{self.name}-x{factor:g}")
        return wl.sorted_by_submit().renumbered()

    def truncate(self, max_jobs: int, name: Optional[str] = None) -> "Workload":
        """Keep only the first ``max_jobs`` jobs (by current order)."""
        if max_jobs < 0:
            raise ValueError("max_jobs must be non-negative")
        return Workload(
            self._jobs[:max_jobs],
            SWFHeader(self.header.entries),
            name=name if name is not None else f"{self.name}-head{max_jobs}",
        )

    def shift_origin(self) -> "Workload":
        """Shift submit times so the earliest submit time becomes zero."""
        jobs = [j for j in self._jobs if j.submit_time != MISSING]
        if not jobs:
            return self.copy()
        origin = min(j.submit_time for j in jobs)
        shifted = [
            job.replace(submit_time=job.submit_time - origin)
            if job.submit_time != MISSING
            else job
            for job in self._jobs
        ]
        return Workload(shifted, SWFHeader(self.header.entries), name=self.name)
