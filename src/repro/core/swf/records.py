"""The :class:`SWFJob` record — one job line of a Standard Workload Format file.

A job is stored with every one of the 18 standard fields.  Times are kept as
integers (seconds), per the standard's "all data is in integers" rule; the
parser rejects non-integer tokens and the writer emits plain integers.

Besides the raw fields the class provides the derived quantities every
evaluation needs (start time, end time, response time, slowdown, bounded
slowdown) and convenience predicates (``is_interactive``, ``has_dependency``,
``is_summary_line``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Optional

from repro.core.swf.fields import (
    FIELD_COUNT,
    FIELD_NAMES,
    INTERACTIVE_QUEUE,
    MISSING,
    CompletionStatus,
)

__all__ = ["SWFJob"]


def _coerce_int(name: str, value) -> int:
    """Coerce a field to int, accepting floats only when they are integral."""
    if isinstance(value, bool):
        raise TypeError(f"field {name!r} must be an integer, got bool")
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        if value != int(value):
            raise ValueError(f"field {name!r} must be an integer, got {value}")
        return int(value)
    raise TypeError(f"field {name!r} must be an integer, got {type(value).__name__}")


@dataclass(frozen=True)
class SWFJob:
    """A single job line in the Standard Workload Format (18 integer fields).

    All fields default to :data:`~repro.core.swf.fields.MISSING` (``-1``)
    except the job number, so a synthetic model can populate only the fields
    it defines — exactly the usage the standard anticipates ("a synthetic
    workload may only include information about submit times, runtimes, and
    parallelism").
    """

    job_number: int
    submit_time: int = MISSING
    wait_time: int = MISSING
    run_time: int = MISSING
    allocated_processors: int = MISSING
    average_cpu_time: int = MISSING
    used_memory: int = MISSING
    requested_processors: int = MISSING
    requested_time: int = MISSING
    requested_memory: int = MISSING
    status: int = MISSING
    user_id: int = MISSING
    group_id: int = MISSING
    executable_id: int = MISSING
    queue_number: int = MISSING
    partition_number: int = MISSING
    preceding_job: int = MISSING
    think_time: int = MISSING

    def __post_init__(self) -> None:
        for name in FIELD_NAMES:
            object.__setattr__(self, name, _coerce_int(name, getattr(self, name)))
        if self.job_number < 1:
            raise ValueError(f"job_number must be >= 1, got {self.job_number}")

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_fields(cls, values: Iterable[int]) -> "SWFJob":
        """Build a job from the 18 field values in file order."""
        values = list(values)
        if len(values) != FIELD_COUNT:
            raise ValueError(
                f"an SWF job line has exactly {FIELD_COUNT} fields, got {len(values)}"
            )
        return cls(**dict(zip(FIELD_NAMES, values)))

    @classmethod
    def _from_trusted_fields(cls, values: Iterable[int]) -> "SWFJob":
        """Build a job from 18 *pre-validated* field values in file order.

        Bypasses ``__init__``/``__post_init__`` — the caller must guarantee
        plain Python ints and a positive job number.  This is the hot-path
        constructor for columnar transforms, which derive every value from
        fields of already-validated jobs.
        """
        job = object.__new__(cls)
        job.__dict__.update(zip(FIELD_NAMES, values))
        return job

    def to_fields(self) -> list:
        """Return the 18 field values in file order."""
        return [getattr(self, name) for name in FIELD_NAMES]

    def replace(self, **changes) -> "SWFJob":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    # ------------------------------------------------------------------
    # derived times
    # ------------------------------------------------------------------
    @property
    def start_time(self) -> Optional[int]:
        """Absolute start time (submit + wait), or ``None`` if unknown."""
        if self.submit_time == MISSING or self.wait_time == MISSING:
            return None
        return self.submit_time + self.wait_time

    @property
    def end_time(self) -> Optional[int]:
        """Absolute end time (start + runtime), or ``None`` if unknown."""
        start = self.start_time
        if start is None or self.run_time == MISSING:
            return None
        return start + self.run_time

    @property
    def response_time(self) -> Optional[int]:
        """Wait time plus runtime, or ``None`` if either is unknown."""
        if self.wait_time == MISSING or self.run_time == MISSING:
            return None
        return self.wait_time + self.run_time

    def slowdown(self) -> Optional[float]:
        """Response time divided by runtime (>= 1), or ``None`` if unknown.

        Jobs with zero runtime have undefined slowdown and return ``None``;
        use :meth:`bounded_slowdown` for the standard remedy.
        """
        resp = self.response_time
        if resp is None or self.run_time <= 0:
            return None
        return resp / self.run_time

    def bounded_slowdown(self, tau: float = 10.0) -> Optional[float]:
        """Bounded slowdown with interactivity threshold ``tau`` seconds.

        ``max(1, (wait + run) / max(run, tau))`` — the standard fix for the
        domination of slowdown statistics by very short jobs (Feitelson &
        Rudolph, "Metrics and benchmarking for parallel job scheduling").
        """
        resp = self.response_time
        if resp is None:
            return None
        if tau <= 0:
            raise ValueError("tau must be positive")
        return max(1.0, resp / max(self.run_time, tau))

    # ------------------------------------------------------------------
    # predicates
    # ------------------------------------------------------------------
    @property
    def completion_status(self) -> CompletionStatus:
        """The status field as a :class:`CompletionStatus` (UNKNOWN if out of range)."""
        try:
            return CompletionStatus(self.status)
        except ValueError:
            return CompletionStatus.UNKNOWN

    @property
    def is_summary_line(self) -> bool:
        """True for whole-job lines (status -1/0/1), false for partial bursts."""
        return self.completion_status.is_summary

    @property
    def is_completed(self) -> bool:
        """True if the job ran to completion (status 1)."""
        return self.status == CompletionStatus.COMPLETED

    @property
    def is_killed(self) -> bool:
        """True if the job was killed (status 0)."""
        return self.status == CompletionStatus.KILLED

    @property
    def is_interactive(self) -> bool:
        """True if the job was submitted to the interactive queue (queue 0)."""
        return self.queue_number == INTERACTIVE_QUEUE

    @property
    def has_dependency(self) -> bool:
        """True if the feedback fields name a preceding job."""
        return self.preceding_job != MISSING and self.preceding_job > 0

    @property
    def processors(self) -> int:
        """Best available processor count: allocated if known, else requested.

        Returns :data:`MISSING` when neither is known.
        """
        if self.allocated_processors != MISSING:
            return self.allocated_processors
        return self.requested_processors

    @property
    def area(self) -> Optional[int]:
        """Processor-seconds consumed (processors x runtime), or ``None`` if unknown."""
        procs = self.processors
        if procs == MISSING or self.run_time == MISSING:
            return None
        return procs * self.run_time

    def requested_or_actual_time(self) -> int:
        """User estimate if present, else the actual runtime (common simulator input)."""
        if self.requested_time != MISSING:
            return self.requested_time
        return self.run_time
