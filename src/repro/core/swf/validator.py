"""Consistency rules for Standard Workload Format workloads.

Section 2.3 requires that "every datum must abide to strict consistency
rules, that when checked ensure that the workload is always 'clean'".  This
module implements those checks:

Errors (the file does not conform to the standard)
    * job numbers must be the counter 1..N in file order,
    * job lines must be sorted by ascending submit time,
    * the earliest submit time must be zero,
    * field values must be ``-1`` or non-negative (and within their domain,
      e.g. status in {-1,0,1,2,3,4}, ids >= 1),
    * a preceding job (field 17) must reference an earlier job in the file,
    * checkpointed jobs (status 2/3/4 lines) must share the job number of a
      summary line, only the first burst may carry a submit time, and the last
      burst must carry a terminal code (3 or 4).

Warnings (legal but suspicious, typically a conversion bug)
    * allocated processors exceed MaxNodes from the header,
    * runtime exceeds MaxRuntime, memory exceeds MaxMemory,
    * used resources exceed the request while ``AllowOveruse: No``,
    * wait or run time missing on a real (non-model) trace.

:func:`validate` returns a :class:`ValidationReport`; ``report.is_clean``
is true when there are no errors.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

from repro.core.swf.fields import MISSING, CompletionStatus
from repro.core.swf.records import SWFJob
from repro.core.swf.workload import Workload

__all__ = ["Severity", "ValidationIssue", "ValidationReport", "validate"]


class Severity(str, Enum):
    """Severity of a validation finding."""

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class ValidationIssue:
    """A single validation finding tied to a job (or to the whole workload)."""

    severity: Severity
    rule: str
    message: str
    job_number: Optional[int] = None

    def __str__(self) -> str:
        where = f"job {self.job_number}" if self.job_number is not None else "workload"
        return f"[{self.severity.value}] {where}: {self.rule}: {self.message}"


@dataclass
class ValidationReport:
    """All findings from one :func:`validate` run."""

    issues: List[ValidationIssue] = field(default_factory=list)

    def add(
        self,
        severity: Severity,
        rule: str,
        message: str,
        job_number: Optional[int] = None,
    ) -> None:
        self.issues.append(
            ValidationIssue(severity=severity, rule=rule, message=message, job_number=job_number)
        )

    @property
    def errors(self) -> List[ValidationIssue]:
        return [i for i in self.issues if i.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[ValidationIssue]:
        return [i for i in self.issues if i.severity is Severity.WARNING]

    @property
    def is_clean(self) -> bool:
        """True when the workload satisfies every hard consistency rule."""
        return not self.errors

    def summary(self) -> str:
        return f"{len(self.errors)} error(s), {len(self.warnings)} warning(s)"

    def by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = defaultdict(int)
        for issue in self.issues:
            counts[issue.rule] += 1
        return dict(counts)


# ----------------------------------------------------------------------
# individual rules
# ----------------------------------------------------------------------
_NONNEGATIVE_FIELDS = (
    "submit_time",
    "wait_time",
    "run_time",
    "average_cpu_time",
    "used_memory",
    "requested_time",
    "requested_memory",
    "think_time",
)

_POSITIVE_ID_FIELDS = (
    "allocated_processors",
    "requested_processors",
    "user_id",
    "group_id",
    "executable_id",
    "partition_number",
    "preceding_job",
)


def _check_field_domains(job: SWFJob, report: ValidationReport) -> None:
    for name in _NONNEGATIVE_FIELDS:
        value = getattr(job, name)
        if value != MISSING and value < 0:
            report.add(
                Severity.ERROR,
                "field-domain",
                f"{name} must be -1 or non-negative, got {value}",
                job.job_number,
            )
    for name in _POSITIVE_ID_FIELDS:
        value = getattr(job, name)
        if value != MISSING and value < 1:
            report.add(
                Severity.ERROR,
                "field-domain",
                f"{name} must be -1 or >= 1, got {value}",
                job.job_number,
            )
    if job.queue_number != MISSING and job.queue_number < 0:
        report.add(
            Severity.ERROR,
            "field-domain",
            f"queue_number must be -1 or >= 0, got {job.queue_number}",
            job.job_number,
        )
    if job.status not in (s.value for s in CompletionStatus):
        report.add(
            Severity.ERROR,
            "field-domain",
            f"status must be one of -1,0,1,2,3,4, got {job.status}",
            job.job_number,
        )


def _check_numbering_and_order(workload: Workload, report: ValidationReport) -> None:
    expected = 1
    previous_submit: Optional[int] = None
    seen_numbers = set()
    for job in workload:
        if job.job_number in seen_numbers and job.is_summary_line:
            report.add(
                Severity.ERROR,
                "job-numbering",
                "duplicate job number on a summary line",
                job.job_number,
            )
        seen_numbers.add(job.job_number)
        if job.is_summary_line:
            if job.job_number != expected:
                report.add(
                    Severity.ERROR,
                    "job-numbering",
                    f"summary job numbers must be sequential starting at 1 "
                    f"(expected {expected}, got {job.job_number})",
                    job.job_number,
                )
                expected = job.job_number + 1
            else:
                expected += 1
        if job.submit_time != MISSING:
            if previous_submit is not None and job.submit_time < previous_submit:
                report.add(
                    Severity.ERROR,
                    "submit-order",
                    f"submit times must be non-decreasing "
                    f"({job.submit_time} after {previous_submit})",
                    job.job_number,
                )
            previous_submit = job.submit_time

    summary = workload.summary_jobs()
    known_submits = [j.submit_time for j in summary if j.submit_time != MISSING]
    if known_submits and min(known_submits) != 0:
        report.add(
            Severity.ERROR,
            "time-origin",
            f"the earliest submit time must be 0, got {min(known_submits)}",
        )


def _check_dependencies(workload: Workload, report: ValidationReport) -> None:
    summary_numbers = {j.job_number for j in workload.summary_jobs()}
    for job in workload.summary_jobs():
        if job.preceding_job == MISSING:
            continue
        if job.preceding_job >= job.job_number:
            report.add(
                Severity.ERROR,
                "feedback",
                f"preceding job {job.preceding_job} is not an earlier job",
                job.job_number,
            )
        elif job.preceding_job not in summary_numbers:
            report.add(
                Severity.ERROR,
                "feedback",
                f"preceding job {job.preceding_job} does not exist in the workload",
                job.job_number,
            )
        if job.think_time == MISSING:
            report.add(
                Severity.WARNING,
                "feedback",
                "a preceding job is given but think time is unknown",
                job.job_number,
            )


def _check_checkpoint_groups(workload: Workload, report: ValidationReport) -> None:
    partial_by_job: Dict[int, List[SWFJob]] = defaultdict(list)
    for job in workload.partial_jobs():
        partial_by_job[job.job_number].append(job)
    summary_by_number = {j.job_number: j for j in workload.summary_jobs()}
    for job_number, bursts in partial_by_job.items():
        if job_number not in summary_by_number:
            report.add(
                Severity.ERROR,
                "checkpoint",
                "partial-execution lines without a summary line",
                job_number,
            )
            continue
        # Only the first burst carries a submit time; the rest only a wait time.
        for idx, burst in enumerate(bursts):
            if idx > 0 and burst.submit_time != MISSING:
                report.add(
                    Severity.ERROR,
                    "checkpoint",
                    "only the first partial line may carry a submit time",
                    job_number,
                )
        terminal = bursts[-1].completion_status
        if not terminal.is_terminal_partial:
            report.add(
                Severity.ERROR,
                "checkpoint",
                f"the last partial line must have status 3 or 4, got {terminal.value}",
                job_number,
            )
        for burst in bursts[:-1]:
            if burst.completion_status is not CompletionStatus.PARTIAL_TO_BE_CONTINUED:
                report.add(
                    Severity.ERROR,
                    "checkpoint",
                    "non-final partial lines must have status 2",
                    job_number,
                )
        summary = summary_by_number[job_number]
        known_runtimes = [b.run_time for b in bursts if b.run_time != MISSING]
        if summary.run_time != MISSING and len(known_runtimes) == len(bursts):
            if sum(known_runtimes) != summary.run_time:
                report.add(
                    Severity.WARNING,
                    "checkpoint",
                    f"sum of partial runtimes {sum(known_runtimes)} differs from the "
                    f"summary runtime {summary.run_time}",
                    job_number,
                )
        terminal_ok = (
            terminal is CompletionStatus.PARTIAL_LAST_COMPLETED and summary.is_completed
        ) or (terminal is CompletionStatus.PARTIAL_LAST_KILLED and summary.is_killed)
        if summary.status in (0, 1) and not terminal_ok:
            report.add(
                Severity.WARNING,
                "checkpoint",
                "terminal partial status disagrees with the summary completion status",
                job_number,
            )


def _check_against_header(workload: Workload, report: ValidationReport) -> None:
    header = workload.header
    max_nodes = header.max_nodes
    max_runtime = header.max_runtime
    max_memory = header.max_memory
    allow_overuse = header.allow_overuse
    for job in workload.summary_jobs():
        if max_nodes and job.processors != MISSING and job.processors > max_nodes:
            report.add(
                Severity.WARNING,
                "header-limits",
                f"job uses {job.processors} processors but MaxNodes is {max_nodes}",
                job.job_number,
            )
        if max_runtime and job.run_time != MISSING and job.run_time > max_runtime:
            report.add(
                Severity.WARNING,
                "header-limits",
                f"runtime {job.run_time} exceeds MaxRuntime {max_runtime}",
                job.job_number,
            )
        if max_memory and job.used_memory != MISSING and job.used_memory > max_memory:
            report.add(
                Severity.WARNING,
                "header-limits",
                f"used memory {job.used_memory} exceeds MaxMemory {max_memory}",
                job.job_number,
            )
        if allow_overuse is False:
            if (
                job.requested_time != MISSING
                and job.run_time != MISSING
                and job.run_time > job.requested_time
            ):
                report.add(
                    Severity.WARNING,
                    "overuse",
                    f"runtime {job.run_time} exceeds the request {job.requested_time} "
                    "although AllowOveruse is No",
                    job.job_number,
                )
            if (
                job.requested_memory != MISSING
                and job.used_memory != MISSING
                and job.used_memory > job.requested_memory
            ):
                report.add(
                    Severity.WARNING,
                    "overuse",
                    f"used memory {job.used_memory} exceeds the request "
                    f"{job.requested_memory} although AllowOveruse is No",
                    job.job_number,
                )
            if (
                job.requested_processors != MISSING
                and job.allocated_processors != MISSING
                and job.allocated_processors > job.requested_processors
            ):
                report.add(
                    Severity.WARNING,
                    "overuse",
                    f"allocated {job.allocated_processors} processors exceeds the request "
                    f"{job.requested_processors} although AllowOveruse is No",
                    job.job_number,
                )


def validate(workload: Workload) -> ValidationReport:
    """Check a workload against the standard's consistency rules.

    Returns a :class:`ValidationReport`; ``report.is_clean`` is true when no
    hard rule is violated.  Warnings never make a workload unclean.
    """
    report = ValidationReport()
    for job in workload:
        _check_field_domains(job, report)
    _check_numbering_and_order(workload, report)
    _check_dependencies(workload, report)
    _check_checkpoint_groups(workload, report)
    _check_against_header(workload, report)
    return report
