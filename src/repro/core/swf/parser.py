"""Parsing Standard Workload Format files.

The format is line-oriented:

* lines beginning with ``;`` are comments; the leading comment block may
  contain ``;Label: value`` header comments with predefined labels,
* every other non-empty line is a job: whitespace-separated integers, one
  per field, in the standard order, with ``-1`` for unknown values.

The parser is strict by default (non-integer tokens or a wrong field count
raise :class:`SWFParseError` with the offending line number) but can be run
in ``lenient`` mode, in which malformed job lines are collected and skipped —
useful when ingesting historical archive files with known quirks.
"""

from __future__ import annotations

import io
import os
from dataclasses import dataclass, field
from typing import List, Optional, TextIO, Tuple, Union

from repro.core.swf.fields import FIELD_COUNT
from repro.core.swf.header import HeaderEntry, SWFHeader
from repro.core.swf.records import SWFJob
from repro.core.swf.workload import Workload

__all__ = ["SWFParseError", "ParseReport", "parse_swf", "parse_swf_text", "iter_swf_lines"]


class SWFParseError(ValueError):
    """Raised for malformed SWF input in strict mode."""

    def __init__(self, message: str, line_number: Optional[int] = None) -> None:
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)
        self.line_number = line_number


@dataclass
class ParseReport:
    """Summary of a lenient parse: how many lines were kept, skipped, and why."""

    job_lines: int = 0
    comment_lines: int = 0
    blank_lines: int = 0
    skipped: List[Tuple[int, str]] = field(default_factory=list)

    @property
    def skipped_count(self) -> int:
        return len(self.skipped)


def _split_header_comment(text: str) -> Optional[HeaderEntry]:
    """Interpret a comment line as a ``;Label: value`` header entry, if it is one."""
    body = text.lstrip(";").strip()
    if ":" not in body:
        return None
    label, _, value = body.partition(":")
    label = label.strip()
    if not label or " " in label.strip():
        # Header labels are single words (e.g. MaxNodes, StartTime); a colon
        # inside free prose is not a header entry.
        return None
    return HeaderEntry(label=label, value=value.strip())


def _parse_job_line(text: str, line_number: int) -> SWFJob:
    tokens = text.split()
    if len(tokens) != FIELD_COUNT:
        raise SWFParseError(
            f"expected {FIELD_COUNT} fields, found {len(tokens)}", line_number
        )
    values = []
    for token in tokens:
        try:
            values.append(int(token))
        except ValueError:
            # The standard mandates integers; some archive files carry floats
            # (e.g. fractional seconds).  Accept a float token only when it is
            # numeric, truncating toward zero, to stay practical while keeping
            # garbage out.
            try:
                values.append(int(float(token)))
            except ValueError as exc:
                raise SWFParseError(f"non-numeric field value {token!r}", line_number) from exc
    try:
        return SWFJob.from_fields(values)
    except (TypeError, ValueError) as exc:
        raise SWFParseError(str(exc), line_number) from exc


def iter_swf_lines(stream: TextIO):
    """Yield ``(line_number, kind, text)`` with ``kind`` in {'comment', 'blank', 'job'}."""
    for line_number, raw in enumerate(stream, start=1):
        stripped = raw.strip()
        if not stripped:
            yield line_number, "blank", stripped
        elif stripped.startswith(";"):
            yield line_number, "comment", stripped
        else:
            yield line_number, "job", stripped


def parse_swf_stream(
    stream: TextIO,
    name: str = "workload",
    strict: bool = True,
) -> Tuple[Workload, ParseReport]:
    """Parse an open text stream into a :class:`Workload` plus a :class:`ParseReport`."""
    header = SWFHeader()
    jobs: List[SWFJob] = []
    report = ParseReport()
    seen_job = False
    for line_number, kind, text in iter_swf_lines(stream):
        if kind == "blank":
            report.blank_lines += 1
            continue
        if kind == "comment":
            report.comment_lines += 1
            if not seen_job:
                entry = _split_header_comment(text)
                if entry is not None:
                    header.add(entry.label, entry.value)
            continue
        seen_job = True
        try:
            jobs.append(_parse_job_line(text, line_number))
            report.job_lines += 1
        except SWFParseError as exc:
            if strict:
                raise
            report.skipped.append((line_number, str(exc)))
    workload = Workload(jobs=jobs, header=header, name=name)
    return workload, report


def parse_swf_text(
    text: str, name: str = "workload", strict: bool = True
) -> Workload:
    """Parse SWF content given as a string."""
    workload, _ = parse_swf_stream(io.StringIO(text), name=name, strict=strict)
    return workload


def parse_swf(
    path: Union[str, os.PathLike],
    strict: bool = True,
    with_report: bool = False,
):
    """Parse an SWF file from disk.

    Parameters
    ----------
    path:
        File to read.
    strict:
        If true (default) malformed job lines raise :class:`SWFParseError`;
        otherwise they are skipped and recorded in the report.
    with_report:
        If true, return ``(workload, report)`` instead of just the workload.
    """
    path = os.fspath(path)
    name = os.path.splitext(os.path.basename(path))[0]
    with open(path, "r", encoding="utf-8") as handle:
        workload, report = parse_swf_stream(handle, name=name, strict=strict)
    if with_report:
        return workload, report
    return workload
