"""Header comments of a Standard Workload Format file.

The first lines of an SWF file may be special comments of the form
``;Label: value`` that describe the workload as a whole (Section 2.3,
"Header Comments").  :class:`SWFHeader` models them with typed accessors for
the labels the standard predefines, while preserving unknown labels and their
order so that a parse → write round trip is lossless.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple

from repro.core.swf.fields import HEADER_LABELS, SWF_VERSION, RequestedTimeKind

__all__ = ["SWFHeader", "HeaderEntry"]


def _format_utc(epoch_seconds: int) -> str:
    """Render a Unix timestamp in the ``StartTime`` style of archive logs.

    Rendered explicitly from the UTC calendar (never the process locale or
    local timezone), so the same epoch always yields the same bytes.
    """
    from datetime import datetime, timezone

    moment = datetime.fromtimestamp(epoch_seconds, tz=timezone.utc)
    days = ("Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun")
    months = (
        "Jan", "Feb", "Mar", "Apr", "May", "Jun",
        "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
    )
    return (
        f"{days[moment.weekday()]} {months[moment.month - 1]} "
        f"{moment.day:02d} {moment.hour:02d}:{moment.minute:02d}:"
        f"{moment.second:02d} UTC {moment.year}"
    )


@dataclass(frozen=True)
class HeaderEntry:
    """One ``;Label: value`` header comment line."""

    label: str
    value: str

    def format(self) -> str:
        """Render the entry as it appears in the file."""
        return f"; {self.label}: {self.value}"


class SWFHeader:
    """Ordered collection of header comments with typed convenience accessors.

    The header behaves like a multimap: labels such as ``Note``, ``Queue`` and
    ``Partition`` may legitimately appear several times, so :meth:`get`
    returns the first value and :meth:`get_all` every value in order.
    """

    def __init__(self, entries: Optional[Iterable[HeaderEntry]] = None) -> None:
        self._entries: List[HeaderEntry] = list(entries or [])

    # ------------------------------------------------------------------
    # generic access
    # ------------------------------------------------------------------
    @property
    def entries(self) -> Tuple[HeaderEntry, ...]:
        """All header entries in file order."""
        return tuple(self._entries)

    def add(self, label: str, value) -> "SWFHeader":
        """Append a header entry (returns self for chaining)."""
        label = str(label).strip()
        if not label:
            raise ValueError("header label must be non-empty")
        self._entries.append(HeaderEntry(label=label, value=str(value).strip()))
        return self

    def set(self, label: str, value) -> "SWFHeader":
        """Replace all entries with ``label`` by a single entry (or append)."""
        label = str(label).strip()
        kept = [e for e in self._entries if e.label.lower() != label.lower()]
        kept.append(HeaderEntry(label=label, value=str(value).strip()))
        self._entries = kept
        return self

    def get(self, label: str, default: Optional[str] = None) -> Optional[str]:
        """First value recorded for ``label`` (case-insensitive), or ``default``."""
        for entry in self._entries:
            if entry.label.lower() == label.lower():
                return entry.value
        return default

    def get_all(self, label: str) -> List[str]:
        """Every value recorded for ``label``, in order."""
        return [e.value for e in self._entries if e.label.lower() == label.lower()]

    def get_int(self, label: str, default: Optional[int] = None) -> Optional[int]:
        """First value for ``label`` parsed as an integer, or ``default``."""
        raw = self.get(label)
        if raw is None:
            return default
        try:
            return int(float(raw.split()[0]))
        except (ValueError, IndexError):
            return default

    def get_bool(self, label: str, default: Optional[bool] = None) -> Optional[bool]:
        """First value for ``label`` parsed as a Yes/No boolean, or ``default``."""
        raw = self.get(label)
        if raw is None:
            return default
        lowered = raw.strip().lower()
        if lowered in ("yes", "true", "1"):
            return True
        if lowered in ("no", "false", "0"):
            return False
        return default

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, label: str) -> bool:
        return self.get(label) is not None

    def __eq__(self, other) -> bool:
        if not isinstance(other, SWFHeader):
            return NotImplemented
        return self._entries == other._entries

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SWFHeader({len(self._entries)} entries)"

    # ------------------------------------------------------------------
    # typed accessors for the predefined labels
    # ------------------------------------------------------------------
    @property
    def version(self) -> Optional[int]:
        """Value of the ``Version`` label."""
        return self.get_int("Version")

    @property
    def computer(self) -> Optional[str]:
        return self.get("Computer")

    @property
    def installation(self) -> Optional[str]:
        return self.get("Installation")

    @property
    def max_nodes(self) -> Optional[int]:
        """System size from ``MaxNodes`` (falls back to ``MaxProcs``)."""
        nodes = self.get_int("MaxNodes")
        if nodes is not None:
            return nodes
        return self.get_int("MaxProcs")

    @property
    def max_runtime(self) -> Optional[int]:
        return self.get_int("MaxRuntime")

    @property
    def max_memory(self) -> Optional[int]:
        return self.get_int("MaxMemory")

    @property
    def allow_overuse(self) -> Optional[bool]:
        return self.get_bool("AllowOveruse")

    @property
    def start_time(self) -> Optional[str]:
        return self.get("StartTime")

    @property
    def end_time(self) -> Optional[str]:
        return self.get("EndTime")

    @property
    def notes(self) -> List[str]:
        return self.get_all("Note")

    @property
    def requested_time_kind(self) -> RequestedTimeKind:
        """How field 9 should be interpreted, derived from header notes.

        The standard says the meaning of "Requested Time" (wall-clock versus
        average CPU time per processor) "is determined by a header comment";
        we look for a ``Note`` containing "cpu" near "requested time" and
        default to wall-clock, which is what every archive log uses.
        """
        for note in self.notes:
            lowered = note.lower()
            if "requested time" in lowered or "requested_time" in lowered:
                if "cpu" in lowered:
                    return RequestedTimeKind.AVERAGE_CPU
                return RequestedTimeKind.WALLCLOCK
        return RequestedTimeKind.WALLCLOCK

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def standard(
        cls,
        computer: str,
        installation: str,
        max_nodes: int,
        max_runtime: Optional[int] = None,
        max_memory: Optional[int] = None,
        allow_overuse: bool = False,
        conversion: str = "repro parsched-bench",
        acknowledge: str = "synthetic workload (no acknowledgement required)",
        queues: Optional[str] = None,
        partitions: Optional[str] = None,
        notes: Optional[Iterable[str]] = None,
        unix_start_time: Optional[int] = None,
        duration_seconds: Optional[int] = None,
    ) -> "SWFHeader":
        """Build a header carrying every predefined label that applies.

        This is what the synthetic-archive generators use so that generated
        traces are self-describing, exactly like archive traces.

        ``unix_start_time`` (and the derived ``StartTime``/``EndTime``
        labels, when ``duration_seconds`` is also given) must be a *fixed*
        value chosen by the caller, never the wall clock: generated traces
        are content-addressed by the trace catalog, and a timestamp that
        changed per invocation would give identical workloads different
        digests.
        """
        header = cls()
        header.add("Version", SWF_VERSION)
        header.add("Computer", computer)
        header.add("Installation", installation)
        header.add("Acknowledge", acknowledge)
        header.add("Conversion", conversion)
        if unix_start_time is not None:
            header.add("UnixStartTime", int(unix_start_time))
            header.add("TimeZoneString", "UTC")
            header.add("StartTime", _format_utc(int(unix_start_time)))
            if duration_seconds is not None:
                header.add(
                    "EndTime", _format_utc(int(unix_start_time) + int(duration_seconds))
                )
        header.add("MaxNodes", max_nodes)
        if max_runtime is not None:
            header.add("MaxRuntime", max_runtime)
        if max_memory is not None:
            header.add("MaxMemory", max_memory)
        header.add("AllowOveruse", "Yes" if allow_overuse else "No")
        header.add(
            "Queues",
            queues
            if queues is not None
            else "queue 0 denotes interactive jobs, queue 1 denotes batch jobs",
        )
        if partitions is not None:
            header.add("Partitions", partitions)
        for note in notes or ():
            header.add("Note", note)
        return header

    def known_labels(self) -> List[str]:
        """Labels present in this header that the standard predefines."""
        predefined = {label.lower() for label in HEADER_LABELS}
        return [e.label for e in self._entries if e.label.lower() in predefined]

    def unknown_labels(self) -> List[str]:
        """Labels present in this header that the standard does not predefine."""
        predefined = {label.lower() for label in HEADER_LABELS}
        return [e.label for e in self._entries if e.label.lower() not in predefined]
