"""Anonymization: mapping raw identities to incremental numbers.

The standard requires that "users and executables are given by incremental
numbers, which makes their parsing easier, makes grouping by
users/executables easier, hides administrative issues, and hides sensitive
information".  :class:`IdentityMapper` performs that renumbering for any
identity-like column (user, group, executable, queue name, partition name)
when converting raw accounting logs, and :func:`anonymize_workload` re-packs
the id spaces of an existing workload so they are dense (1..N by first
appearance).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional

from repro.core.swf.fields import MISSING
from repro.core.swf.header import SWFHeader
from repro.core.swf.workload import Workload

__all__ = ["IdentityMapper", "anonymize_workload"]


class IdentityMapper:
    """Assigns stable incremental integers (1, 2, 3, ...) to raw identities.

    The first distinct identity seen receives 1, the second 2, and so on —
    "a natural number, between one and the number of different users".  The
    mapping is recorded so a conversion can be audited (but should not be
    published alongside the anonymized trace).
    """

    def __init__(self, start: int = 1) -> None:
        if start < 1:
            raise ValueError("identity numbering must start at >= 1")
        self._next = start
        self._mapping: Dict[Hashable, int] = {}

    def map(self, raw: Optional[Hashable]) -> int:
        """Return the incremental number for ``raw`` (MISSING for None/empty)."""
        if raw is None or raw == "" or raw == MISSING:
            return MISSING
        if raw not in self._mapping:
            self._mapping[raw] = self._next
            self._next += 1
        return self._mapping[raw]

    def __len__(self) -> int:
        return len(self._mapping)

    @property
    def mapping(self) -> Dict[Hashable, int]:
        """Copy of the raw-identity to number mapping built so far."""
        return dict(self._mapping)

    def inverse(self) -> Dict[int, Hashable]:
        """Number to raw-identity mapping (for auditing a conversion)."""
        return {number: raw for raw, number in self._mapping.items()}


def anonymize_workload(workload: Workload) -> Workload:
    """Re-pack the user, group, and executable id spaces to dense 1..N numbering.

    Ids are assigned in order of first appearance, which preserves grouping
    structure while discarding any administrative meaning the original
    numbers may have carried.  Missing values stay missing.
    """
    users = IdentityMapper()
    groups = IdentityMapper()
    executables = IdentityMapper()
    jobs = []
    for job in workload:
        jobs.append(
            job.replace(
                user_id=users.map(job.user_id if job.user_id != MISSING else None),
                group_id=groups.map(job.group_id if job.group_id != MISSING else None),
                executable_id=executables.map(
                    job.executable_id if job.executable_id != MISSING else None
                ),
            )
        )
    return Workload(jobs, SWFHeader(workload.header.entries), name=workload.name)
