"""Multi-line (checkpoint / swap-out) job records.

The standard allows a job that was checkpointed or swapped out to appear on
several lines: one summary line (status 0 or 1) covering the whole job, plus
one line per partial execution burst (status 2 for "to be continued", 3/4 for
the final burst).  This module provides:

* :class:`CheckpointedJob` — a summary job together with its bursts,
* :func:`group_checkpointed` — collect the multi-line records of a workload,
* :func:`expand_to_bursts` — synthesize burst lines for a job given burst
  runtimes (used by tests and by the synthetic generators to exercise the
  code path),
* :func:`summarize_bursts` — rebuild the single-line summary from bursts.

Workload *studies* should only use summary lines (the standard is explicit on
this); :meth:`Workload.summary_jobs` already provides that view.  The tools
here exist for studies of the logged system itself and for validation.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.swf.fields import MISSING, CompletionStatus
from repro.core.swf.records import SWFJob

__all__ = [
    "CheckpointedJob",
    "group_checkpointed",
    "expand_to_bursts",
    "summarize_bursts",
]


@dataclass(frozen=True)
class CheckpointedJob:
    """A summary job line together with its partial-execution burst lines."""

    summary: SWFJob
    bursts: tuple

    @property
    def burst_count(self) -> int:
        return len(self.bursts)

    @property
    def total_burst_runtime(self) -> int:
        """Sum of burst runtimes (unknown bursts contribute zero)."""
        return sum(b.run_time for b in self.bursts if b.run_time != MISSING)

    @property
    def swapped_out_time(self) -> int:
        """Seconds the job spent swapped out between bursts (waits after the first)."""
        return sum(b.wait_time for b in self.bursts[1:] if b.wait_time != MISSING)


def group_checkpointed(jobs: Sequence[SWFJob]) -> List[CheckpointedJob]:
    """Collect the checkpointed (multi-line) jobs from a sequence of SWF lines."""
    summaries: Dict[int, SWFJob] = {}
    bursts: Dict[int, List[SWFJob]] = defaultdict(list)
    for job in jobs:
        if job.is_summary_line:
            summaries[job.job_number] = job
        else:
            bursts[job.job_number].append(job)
    grouped = []
    for job_number, burst_list in bursts.items():
        if job_number in summaries:
            grouped.append(
                CheckpointedJob(summary=summaries[job_number], bursts=tuple(burst_list))
            )
    grouped.sort(key=lambda c: c.summary.job_number)
    return grouped


def expand_to_bursts(
    summary: SWFJob,
    burst_runtimes: Sequence[int],
    swapped_out_gaps: Sequence[int] = (),
) -> List[SWFJob]:
    """Create the burst lines for a checkpointed job.

    Parameters
    ----------
    summary:
        The single-line summary of the job (status 0 or 1); its runtime must
        equal the sum of ``burst_runtimes``.
    burst_runtimes:
        Runtime of each partial execution, in order.
    swapped_out_gaps:
        Seconds spent swapped out before each burst after the first
        (length ``len(burst_runtimes) - 1``); defaults to zeros.

    Returns
    -------
    list of SWFJob
        ``[summary, burst1, burst2, ...]`` exactly as they would appear in a
        standard-conforming file.
    """
    burst_runtimes = list(burst_runtimes)
    if not burst_runtimes:
        raise ValueError("at least one burst is required")
    if any(r < 0 for r in burst_runtimes):
        raise ValueError("burst runtimes must be non-negative")
    if summary.run_time != MISSING and sum(burst_runtimes) != summary.run_time:
        raise ValueError(
            "the summary runtime must equal the sum of the burst runtimes "
            f"({summary.run_time} != {sum(burst_runtimes)})"
        )
    gaps = list(swapped_out_gaps) if swapped_out_gaps else [0] * (len(burst_runtimes) - 1)
    if len(gaps) != len(burst_runtimes) - 1:
        raise ValueError("swapped_out_gaps must have one entry per burst after the first")
    if any(g < 0 for g in gaps):
        raise ValueError("swapped-out gaps must be non-negative")

    terminal = (
        CompletionStatus.PARTIAL_LAST_COMPLETED
        if summary.is_completed
        else CompletionStatus.PARTIAL_LAST_KILLED
    )
    lines: List[SWFJob] = [summary]
    for index, runtime in enumerate(burst_runtimes):
        is_last = index == len(burst_runtimes) - 1
        status = terminal.value if is_last else CompletionStatus.PARTIAL_TO_BE_CONTINUED.value
        if index == 0:
            submit = summary.submit_time
            wait = summary.wait_time
        else:
            submit = MISSING
            wait = gaps[index - 1]
        lines.append(
            summary.replace(
                submit_time=submit,
                wait_time=wait,
                run_time=runtime,
                status=status,
                preceding_job=MISSING,
                think_time=MISSING,
            )
        )
    return lines


def summarize_bursts(bursts: Sequence[SWFJob]) -> SWFJob:
    """Rebuild the single summary line of a checkpointed job from its bursts.

    The summary's submit time is the first burst's, its runtime is the sum of
    all partial runtimes, and its status follows the terminal burst (3 -> 1,
    4 -> 0), per the standard.
    """
    if not bursts:
        raise ValueError("at least one burst is required")
    first = bursts[0]
    last = bursts[-1]
    terminal = last.completion_status
    if not terminal.is_terminal_partial:
        raise ValueError("the last burst must have status 3 or 4")
    status = (
        CompletionStatus.COMPLETED.value
        if terminal is CompletionStatus.PARTIAL_LAST_COMPLETED
        else CompletionStatus.KILLED.value
    )
    total_runtime = sum(b.run_time for b in bursts if b.run_time != MISSING)
    return first.replace(run_time=total_runtime, status=status)
