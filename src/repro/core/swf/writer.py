"""Writing Standard Workload Format files.

The writer emits the header comments first (one ``; Label: value`` line per
entry, in the order they were added), a separator comment, and then one line
of 18 space-separated integers per job.  Output produced by
:func:`write_swf_text` always round-trips through
:func:`~repro.core.swf.parser.parse_swf_text` to an equal workload — that
property is enforced by the test suite and by experiment E2.
"""

from __future__ import annotations

import os
from typing import Optional, TextIO, Union

from repro.core.swf.workload import Workload

__all__ = ["write_swf", "write_swf_text", "format_job_line", "canonical_swf_bytes"]


def format_job_line(job, column_widths: Optional[list] = None) -> str:
    """Render one job as a space-separated integer line.

    ``column_widths`` (optional) right-aligns fields for human-readable
    output; alignment whitespace is insignificant to the parser.
    """
    fields = job.to_fields()
    if column_widths is None:
        return " ".join(str(v) for v in fields)
    return " ".join(str(v).rjust(w) for v, w in zip(fields, column_widths))


def _column_widths(workload: Workload) -> list:
    widths = [1] * 18
    for job in workload:
        for idx, value in enumerate(job.to_fields()):
            widths[idx] = max(widths[idx], len(str(value)))
    return widths


def write_swf_stream(workload: Workload, stream: TextIO, align: bool = False) -> None:
    """Write a workload to an open text stream."""
    for entry in workload.header.entries:
        stream.write(entry.format() + "\n")
    if len(workload.header) > 0:
        stream.write(";\n")
    widths = _column_widths(workload) if align else None
    for job in workload:
        stream.write(format_job_line(job, widths) + "\n")


def write_swf_text(workload: Workload, align: bool = False) -> str:
    """Render a workload as SWF text."""
    import io

    buffer = io.StringIO()
    write_swf_stream(workload, buffer, align=align)
    return buffer.getvalue()


def canonical_swf_bytes(workload: Workload) -> bytes:
    """The canonical byte serialization of a workload.

    Canonical form is the unaligned text rendering — one ``; Label: value``
    line per header entry in order, a ``;`` separator, one unpadded
    space-separated job line per job — encoded UTF-8 with ``\\n`` newlines.
    Two workloads have equal canonical bytes iff they compare equal, so
    ``sha256(canonical_swf_bytes(w))`` is a content address: the trace
    catalog keys its digests and its on-disk cache off this form, which
    makes digests insensitive to alignment whitespace and platform newline
    conventions in the source file.
    """
    return write_swf_text(workload, align=False).encode("utf-8")


def write_swf(
    workload: Workload,
    path: Union[str, os.PathLike],
    align: bool = False,
) -> None:
    """Write a workload to an SWF file on disk."""
    path = os.fspath(path)
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        write_swf_stream(workload, handle, align=align)
