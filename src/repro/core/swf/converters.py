"""Converters from raw accounting-log formats to the Standard Workload Format.

The motivation for the standard was precisely that every site's accounting
log "appears in different orders and formats".  This module implements the
conversion pipeline the standard implies:

1. parse the site-specific record format,
2. anonymize users / groups / executables to incremental numbers
   (:class:`~repro.core.swf.anonymize.IdentityMapper`),
3. shift times so the earliest submittal is zero,
4. sort by ascending submit time and renumber jobs 1..N,
5. attach a descriptive header.

Two representative raw formats are supported:

* :func:`convert_accounting_csv` — a PBS/NQS-style comma-separated accounting
  log with absolute UNIX timestamps (submit/start/end), user, group, queue,
  processor count, memory, and exit status.  This is the shape of the logs
  behind the CTC SP2 and SDSC Paragon archive traces.
* :func:`convert_ipsc_log` — a whitespace-separated log in the style of the
  NASA Ames iPSC/860 records (user, application, cube size, date, time,
  runtime, job class).

Both return a standard-conforming :class:`~repro.core.swf.workload.Workload`.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.swf.anonymize import IdentityMapper
from repro.core.swf.fields import MISSING
from repro.core.swf.header import SWFHeader
from repro.core.swf.records import SWFJob
from repro.core.swf.workload import Workload

__all__ = [
    "ConversionError",
    "convert_accounting_csv",
    "convert_ipsc_log",
    "ACCOUNTING_CSV_COLUMNS",
]


class ConversionError(ValueError):
    """Raised when a raw log record cannot be interpreted."""


#: Expected column names of the generic accounting CSV format.
ACCOUNTING_CSV_COLUMNS: tuple = (
    "job_id",
    "user",
    "group",
    "queue",
    "submit_ts",
    "start_ts",
    "end_ts",
    "processors",
    "requested_processors",
    "requested_seconds",
    "mem_kb",
    "requested_mem_kb",
    "cpu_seconds",
    "exit_status",
    "executable",
    "partition",
)


def _int_or_missing(value: Optional[str]) -> int:
    if value is None:
        return MISSING
    value = value.strip()
    if value in ("", "-", "-1", "NA", "na", "None"):
        return MISSING
    try:
        return int(float(value))
    except ValueError as exc:
        raise ConversionError(f"cannot interpret {value!r} as an integer") from exc


@dataclass
class _RawJob:
    """Intermediate representation shared by the converters."""

    submit_ts: int
    wait: int
    runtime: int
    processors: int
    cpu_seconds: int = MISSING
    mem_kb: int = MISSING
    requested_processors: int = MISSING
    requested_seconds: int = MISSING
    requested_mem_kb: int = MISSING
    status: int = MISSING
    user: Optional[str] = None
    group: Optional[str] = None
    executable: Optional[str] = None
    queue: Optional[str] = None
    partition: Optional[str] = None
    interactive: bool = False


def _assemble(raw_jobs: List[_RawJob], header: SWFHeader, name: str) -> Workload:
    """Steps 2-5 of the conversion pipeline, shared by all converters."""
    users = IdentityMapper()
    groups = IdentityMapper()
    executables = IdentityMapper()
    queues = IdentityMapper(start=1)
    partitions = IdentityMapper()

    raw_jobs = sorted(raw_jobs, key=lambda r: r.submit_ts)
    if not raw_jobs:
        return Workload([], header, name=name)
    origin = raw_jobs[0].submit_ts

    jobs: List[SWFJob] = []
    for index, raw in enumerate(raw_jobs, start=1):
        queue_number = 0 if raw.interactive else (
            queues.map(raw.queue) if raw.queue is not None else MISSING
        )
        jobs.append(
            SWFJob(
                job_number=index,
                submit_time=raw.submit_ts - origin,
                wait_time=raw.wait,
                run_time=raw.runtime,
                allocated_processors=raw.processors,
                average_cpu_time=raw.cpu_seconds,
                used_memory=raw.mem_kb,
                requested_processors=raw.requested_processors,
                requested_time=raw.requested_seconds,
                requested_memory=raw.requested_mem_kb,
                status=raw.status,
                user_id=users.map(raw.user),
                group_id=groups.map(raw.group),
                executable_id=executables.map(raw.executable),
                queue_number=queue_number,
                partition_number=partitions.map(raw.partition),
            )
        )
    return Workload(jobs, header, name=name)


# ----------------------------------------------------------------------
# generic accounting CSV (PBS / NQS style)
# ----------------------------------------------------------------------
def convert_accounting_csv(
    text: str,
    computer: str = "unknown parallel machine",
    installation: str = "unknown installation",
    max_nodes: Optional[int] = None,
    name: str = "converted",
) -> Workload:
    """Convert a PBS/NQS-style accounting CSV log to a standard workload.

    The CSV must carry a header row naming at least ``job_id, user, queue,
    submit_ts, start_ts, end_ts, processors``; the remaining columns of
    :data:`ACCOUNTING_CSV_COLUMNS` are optional.  Timestamps are absolute
    seconds (UNIX time); an ``exit_status`` of 0 maps to "completed" and any
    other known value to "killed", per the usual convention.
    """
    reader = csv.DictReader(io.StringIO(text))
    if reader.fieldnames is None:
        raise ConversionError("the accounting CSV has no header row")
    missing_columns = {"job_id", "user", "queue", "submit_ts", "start_ts", "end_ts", "processors"} - set(
        c.strip() for c in reader.fieldnames
    )
    if missing_columns:
        raise ConversionError(
            f"the accounting CSV is missing required columns: {sorted(missing_columns)}"
        )

    raw_jobs: List[_RawJob] = []
    for row_number, row in enumerate(reader, start=2):
        submit = _int_or_missing(row.get("submit_ts"))
        start = _int_or_missing(row.get("start_ts"))
        end = _int_or_missing(row.get("end_ts"))
        if submit == MISSING:
            raise ConversionError(f"row {row_number}: submit_ts is required")
        if start != MISSING and start < submit:
            raise ConversionError(f"row {row_number}: start_ts precedes submit_ts")
        if end != MISSING and start != MISSING and end < start:
            raise ConversionError(f"row {row_number}: end_ts precedes start_ts")
        wait = start - submit if start != MISSING else MISSING
        runtime = end - start if (start != MISSING and end != MISSING) else MISSING
        exit_status = row.get("exit_status")
        if exit_status is None or exit_status.strip() in ("", "-"):
            status = MISSING
        else:
            status = 1 if _int_or_missing(exit_status) == 0 else 0
        queue = (row.get("queue") or "").strip()
        raw_jobs.append(
            _RawJob(
                submit_ts=submit,
                wait=wait,
                runtime=runtime,
                processors=_int_or_missing(row.get("processors")),
                cpu_seconds=_int_or_missing(row.get("cpu_seconds")),
                mem_kb=_int_or_missing(row.get("mem_kb")),
                requested_processors=_int_or_missing(row.get("requested_processors")),
                requested_seconds=_int_or_missing(row.get("requested_seconds")),
                requested_mem_kb=_int_or_missing(row.get("requested_mem_kb")),
                status=status,
                user=(row.get("user") or "").strip() or None,
                group=(row.get("group") or "").strip() or None,
                executable=(row.get("executable") or "").strip() or None,
                queue=queue or None,
                partition=(row.get("partition") or "").strip() or None,
                interactive=queue.lower() in ("interactive", "inter", "debug"),
            )
        )

    sizes = [r.processors for r in raw_jobs if r.processors != MISSING]
    header = SWFHeader.standard(
        computer=computer,
        installation=installation,
        max_nodes=max_nodes if max_nodes is not None else (max(sizes) if sizes else 0),
        notes=["Converted from a PBS/NQS-style accounting CSV by repro.core.swf.converters."],
    )
    return _assemble(raw_jobs, header, name)


# ----------------------------------------------------------------------
# NASA Ames iPSC/860-style log
# ----------------------------------------------------------------------
def convert_ipsc_log(
    text: str,
    computer: str = "Intel iPSC/860",
    installation: str = "NAS-like installation",
    max_nodes: int = 128,
    name: str = "ipsc-converted",
) -> Workload:
    """Convert a NASA-Ames-iPSC/860-style log to a standard workload.

    Each non-comment line carries whitespace-separated fields::

        user  executable  nodes  submit_seconds  runtime_seconds  class

    where ``class`` is ``batch`` or ``interactive`` and times are seconds from
    the start of the log (this mirrors the content — not the exact syntax —
    of the iPSC/860 trace described by Feitelson & Nitzberg 1995; the exact
    original syntax is irrelevant because only the converted SWF is consumed
    downstream).  Jobs on the iPSC ran to completion, so the status field is
    set to "completed"; the machine had no batch queue wait recording, so the
    wait time is zero.
    """
    raw_jobs: List[_RawJob] = []
    for line_number, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#") or stripped.startswith(";"):
            continue
        tokens = stripped.split()
        if len(tokens) != 6:
            raise ConversionError(
                f"line {line_number}: expected 6 whitespace-separated fields, got {len(tokens)}"
            )
        user, executable, nodes, submit, runtime, job_class = tokens
        nodes_i = _int_or_missing(nodes)
        if nodes_i != MISSING and (nodes_i < 1 or (nodes_i & (nodes_i - 1)) != 0):
            raise ConversionError(
                f"line {line_number}: the iPSC/860 allocates power-of-two sub-cubes, got {nodes_i}"
            )
        raw_jobs.append(
            _RawJob(
                submit_ts=_int_or_missing(submit),
                wait=0,
                runtime=_int_or_missing(runtime),
                processors=nodes_i,
                status=1,
                user=user,
                executable=executable,
                queue="interactive" if job_class.lower().startswith("i") else "batch",
                interactive=job_class.lower().startswith("i"),
            )
        )
    header = SWFHeader.standard(
        computer=computer,
        installation=installation,
        max_nodes=max_nodes,
        notes=["Converted from an iPSC/860-style log by repro.core.swf.converters."],
    )
    return _assemble(raw_jobs, header, name)
