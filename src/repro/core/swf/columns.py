"""Array-backed column view of a job list.

Workload-level computations (span, offered load, load scaling, slice and
filter transforms) used to walk ``SWFJob`` objects attribute by attribute
— at 100k+ jobs the per-object overhead dominates.  :class:`JobColumns`
extracts the hot fields once into compact ``array('q')`` (int64) columns;
numpy views over those buffers (zero-copy) let everything downstream
vectorize.

Columns are a *view*: they are derived from the job list on demand and
cached on the :class:`~repro.core.swf.workload.Workload` (invalidated on
append/extend).  The job list remains the source of truth, so nothing
about the SWF object model or on-disk format changes.
"""

from __future__ import annotations

from array import array
from typing import List, Sequence

import numpy as np

from repro.core.swf.fields import MISSING
from repro.core.swf.records import SWFJob

__all__ = ["JobColumns"]


class JobColumns:
    """Int64 columns of the hot SWF fields for a fixed job list.

    ``procs`` is the *resolved* processor count (allocated falling back to
    requested, exactly :attr:`SWFJob.processors`); ``estimate`` is the raw
    requested time.  All values keep the SWF convention of ``-1`` for
    missing.
    """

    __slots__ = (
        "n",
        "job_number",
        "submit",
        "wait",
        "run",
        "estimate",
        "procs",
        "status",
        "queue",
    )

    def __init__(self, jobs: Sequence[SWFJob]) -> None:
        self.n = len(jobs)
        self.job_number = array("q", (j.job_number for j in jobs))
        self.submit = array("q", (j.submit_time for j in jobs))
        self.wait = array("q", (j.wait_time for j in jobs))
        self.run = array("q", (j.run_time for j in jobs))
        self.estimate = array("q", (j.requested_time for j in jobs))
        self.procs = array(
            "q",
            (
                j.allocated_processors
                if j.allocated_processors != MISSING
                else j.requested_processors
                for j in jobs
            ),
        )
        self.status = array("q", (j.status for j in jobs))
        self.queue = array("q", (j.queue_number for j in jobs))

    # ------------------------------------------------------------------
    # numpy views (zero-copy over the array('q') buffers)
    # ------------------------------------------------------------------
    def np(self, name: str) -> np.ndarray:
        """Read-only int64 numpy view of a column (``submit``, ``run``, ...)."""
        column = getattr(self, name)
        if self.n == 0:
            return np.empty(0, dtype=np.int64)
        view = np.frombuffer(column, dtype=np.int64)
        view.flags.writeable = False
        return view

    def summary_mask(self) -> np.ndarray:
        """True for whole-job lines — mirrors :attr:`SWFJob.is_summary_line`.

        Partial-execution lines carry status 2/3/4; every other value
        (including out-of-range codes, which ``completion_status`` maps to
        UNKNOWN) counts as a summary line.
        """
        status = self.np("status")
        return (status < 2) | (status > 4)

    def area_per_job(self) -> np.ndarray:
        """Processor-seconds per job; 0 where size or runtime is unknown."""
        procs = self.np("procs")
        run = self.np("run")
        known = (procs != MISSING) & (run != MISSING)
        return np.where(known, procs * run, 0)


def trusted_jobs_from_fields(rows: Sequence[Sequence[int]]) -> List[SWFJob]:
    """Build jobs from pre-validated 18-field rows, skipping re-coercion.

    The caller guarantees every value is a plain Python ``int`` (the
    transform fast paths derive them from existing jobs' fields or from
    ``.tolist()`` on int64 arrays) — so the frozen-dataclass coercion loop
    in ``SWFJob.__post_init__`` would only re-verify what is already true.
    """
    return [SWFJob._from_trusted_fields(row) for row in rows]
