"""Synthetic outage generation.

No public outage dataset accompanied the paper — it *proposes* that such data
be collected.  To exercise the outage-aware scheduling code path (experiment
E6) we therefore generate synthetic outage logs from two processes the paper
describes:

* **unscheduled failures** (node, network, disk): time between failures drawn
  from a Weibull distribution with shape < 1 (decreasing hazard, as observed
  on production MPPs), repair times log-uniform between a few minutes and a
  day, a small number of nodes affected per event;
* **scheduled maintenance / dedicated time**: periodic windows (e.g. weekly),
  announced well in advance, taking the whole machine or a fixed fraction of
  it down.

Both kinds are merged into one :class:`~repro.core.outage.log.OutageLog`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.outage.log import OutageLog
from repro.core.outage.records import OutageRecord, OutageType
from repro.simulation.distributions import LogUniform, Weibull, make_rng

__all__ = ["OutageModel", "generate_outages"]


@dataclass(frozen=True)
class OutageModel:
    """Parameters of the synthetic outage process.

    Attributes
    ----------
    mtbf_seconds:
        Mean time between unscheduled failures, machine-wide.
    failure_shape:
        Weibull shape of the time-between-failures distribution (< 1 gives
        the bursty failure behaviour observed in practice).
    min_repair_seconds, max_repair_seconds:
        Bounds of the log-uniform repair-time distribution.
    max_nodes_per_failure:
        A failure takes down between 1 and this many nodes (uniform).
    maintenance_interval_seconds:
        Period of scheduled maintenance windows (0 disables them).
    maintenance_duration_seconds:
        Length of each maintenance window.
    maintenance_notice_seconds:
        How far in advance maintenance is announced.
    maintenance_fraction:
        Fraction of the machine taken down by maintenance (1.0 = full drain).
    """

    mtbf_seconds: float = 7 * 24 * 3600.0
    failure_shape: float = 0.7
    min_repair_seconds: int = 10 * 60
    max_repair_seconds: int = 24 * 3600
    max_nodes_per_failure: int = 4
    maintenance_interval_seconds: int = 30 * 24 * 3600
    maintenance_duration_seconds: int = 8 * 3600
    maintenance_notice_seconds: int = 7 * 24 * 3600
    maintenance_fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.mtbf_seconds <= 0:
            raise ValueError("mtbf_seconds must be positive")
        if not 0 < self.maintenance_fraction <= 1.0:
            raise ValueError("maintenance_fraction must be in (0, 1]")
        if self.min_repair_seconds < 1 or self.max_repair_seconds < self.min_repair_seconds:
            raise ValueError("repair-time bounds must satisfy 1 <= min <= max")
        if self.max_nodes_per_failure < 1:
            raise ValueError("max_nodes_per_failure must be >= 1")


_FAILURE_TYPES = (OutageType.CPU_FAILURE, OutageType.NETWORK_FAILURE, OutageType.DISK_FAILURE)
_FAILURE_TYPE_WEIGHTS = (0.6, 0.25, 0.15)


def generate_outages(
    machine_size: int,
    horizon_seconds: int,
    model: Optional[OutageModel] = None,
    seed: Optional[int] = None,
) -> OutageLog:
    """Generate a synthetic outage log covering ``[0, horizon_seconds)``.

    Parameters
    ----------
    machine_size:
        Number of nodes in the machine the workload runs on.
    horizon_seconds:
        Length of the period to cover (typically the workload span).
    model:
        Process parameters; defaults to :class:`OutageModel()`.
    seed:
        RNG seed for reproducibility.
    """
    if machine_size < 1:
        raise ValueError("machine_size must be >= 1")
    if horizon_seconds < 0:
        raise ValueError("horizon_seconds must be non-negative")
    model = model or OutageModel()
    rng = make_rng(seed)

    records = []

    # Unscheduled failures: a Weibull renewal process for the whole machine.
    tbf = Weibull(shape=model.failure_shape, scale=model.mtbf_seconds / _weibull_mean_factor(model.failure_shape))
    repair = LogUniform(model.min_repair_seconds, model.max_repair_seconds)
    t = 0.0
    while True:
        t += tbf.sample(rng)
        if t >= horizon_seconds:
            break
        start = int(t)
        duration = int(repair.sample(rng))
        nodes = int(rng.integers(1, min(model.max_nodes_per_failure, machine_size) + 1))
        outage_type = _FAILURE_TYPES[
            int(rng.choice(len(_FAILURE_TYPES), p=_FAILURE_TYPE_WEIGHTS))
        ]
        components = tuple(
            int(c) for c in rng.choice(machine_size, size=nodes, replace=False)
        )
        records.append(
            OutageRecord(
                announced_time=start,  # unannounced: detected when it happens
                start_time=start,
                end_time=start + max(1, duration),
                outage_type=outage_type,
                nodes_affected=nodes,
                components=components,
            )
        )

    # Scheduled maintenance windows.
    if model.maintenance_interval_seconds > 0:
        nodes_down = max(1, int(round(model.maintenance_fraction * machine_size)))
        start = model.maintenance_interval_seconds
        while start < horizon_seconds:
            announced = max(0, start - model.maintenance_notice_seconds)
            records.append(
                OutageRecord(
                    announced_time=announced,
                    start_time=start,
                    end_time=start + model.maintenance_duration_seconds,
                    outage_type=OutageType.MAINTENANCE,
                    nodes_affected=nodes_down,
                    components=tuple(range(nodes_down)) if nodes_down < machine_size else (),
                )
            )
            start += model.maintenance_interval_seconds

    return OutageLog(records, name="synthetic-outages")


def _weibull_mean_factor(shape: float) -> float:
    """Mean of a unit-scale Weibull with the given shape (gamma(1 + 1/k))."""
    import math

    return math.gamma(1.0 + 1.0 / shape)
