"""The outage-record standard proposed in Section 2.2 of the paper.

For "every outage that removes any portion of a system from operation" the
paper proposes recording:

* the announced time of the outage (when the scheduler learned about it;
  equal to the start time for unannounced failures),
* the start time,
* the end time,
* the type of outage (CPU failure, network failure, facility/maintenance),
* the number of nodes affected, and
* the specific affected components.

:class:`OutageRecord` captures exactly these six data, in the same
integer-seconds time base as the SWF trace it complements ("the two datasets
should be keyed to each other").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional, Tuple

__all__ = ["OutageType", "OutageRecord"]


class OutageType(str, Enum):
    """Type of outage, following the paper's examples."""

    CPU_FAILURE = "cpu"
    NETWORK_FAILURE = "network"
    DISK_FAILURE = "disk"
    FACILITY = "facility"
    MAINTENANCE = "maintenance"
    DEDICATED_TIME = "dedicated"

    @property
    def is_scheduled(self) -> bool:
        """True for human-generated outages that are planned in advance."""
        return self in (OutageType.MAINTENANCE, OutageType.DEDICATED_TIME, OutageType.FACILITY)


@dataclass(frozen=True)
class OutageRecord:
    """One outage event, keyed to the same time origin as the workload trace.

    Attributes
    ----------
    announced_time:
        When the outage information became available to the scheduler.  For
        an unannounced failure this equals ``start_time`` ("the scheduler
        suddenly detect[s] that there were fewer nodes available"); for
        scheduled maintenance it is earlier.
    start_time, end_time:
        When the affected resources left and rejoined service, in seconds.
    outage_type:
        One of :class:`OutageType`.
    nodes_affected:
        How many nodes were removed from operation.
    components:
        The specific affected components (node numbers); empty means
        "any ``nodes_affected`` nodes", letting the simulator choose.
    """

    announced_time: int
    start_time: int
    end_time: int
    outage_type: OutageType
    nodes_affected: int
    components: Tuple[int, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.end_time < self.start_time:
            raise ValueError("an outage must end at or after its start")
        if self.announced_time > self.start_time:
            raise ValueError("an outage cannot be announced after it has started")
        if self.nodes_affected < 1:
            raise ValueError("an outage must affect at least one node")
        if self.components and len(self.components) != self.nodes_affected:
            raise ValueError(
                "when components are listed, their count must equal nodes_affected"
            )
        if isinstance(self.outage_type, str) and not isinstance(self.outage_type, OutageType):
            object.__setattr__(self, "outage_type", OutageType(self.outage_type))

    @property
    def duration(self) -> int:
        """Length of the outage in seconds."""
        return self.end_time - self.start_time

    @property
    def advance_notice(self) -> int:
        """Seconds of warning the scheduler had (zero for unannounced failures)."""
        return self.start_time - self.announced_time

    @property
    def is_announced(self) -> bool:
        """True if the scheduler knew about the outage before it started."""
        return self.advance_notice > 0

    def overlaps(self, start: int, end: int) -> bool:
        """True if the outage intersects the half-open interval [start, end)."""
        return self.start_time < end and start < self.end_time
