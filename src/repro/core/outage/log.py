"""The outage log: a collection of outage records with standard-format I/O.

The paper proposes that "a standard format for outage data should be created
to compliment the scheduling workload traces".  We adopt the same syntactic
conventions as the SWF itself: ``;`` comments, one record per line,
space-separated fields, ``-1`` for unknown values.  The fields, in order, are

``record_number announced_time start_time end_time type_code nodes_affected components...``

where ``type_code`` indexes :data:`TYPE_CODES` and ``components`` is either
``-1`` (unspecified) or ``nodes_affected`` node numbers.
"""

from __future__ import annotations

import io
import os
from typing import Iterable, Iterator, List, Optional, Tuple, Union

from repro.core.outage.records import OutageRecord, OutageType

__all__ = ["OutageLog", "TYPE_CODES", "parse_outage_log", "write_outage_log"]

#: Stable numeric codes for outage types in the on-disk format.
TYPE_CODES: Tuple[OutageType, ...] = (
    OutageType.CPU_FAILURE,      # 0
    OutageType.NETWORK_FAILURE,  # 1
    OutageType.DISK_FAILURE,     # 2
    OutageType.FACILITY,         # 3
    OutageType.MAINTENANCE,      # 4
    OutageType.DEDICATED_TIME,   # 5
)


class OutageLog:
    """Ordered collection of :class:`OutageRecord`, sorted by start time."""

    def __init__(self, records: Optional[Iterable[OutageRecord]] = None, name: str = "outages") -> None:
        self._records: List[OutageRecord] = sorted(records or [], key=lambda r: r.start_time)
        self.name = name

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[OutageRecord]:
        return iter(self._records)

    def __getitem__(self, index):
        return self._records[index]

    def __eq__(self, other) -> bool:
        if not isinstance(other, OutageLog):
            return NotImplemented
        return self._records == other._records

    @property
    def records(self) -> List[OutageRecord]:
        return list(self._records)

    def add(self, record: OutageRecord) -> None:
        """Insert a record, keeping the log sorted by start time."""
        self._records.append(record)
        self._records.sort(key=lambda r: r.start_time)

    def active_at(self, time: int) -> List[OutageRecord]:
        """Outages in progress at ``time``."""
        return [r for r in self._records if r.start_time <= time < r.end_time]

    def known_by(self, time: int) -> List[OutageRecord]:
        """Outages whose existence the scheduler knows about at ``time``."""
        return [r for r in self._records if r.announced_time <= time]

    def in_window(self, start: int, end: int) -> List[OutageRecord]:
        """Outages overlapping the half-open window [start, end)."""
        return [r for r in self._records if r.overlaps(start, end)]

    def total_node_downtime(self) -> int:
        """Sum over records of duration x nodes affected (node-seconds lost)."""
        return sum(r.duration * r.nodes_affected for r in self._records)

    def scheduled(self) -> "OutageLog":
        """Only the scheduled (human-generated) outages."""
        return OutageLog([r for r in self._records if r.outage_type.is_scheduled], name=self.name)

    def unscheduled(self) -> "OutageLog":
        """Only the failures (unscheduled outages)."""
        return OutageLog(
            [r for r in self._records if not r.outage_type.is_scheduled], name=self.name
        )


# ----------------------------------------------------------------------
# on-disk format
# ----------------------------------------------------------------------
def _format_record(index: int, record: OutageRecord) -> str:
    type_code = TYPE_CODES.index(record.outage_type)
    components = (
        " ".join(str(c) for c in record.components) if record.components else "-1"
    )
    return (
        f"{index} {record.announced_time} {record.start_time} {record.end_time} "
        f"{type_code} {record.nodes_affected} {components}"
    )


def write_outage_log_text(log: OutageLog) -> str:
    """Render an outage log in the standard text format."""
    lines = [
        "; Outage log in the standard format proposed by Chapin et al. (JSSPP 1999), Section 2.2",
        "; Fields: record announced_time start_time end_time type_code nodes_affected components...",
        "; Type codes: " + ", ".join(f"{i}={t.value}" for i, t in enumerate(TYPE_CODES)),
    ]
    for index, record in enumerate(log, start=1):
        lines.append(_format_record(index, record))
    return "\n".join(lines) + "\n"


def write_outage_log(log: OutageLog, path: Union[str, os.PathLike]) -> None:
    """Write an outage log to disk."""
    path = os.fspath(path)
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(write_outage_log_text(log))


def parse_outage_log_text(text: str, name: str = "outages") -> OutageLog:
    """Parse an outage log from its standard text format."""
    records: List[OutageRecord] = []
    for line_number, raw in enumerate(io.StringIO(text), start=1):
        stripped = raw.strip()
        if not stripped or stripped.startswith(";"):
            continue
        tokens = stripped.split()
        if len(tokens) < 6:
            raise ValueError(f"line {line_number}: an outage record has at least 6 fields")
        try:
            announced, start, end = int(tokens[1]), int(tokens[2]), int(tokens[3])
            type_code, nodes = int(tokens[4]), int(tokens[5])
        except ValueError as exc:
            raise ValueError(f"line {line_number}: non-integer field") from exc
        if not 0 <= type_code < len(TYPE_CODES):
            raise ValueError(f"line {line_number}: unknown outage type code {type_code}")
        component_tokens = tokens[6:]
        if component_tokens == ["-1"] or not component_tokens:
            components: Tuple[int, ...] = ()
        else:
            components = tuple(int(t) for t in component_tokens)
        records.append(
            OutageRecord(
                announced_time=announced,
                start_time=start,
                end_time=end,
                outage_type=TYPE_CODES[type_code],
                nodes_affected=nodes,
                components=components,
            )
        )
    return OutageLog(records, name=name)


def parse_outage_log(path: Union[str, os.PathLike]) -> OutageLog:
    """Parse an outage log file from disk."""
    path = os.fspath(path)
    name = os.path.splitext(os.path.basename(path))[0]
    with open(path, "r", encoding="utf-8") as handle:
        return parse_outage_log_text(handle.read(), name=name)
