"""The outage-log standard (Section 2.2) and supporting tools.

* :class:`OutageRecord` / :class:`OutageType` — the six proposed fields,
* :class:`OutageLog` with :func:`parse_outage_log` / :func:`write_outage_log`
  — a text format keyed to the workload trace,
* :func:`generate_outages` — synthetic failure + maintenance process,
* :class:`AvailabilityTimeline` — the capacity function schedulers and
  utilization metrics consume.
"""

from repro.core.outage.records import OutageRecord, OutageType
from repro.core.outage.log import (
    TYPE_CODES,
    OutageLog,
    parse_outage_log,
    parse_outage_log_text,
    write_outage_log,
    write_outage_log_text,
)
from repro.core.outage.generator import OutageModel, generate_outages
from repro.core.outage.availability import AvailabilityTimeline

__all__ = [
    "OutageRecord",
    "OutageType",
    "TYPE_CODES",
    "OutageLog",
    "parse_outage_log",
    "parse_outage_log_text",
    "write_outage_log",
    "write_outage_log_text",
    "OutageModel",
    "generate_outages",
    "AvailabilityTimeline",
]
