"""Machine availability derived from an outage log.

The scheduler simulator needs two questions answered:

* how many nodes are available at time ``t`` (capacity timeline), and
* when is the next change in capacity after ``t`` (so draining can plan).

:class:`AvailabilityTimeline` answers both, and also produces the
"effective machine size over a window" integral that utilization metrics
must use when outages are present (the machine-seconds actually available,
not the nominal size times the window).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import List, Optional, Tuple

from repro.core.outage.log import OutageLog

__all__ = ["AvailabilityTimeline"]


class AvailabilityTimeline:
    """Piecewise-constant available-capacity function built from an outage log.

    Overlapping outages stack (each removes its own node count) but available
    capacity never drops below zero — if simultaneous records claim more
    nodes than exist, the machine is simply fully down for the overlap.
    """

    def __init__(self, machine_size: int, outages: Optional[OutageLog] = None) -> None:
        if machine_size < 1:
            raise ValueError("machine_size must be >= 1")
        self.machine_size = machine_size
        self.outages = outages if outages is not None else OutageLog([])
        self._breakpoints, self._capacities = self._build()

    def _build(self) -> Tuple[List[int], List[int]]:
        deltas = {}
        for record in self.outages:
            deltas[record.start_time] = deltas.get(record.start_time, 0) - record.nodes_affected
            deltas[record.end_time] = deltas.get(record.end_time, 0) + record.nodes_affected
        breakpoints = [0]
        capacities = [self.machine_size]
        down = 0
        for time in sorted(deltas):
            down -= deltas[time]  # deltas are negative at start, positive at end
            capacity = max(0, self.machine_size - down)
            if time <= breakpoints[-1]:
                capacities[-1] = capacity
            else:
                breakpoints.append(time)
                capacities.append(capacity)
        return breakpoints, capacities

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def capacity_at(self, time: int) -> int:
        """Available node count at ``time`` (nominal size before any outage)."""
        if time < 0:
            raise ValueError("time must be non-negative")
        index = bisect_right(self._breakpoints, time) - 1
        return self._capacities[max(0, index)]

    def next_change_after(self, time: int) -> Optional[int]:
        """The next instant at which available capacity changes, or ``None``."""
        index = bisect_right(self._breakpoints, time)
        if index >= len(self._breakpoints):
            return None
        return self._breakpoints[index]

    def minimum_capacity(self, start: int, end: int) -> int:
        """Smallest available capacity anywhere in the window [start, end)."""
        if end <= start:
            return self.capacity_at(start)
        minimum = self.capacity_at(start)
        t = self.next_change_after(start)
        while t is not None and t < end:
            minimum = min(minimum, self.capacity_at(t))
            t = self.next_change_after(t)
        return minimum

    def available_node_seconds(self, start: int, end: int) -> int:
        """Integral of available capacity over [start, end) in node-seconds.

        This is the denominator utilization must use when the machine was not
        fully available for the whole window.
        """
        if end <= start:
            return 0
        total = 0
        t = start
        while t < end:
            capacity = self.capacity_at(t)
            nxt = self.next_change_after(t)
            segment_end = end if nxt is None or nxt > end else nxt
            total += capacity * (segment_end - t)
            t = segment_end
        return total

    def breakpoints(self) -> List[Tuple[int, int]]:
        """(time, capacity) pairs describing the piecewise-constant function."""
        return list(zip(self._breakpoints, self._capacities))
