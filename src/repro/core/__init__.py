"""The paper's primary contributions: the SWF and outage-log standards.

* :mod:`repro.core.swf` — the Standard Workload Format, version 2, exactly as
  specified in Section 2.3 of the paper: 18 integer fields per job, header
  comments with fixed labels, ``-1`` for missing values, strict consistency
  rules, multi-line checkpoint records, and the feedback fields.
* :mod:`repro.core.outage` — the outage-log standard proposed in Section 2.2
  ("Including outage information"): announced time, start, end, type,
  nodes affected, affected components.
"""

from repro.core.swf import (
    CompletionStatus,
    SWFHeader,
    SWFJob,
    Workload,
    parse_swf,
    parse_swf_text,
    write_swf,
    write_swf_text,
)
from repro.core.outage import OutageRecord, OutageLog, OutageType

__all__ = [
    "CompletionStatus",
    "SWFHeader",
    "SWFJob",
    "Workload",
    "parse_swf",
    "parse_swf_text",
    "write_swf",
    "write_swf_text",
    "OutageRecord",
    "OutageLog",
    "OutageType",
]
