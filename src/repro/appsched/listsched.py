"""Application (list) schedulers: mapping program graphs onto metasystems.

These are the "implementation toolkit for schedulers" of the WARMstones
design: each policy maps every task of a program graph to a resource of a
metasystem, and the execution simulator then measures the resulting makespan.
The classic heuristics are provided:

* :class:`RoundRobinMapper` — ignore costs entirely (baseline),
* :class:`MinMinMapper` / :class:`MaxMinMapper` — the two canonical batch
  heuristics over (task, resource) completion-time estimates,
* :class:`HEFTMapper` — Heterogeneous Earliest Finish Time: rank tasks by
  upward rank (critical-path-to-exit including average communication), then
  greedily place each on the resource minimizing its earliest finish time.

Mappers assign tasks to *resources*; the execution simulator handles the
processor-level packing inside each resource.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.appsched.graph import ProgramGraph
from repro.appsched.systems import MetaSystem

__all__ = ["GraphMapper", "RoundRobinMapper", "MinMinMapper", "MaxMinMapper", "HEFTMapper"]


class GraphMapper(ABC):
    """Maps every task of a graph to a resource name of a metasystem."""

    name: str = "mapper"

    @abstractmethod
    def map(self, graph: ProgramGraph, system: MetaSystem) -> Dict[str, str]:
        """Return {task name: resource name} covering every task."""


class RoundRobinMapper(GraphMapper):
    """Deal tasks to resources in turn, weighted by processor count."""

    name = "round-robin"

    def map(self, graph: ProgramGraph, system: MetaSystem) -> Dict[str, str]:
        slots: List[str] = []
        for resource in system.resources:
            slots.extend([resource.name] * resource.processors)
        mapping = {}
        for index, task in enumerate(graph.topological_order()):
            mapping[task] = slots[index % len(slots)]
        return mapping


@dataclass
class _ResourceLoad:
    """Running estimate of when a resource's processors become free."""

    free_times: List[float]

    def earliest(self) -> float:
        return min(self.free_times)

    def commit(self, start: float, duration: float) -> None:
        index = self.free_times.index(min(self.free_times))
        self.free_times[index] = max(self.free_times[index], start) + duration


def _initial_loads(system: MetaSystem) -> Dict[str, _ResourceLoad]:
    return {
        r.name: _ResourceLoad(free_times=[0.0] * r.processors) for r in system.resources
    }


class _CompletionTimeMapperBase(GraphMapper):
    """Shared machinery of min-min and max-min."""

    pick_largest: bool = False

    def map(self, graph: ProgramGraph, system: MetaSystem) -> Dict[str, str]:
        loads = _initial_loads(system)
        finish_time: Dict[str, float] = {}
        mapping: Dict[str, str] = {}
        remaining = set(graph.task_names)

        def ready_tasks() -> List[str]:
            return [
                t
                for t in remaining
                if all(p in mapping for p in graph.predecessors(t))
            ]

        while remaining:
            candidates = ready_tasks()
            # (task, resource, completion) minimizing completion per task
            best_per_task = []
            for task in candidates:
                best_resource, best_completion = None, float("inf")
                for resource in system.resources:
                    completion = self._estimate_completion(
                        graph, system, loads, mapping, finish_time, task, resource.name
                    )
                    if completion < best_completion:
                        best_completion = completion
                        best_resource = resource.name
                best_per_task.append((task, best_resource, best_completion))
            chooser = max if self.pick_largest else min
            task, resource, completion = chooser(best_per_task, key=lambda x: x[2])
            mapping[task] = resource
            ready = self._ready_time(graph, system, mapping, finish_time, task, resource)
            duration = system.compute_seconds(resource, graph.task(task).compute_seconds)
            start = max(ready, loads[resource].earliest())
            loads[resource].commit(start, duration)
            finish_time[task] = start + duration
            remaining.remove(task)
        return mapping

    @staticmethod
    def _ready_time(graph, system, mapping, finish_time, task, resource) -> float:
        ready = 0.0
        for pred in graph.predecessors(task):
            transfer = system.transfer_seconds(
                mapping[pred], resource, graph.communication(pred, task)
            )
            ready = max(ready, finish_time[pred] + transfer)
        return ready

    def _estimate_completion(
        self, graph, system, loads, mapping, finish_time, task, resource
    ) -> float:
        ready = self._ready_time(graph, system, mapping, finish_time, task, resource)
        duration = system.compute_seconds(resource, graph.task(task).compute_seconds)
        start = max(ready, loads[resource].earliest())
        return start + duration


class MinMinMapper(_CompletionTimeMapperBase):
    """Repeatedly place the ready task with the smallest best completion time."""

    name = "min-min"
    pick_largest = False


class MaxMinMapper(_CompletionTimeMapperBase):
    """Repeatedly place the ready task with the largest best completion time."""

    name = "max-min"
    pick_largest = True


class HEFTMapper(GraphMapper):
    """Heterogeneous Earliest Finish Time (upward-rank list scheduling)."""

    name = "heft"

    def map(self, graph: ProgramGraph, system: MetaSystem) -> Dict[str, str]:
        mean_speed = sum(r.speed for r in system.resources) / len(system.resources)
        # Mean transfer cost per megabyte across distinct resource pairs.
        names = system.resource_names
        if len(names) > 1:
            pair_costs = [
                system.transfer_seconds(a, b, 1.0)
                for a in names
                for b in names
                if a != b
            ]
            mean_transfer_per_mb = sum(pair_costs) / len(pair_costs)
        else:
            mean_transfer_per_mb = 0.0

        upward: Dict[str, float] = {}
        for task in reversed(graph.topological_order()):
            mean_compute = graph.task(task).compute_seconds / mean_speed
            best_successor = 0.0
            for succ in graph.successors(task):
                comm = graph.communication(task, succ) * mean_transfer_per_mb
                best_successor = max(best_successor, comm + upward[succ])
            upward[task] = mean_compute + best_successor

        loads = _initial_loads(system)
        finish_time: Dict[str, float] = {}
        mapping: Dict[str, str] = {}
        for task in sorted(graph.task_names, key=lambda t: -upward[t]):
            best_resource, best_finish = None, float("inf")
            for resource in system.resources:
                ready = 0.0
                for pred in graph.predecessors(task):
                    if pred not in mapping:
                        # Upward-rank order guarantees predecessors come first
                        # in well-formed DAGs; guard anyway for robustness.
                        continue
                    transfer = system.transfer_seconds(
                        mapping[pred], resource.name, graph.communication(pred, task)
                    )
                    ready = max(ready, finish_time.get(pred, 0.0) + transfer)
                duration = system.compute_seconds(resource.name, graph.task(task).compute_seconds)
                start = max(ready, loads[resource.name].earliest())
                finish = start + duration
                if finish < best_finish:
                    best_finish = finish
                    best_resource = resource.name
            mapping[task] = best_resource
            duration = system.compute_seconds(best_resource, graph.task(task).compute_seconds)
            start = best_finish - duration
            loads[best_resource].commit(start, duration)
            finish_time[task] = best_finish
        return mapping
