"""Annotated program graphs — the application representation of WARMstones.

Section 4.3: "Rather than executing these applications directly, we will
represent them using annotated graphs, and simulate the execution by
interpreting the graphs.  Legion program graphs are well-suited to this
purpose."  A :class:`ProgramGraph` is a directed acyclic graph whose nodes
(:class:`Task`) carry a compute cost (seconds on a reference-speed processor)
and whose edges carry a communication volume (megabytes) that must be
transferred from producer to consumer before the consumer may start.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = ["Task", "ProgramGraph", "GraphError"]


class GraphError(ValueError):
    """Raised for malformed program graphs (cycles, unknown tasks, bad costs)."""


@dataclass(frozen=True)
class Task:
    """One module of a flexible application."""

    name: str
    compute_seconds: float

    def __post_init__(self) -> None:
        if not self.name:
            raise GraphError("a task needs a non-empty name")
        if self.compute_seconds < 0:
            raise GraphError(f"task {self.name!r} has a negative compute cost")


class ProgramGraph:
    """A DAG of tasks with communication volumes on its edges."""

    def __init__(self, name: str = "graph") -> None:
        self.name = name
        self._tasks: Dict[str, Task] = {}
        #: edges as (producer, consumer) -> megabytes
        self._edges: Dict[Tuple[str, str], float] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_task(self, name: str, compute_seconds: float) -> Task:
        """Add a task; names must be unique."""
        if name in self._tasks:
            raise GraphError(f"duplicate task name {name!r}")
        task = Task(name=name, compute_seconds=float(compute_seconds))
        self._tasks[name] = task
        return task

    def add_edge(self, producer: str, consumer: str, megabytes: float = 0.0) -> None:
        """Add a dependency edge carrying ``megabytes`` of data."""
        for endpoint in (producer, consumer):
            if endpoint not in self._tasks:
                raise GraphError(f"unknown task {endpoint!r}")
        if producer == consumer:
            raise GraphError(f"self-dependency on task {producer!r}")
        if megabytes < 0:
            raise GraphError("communication volume must be non-negative")
        self._edges[(producer, consumer)] = float(megabytes)
        if self._has_cycle():
            del self._edges[(producer, consumer)]
            raise GraphError(
                f"adding edge {producer!r} -> {consumer!r} would create a cycle"
            )

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def tasks(self) -> List[Task]:
        return list(self._tasks.values())

    @property
    def task_names(self) -> List[str]:
        return list(self._tasks)

    @property
    def edges(self) -> Dict[Tuple[str, str], float]:
        return dict(self._edges)

    def __len__(self) -> int:
        return len(self._tasks)

    def task(self, name: str) -> Task:
        return self._tasks[name]

    def predecessors(self, name: str) -> List[str]:
        return [p for (p, c) in self._edges if c == name]

    def successors(self, name: str) -> List[str]:
        return [c for (p, c) in self._edges if p == name]

    def communication(self, producer: str, consumer: str) -> float:
        """Megabytes carried on the edge (0 if the edge does not exist)."""
        return self._edges.get((producer, consumer), 0.0)

    def entry_tasks(self) -> List[str]:
        return [name for name in self._tasks if not self.predecessors(name)]

    def exit_tasks(self) -> List[str]:
        return [name for name in self._tasks if not self.successors(name)]

    def total_work(self) -> float:
        """Sum of compute costs (the sequential execution time)."""
        return sum(t.compute_seconds for t in self._tasks.values())

    def total_communication(self) -> float:
        """Sum of edge volumes in megabytes."""
        return sum(self._edges.values())

    # ------------------------------------------------------------------
    # ordering and structure
    # ------------------------------------------------------------------
    def _has_cycle(self) -> bool:
        try:
            self.topological_order()
            return False
        except GraphError:
            return True

    def topological_order(self) -> List[str]:
        """Kahn's algorithm; raises :class:`GraphError` on a cycle."""
        in_degree = {name: 0 for name in self._tasks}
        for _, consumer in self._edges:
            in_degree[consumer] += 1
        ready = sorted(name for name, deg in in_degree.items() if deg == 0)
        order: List[str] = []
        while ready:
            current = ready.pop(0)
            order.append(current)
            for successor in sorted(self.successors(current)):
                in_degree[successor] -= 1
                if in_degree[successor] == 0:
                    ready.append(successor)
            ready.sort()
        if len(order) != len(self._tasks):
            raise GraphError("the program graph contains a cycle")
        return order

    def critical_path_seconds(self) -> float:
        """Length of the longest compute-only path (a lower bound on makespan)."""
        longest: Dict[str, float] = {}
        for name in self.topological_order():
            preds = self.predecessors(name)
            base = max((longest[p] for p in preds), default=0.0)
            longest[name] = base + self._tasks[name].compute_seconds
        return max(longest.values(), default=0.0)

    def width(self) -> int:
        """Maximum number of tasks with no ordering between them at any depth.

        Computed as the largest antichain level of the longest-path
        level decomposition; an adequate parallelism indicator for the
        micro-benchmark generators and the scheduler-selection table.
        """
        level: Dict[str, int] = {}
        for name in self.topological_order():
            preds = self.predecessors(name)
            level[name] = 1 + max((level[p] for p in preds), default=-1)
        counts: Dict[int, int] = {}
        for l in level.values():
            counts[l] = counts.get(l, 0) + 1
        return max(counts.values(), default=0)

    def communication_to_computation_ratio(self) -> float:
        """Total megabytes per second of compute — the CCR used to classify graphs."""
        work = self.total_work()
        return self.total_communication() / work if work > 0 else 0.0
