"""Canonical metasystem representations for the WARMstones environment.

Section 4.3: WARMstones needs "a canonical representation of metasystems"
covering "the local infrastructure (workstations, clusters, supercomputers)
and the overall structure of the metasystem", so that scheduler evaluations
can be made "apples-to-apples" against a range of standard machine
representations.  :class:`MetaSystem` is that representation: a set of
resources (each with a processor count and relative speed) connected by a
network with per-pair latency and bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["Resource", "MetaSystem", "canonical_systems"]


@dataclass(frozen=True)
class Resource:
    """One machine of the metasystem (workstation, cluster, or supercomputer)."""

    name: str
    processors: int
    speed: float = 1.0  # relative to the reference processor of the graphs

    def __post_init__(self) -> None:
        if self.processors < 1:
            raise ValueError("a resource needs at least one processor")
        if self.speed <= 0:
            raise ValueError("speed must be positive")


class MetaSystem:
    """Resources plus the network connecting them.

    Communication between two tasks placed on the *same* resource is free (a
    shared file system or memory); between different resources it costs
    ``latency + megabytes / bandwidth`` seconds, using the per-pair values or
    the system-wide defaults.
    """

    def __init__(
        self,
        name: str,
        resources: List[Resource],
        default_latency: float = 0.05,
        default_bandwidth_mbps: float = 100.0,
    ) -> None:
        if not resources:
            raise ValueError("a metasystem needs at least one resource")
        names = [r.name for r in resources]
        if len(set(names)) != len(names):
            raise ValueError("resource names must be unique")
        if default_latency < 0 or default_bandwidth_mbps <= 0:
            raise ValueError("latency must be >= 0 and bandwidth positive")
        self.name = name
        self._resources = {r.name: r for r in resources}
        self.default_latency = default_latency
        self.default_bandwidth_mbps = default_bandwidth_mbps
        #: (a, b) -> (latency seconds, bandwidth MB/s); symmetric
        self._links: Dict[Tuple[str, str], Tuple[float, float]] = {}

    # ------------------------------------------------------------------
    @property
    def resources(self) -> List[Resource]:
        return list(self._resources.values())

    @property
    def resource_names(self) -> List[str]:
        return list(self._resources)

    def resource(self, name: str) -> Resource:
        return self._resources[name]

    def total_processors(self) -> int:
        return sum(r.processors for r in self._resources.values())

    def set_link(self, a: str, b: str, latency: float, bandwidth_mbps: float) -> None:
        """Override the network parameters between two resources (symmetric)."""
        for endpoint in (a, b):
            if endpoint not in self._resources:
                raise KeyError(f"unknown resource {endpoint!r}")
        if latency < 0 or bandwidth_mbps <= 0:
            raise ValueError("latency must be >= 0 and bandwidth positive")
        self._links[(a, b)] = (latency, bandwidth_mbps)
        self._links[(b, a)] = (latency, bandwidth_mbps)

    def transfer_seconds(self, a: str, b: str, megabytes: float) -> float:
        """Time to move ``megabytes`` from resource ``a`` to resource ``b``."""
        if a == b or megabytes <= 0:
            return 0.0
        latency, bandwidth = self._links.get((a, b), (self.default_latency, self.default_bandwidth_mbps))
        return latency + megabytes / bandwidth

    def compute_seconds(self, resource_name: str, reference_seconds: float) -> float:
        """Execution time of a reference-cost task on the named resource."""
        return reference_seconds / self._resources[resource_name].speed


def canonical_systems() -> List[MetaSystem]:
    """The three "standard machine representations" experiment E10 evaluates on.

    * ``cluster`` — a single well-connected commodity cluster,
    * ``supercomputer+workstations`` — one fast large machine plus slow
      desktop harvesting, separated by a slow WAN,
    * ``federated-centers`` — several mid-size centers with decent WAN links
      (the computational-grid picture of the paper's introduction).
    """
    cluster = MetaSystem(
        name="cluster",
        resources=[Resource("cluster", processors=64, speed=1.0)],
        default_latency=0.001,
        default_bandwidth_mbps=1000.0,
    )

    hybrid = MetaSystem(
        name="supercomputer+workstations",
        resources=[
            Resource("mpp", processors=128, speed=2.0),
            Resource("desktops", processors=64, speed=0.5),
        ],
        default_latency=0.2,
        default_bandwidth_mbps=10.0,
    )

    federated = MetaSystem(
        name="federated-centers",
        resources=[
            Resource("center-a", processors=64, speed=1.0),
            Resource("center-b", processors=48, speed=1.2),
            Resource("center-c", processors=32, speed=0.8),
        ],
        default_latency=0.05,
        default_bandwidth_mbps=50.0,
    )
    federated.set_link("center-a", "center-b", latency=0.03, bandwidth_mbps=100.0)
    return [cluster, hybrid, federated]
