"""The WARMstones evaluation environment (Section 4.3).

WARMstones = "Wide-Area Resource Management stones": a benchmark suite of
annotated program graphs, an implementation toolkit for schedulers, canonical
metasystem representations, and a simulation engine.  This module ties the
pieces from :mod:`repro.appsched` together and implements the usage scenarios
the paper enumerates:

* evaluate a new scheduling algorithm over the benchmark suite and the
  standard system representations ("apples-to-apples" comparison) —
  :meth:`Warmstones.scorecard`;
* given an application and a known target system, select among candidate
  scheduling algorithms — :meth:`Warmstones.best_mapper_for`;
* build an off-line table of (application structure, system) → best scheduler
  for run-time lookup of a "good" algorithm by closest match —
  :meth:`Warmstones.build_selection_table` / :meth:`Warmstones.lookup`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.appsched.generators import benchmark_suite
from repro.appsched.graph import ProgramGraph
from repro.appsched.listsched import (
    GraphMapper,
    HEFTMapper,
    MaxMinMapper,
    MinMinMapper,
    RoundRobinMapper,
)
from repro.appsched.simulator import GraphExecutionResult, simulate_mapping
from repro.appsched.systems import MetaSystem, canonical_systems

__all__ = ["ScorecardEntry", "Warmstones"]


@dataclass(frozen=True)
class ScorecardEntry:
    """One (graph, system, mapper) evaluation."""

    graph: str
    system: str
    mapper: str
    makespan: float
    speedup: float


@dataclass(frozen=True)
class _TableKey:
    """Application-structure / system signature used for closest-match lookup."""

    width: int
    ccr_class: int        # 0 = compute-bound, 1 = balanced, 2 = communication-bound
    resources: int

    @staticmethod
    def of(graph: ProgramGraph, system: MetaSystem) -> "_TableKey":
        ccr = graph.communication_to_computation_ratio()
        if ccr < 0.01:
            ccr_class = 0
        elif ccr < 0.2:
            ccr_class = 1
        else:
            ccr_class = 2
        return _TableKey(
            width=graph.width(), ccr_class=ccr_class, resources=len(system.resources)
        )

    def distance(self, other: "_TableKey") -> float:
        return (
            abs(self.width - other.width)
            + 3 * abs(self.ccr_class - other.ccr_class)
            + 2 * abs(self.resources - other.resources)
        )


class Warmstones:
    """Benchmark suite + mappers + canonical systems + simulation engine."""

    def __init__(
        self,
        graphs: Optional[Sequence[ProgramGraph]] = None,
        systems: Optional[Sequence[MetaSystem]] = None,
        mappers: Optional[Sequence[GraphMapper]] = None,
    ) -> None:
        self.graphs: List[ProgramGraph] = list(graphs) if graphs is not None else benchmark_suite(seed=0)
        self.systems: List[MetaSystem] = list(systems) if systems is not None else canonical_systems()
        self.mappers: List[GraphMapper] = (
            list(mappers)
            if mappers is not None
            else [RoundRobinMapper(), MinMinMapper(), MaxMinMapper(), HEFTMapper()]
        )
        self._selection_table: Dict[_TableKey, str] = {}

    # ------------------------------------------------------------------
    # core evaluation
    # ------------------------------------------------------------------
    def evaluate(self, graph: ProgramGraph, system: MetaSystem, mapper: GraphMapper) -> GraphExecutionResult:
        """Map and simulate one (graph, system, mapper) combination."""
        mapping = mapper.map(graph, system)
        return simulate_mapping(graph, system, mapping, mapper_name=mapper.name)

    def scorecard(self) -> List[ScorecardEntry]:
        """Evaluate every mapper on every graph and system (the E10 table)."""
        entries: List[ScorecardEntry] = []
        for graph in self.graphs:
            for system in self.systems:
                for mapper in self.mappers:
                    result = self.evaluate(graph, system, mapper)
                    entries.append(
                        ScorecardEntry(
                            graph=graph.name,
                            system=system.name,
                            mapper=mapper.name,
                            makespan=result.makespan,
                            speedup=result.speedup_over_sequential(graph, system),
                        )
                    )
        return entries

    def best_mapper_for(self, graph: ProgramGraph, system: MetaSystem) -> Tuple[str, float]:
        """(mapper name, makespan) of the best mapper for this graph and system."""
        best_name, best_makespan = "", float("inf")
        for mapper in self.mappers:
            result = self.evaluate(graph, system, mapper)
            if result.makespan < best_makespan:
                best_makespan = result.makespan
                best_name = mapper.name
        return best_name, best_makespan

    # ------------------------------------------------------------------
    # off-line selection table ("store these results in a table, and at run
    # time look up the closest matches")
    # ------------------------------------------------------------------
    def build_selection_table(self) -> Dict[Tuple[int, int, int], str]:
        """Precompute the best mapper per (structure, system) signature."""
        self._selection_table = {}
        for graph in self.graphs:
            for system in self.systems:
                key = _TableKey.of(graph, system)
                best_name, _ = self.best_mapper_for(graph, system)
                self._selection_table[key] = best_name
        return {
            (k.width, k.ccr_class, k.resources): v for k, v in self._selection_table.items()
        }

    def lookup(self, graph: ProgramGraph, system: MetaSystem) -> str:
        """Recommend a mapper by closest match in the precomputed table."""
        if not self._selection_table:
            self.build_selection_table()
        key = _TableKey.of(graph, system)
        best_key = min(self._selection_table, key=lambda k: k.distance(key))
        return self._selection_table[best_key]
