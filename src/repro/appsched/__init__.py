"""Application scheduling and the WARMstones evaluation environment."""

from repro.appsched.graph import GraphError, ProgramGraph, Task
from repro.appsched.generators import (
    benchmark_suite,
    communication_intensive,
    compute_intensive,
    fork_join,
    master_worker,
    pipeline,
    random_dag,
)
from repro.appsched.systems import MetaSystem, Resource, canonical_systems
from repro.appsched.listsched import (
    GraphMapper,
    HEFTMapper,
    MaxMinMapper,
    MinMinMapper,
    RoundRobinMapper,
)
from repro.appsched.simulator import GraphExecutionResult, TaskExecution, simulate_mapping
from repro.appsched.warmstones import ScorecardEntry, Warmstones

__all__ = [
    "GraphError",
    "ProgramGraph",
    "Task",
    "benchmark_suite",
    "communication_intensive",
    "compute_intensive",
    "fork_join",
    "master_worker",
    "pipeline",
    "random_dag",
    "MetaSystem",
    "Resource",
    "canonical_systems",
    "GraphMapper",
    "HEFTMapper",
    "MaxMinMapper",
    "MinMinMapper",
    "RoundRobinMapper",
    "GraphExecutionResult",
    "TaskExecution",
    "simulate_mapping",
    "ScorecardEntry",
    "Warmstones",
]
