"""Execution simulation of a mapped program graph on a metasystem.

The WARMstones flow is two-phase: "we will first run the scheduler on the
benchmark suite to produce mappings of programs (graphs) to resources, and
then run the simulator using the resultant mapping and a system configuration
as input."  :func:`simulate_mapping` is that second phase.

The simulation is a deterministic list execution: tasks are processed in
topological order (ties broken by earliest readiness); each task becomes
ready when all its predecessors have finished and their output has crossed
the network, then starts on the earliest-available processor of its mapped
resource.  This is the "simple model and estimate the communication time"
level of detail the paper explicitly allows ("depending on how much precision
is required ... we could simulate every packet ... or assume a simple
model").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.appsched.graph import GraphError, ProgramGraph
from repro.appsched.systems import MetaSystem

__all__ = ["TaskExecution", "GraphExecutionResult", "simulate_mapping"]


@dataclass(frozen=True)
class TaskExecution:
    """Timing of one task in a simulated execution."""

    task: str
    resource: str
    processor: int
    start: float
    finish: float

    @property
    def duration(self) -> float:
        return self.finish - self.start


@dataclass
class GraphExecutionResult:
    """Outcome of executing one mapped graph on one metasystem."""

    graph_name: str
    system_name: str
    mapper_name: str
    executions: Dict[str, TaskExecution] = field(default_factory=dict)

    @property
    def makespan(self) -> float:
        """Completion time of the last task (seconds)."""
        if not self.executions:
            return 0.0
        return max(e.finish for e in self.executions.values())

    @property
    def total_compute_seconds(self) -> float:
        return sum(e.duration for e in self.executions.values())

    def resource_busy_seconds(self) -> Dict[str, float]:
        """Busy processor-seconds per resource."""
        busy: Dict[str, float] = {}
        for execution in self.executions.values():
            busy[execution.resource] = busy.get(execution.resource, 0.0) + execution.duration
        return busy

    def speedup_over_sequential(self, graph: ProgramGraph, system: MetaSystem) -> float:
        """Sequential time on the fastest single processor divided by the makespan."""
        fastest = max(r.speed for r in system.resources)
        sequential = graph.total_work() / fastest
        return sequential / self.makespan if self.makespan > 0 else 0.0


def simulate_mapping(
    graph: ProgramGraph,
    system: MetaSystem,
    mapping: Dict[str, str],
    mapper_name: str = "mapping",
) -> GraphExecutionResult:
    """Simulate the execution of ``graph`` on ``system`` under ``mapping``.

    Raises :class:`~repro.appsched.graph.GraphError` when the mapping does
    not cover every task or names unknown resources.
    """
    missing = [t for t in graph.task_names if t not in mapping]
    if missing:
        raise GraphError(f"the mapping does not cover tasks: {missing[:5]}")
    unknown = [r for r in set(mapping.values()) if r not in system.resource_names]
    if unknown:
        raise GraphError(f"the mapping names unknown resources: {unknown}")

    # Per-resource processor availability.
    processor_free: Dict[str, List[float]] = {
        r.name: [0.0] * r.processors for r in system.resources
    }
    result = GraphExecutionResult(
        graph_name=graph.name, system_name=system.name, mapper_name=mapper_name
    )

    finish: Dict[str, float] = {}
    for task_name in graph.topological_order():
        resource = mapping[task_name]
        ready = 0.0
        for pred in graph.predecessors(task_name):
            transfer = system.transfer_seconds(
                mapping[pred], resource, graph.communication(pred, task_name)
            )
            ready = max(ready, finish[pred] + transfer)
        duration = system.compute_seconds(resource, graph.task(task_name).compute_seconds)
        frees = processor_free[resource]
        processor = frees.index(min(frees))
        start = max(ready, frees[processor])
        end = start + duration
        frees[processor] = end
        finish[task_name] = end
        result.executions[task_name] = TaskExecution(
            task=task_name, resource=resource, processor=processor, start=start, finish=end
        )
    return result
