"""Micro-benchmark program-graph generators (the WARMstones benchmark suite).

Section 3.2: "A good first step will be to use accepted practice and generate
micro-benchmarks: individual programs which stress one particular aspect of
the system."  The generators here produce the graph families the paper names,
plus the structural families every application-scheduling study uses:

* :func:`compute_intensive` — embarrassingly parallel, negligible
  communication ("can use all the cycles from all the machines it can get"),
* :func:`communication_intensive` — heavy all-to-next-stage data movement,
* :func:`master_worker` — the structure the paper gives as the simple way to
  make an application flexible,
* :func:`pipeline` — a linear chain of stages with streaming data,
* :func:`fork_join` — parallel phases separated by barriers (the
  Feitelson-Rudolph strawman's barrier structure),
* :func:`random_dag` — layered random DAGs for coverage,
* :func:`benchmark_suite` — the named collection E10 iterates over.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.appsched.graph import ProgramGraph
from repro.simulation.distributions import make_rng

__all__ = [
    "compute_intensive",
    "communication_intensive",
    "master_worker",
    "pipeline",
    "fork_join",
    "random_dag",
    "benchmark_suite",
]


def compute_intensive(
    tasks: int = 32, mean_compute: float = 3600.0, seed: Optional[int] = None
) -> ProgramGraph:
    """Independent tasks, no communication: stresses raw cycle harvesting."""
    if tasks < 1:
        raise ValueError("tasks must be >= 1")
    rng = make_rng(seed)
    graph = ProgramGraph(name=f"compute-intensive-{tasks}")
    for i in range(tasks):
        graph.add_task(f"t{i}", float(rng.uniform(0.5, 1.5) * mean_compute))
    return graph


def communication_intensive(
    stages: int = 4,
    width: int = 8,
    mean_compute: float = 600.0,
    megabytes_per_edge: float = 500.0,
    seed: Optional[int] = None,
) -> ProgramGraph:
    """Stage-to-stage all-to-all transfers: stresses the network between sites."""
    if stages < 2 or width < 1:
        raise ValueError("need at least 2 stages and width >= 1")
    rng = make_rng(seed)
    graph = ProgramGraph(name=f"communication-intensive-{stages}x{width}")
    for s in range(stages):
        for w in range(width):
            graph.add_task(f"s{s}w{w}", float(rng.uniform(0.5, 1.5) * mean_compute))
    for s in range(stages - 1):
        for w1 in range(width):
            for w2 in range(width):
                graph.add_edge(f"s{s}w{w1}", f"s{s + 1}w{w2}", megabytes_per_edge)
    return graph


def master_worker(
    workers: int = 16,
    work_units_per_worker: float = 1800.0,
    master_seconds: float = 120.0,
    megabytes_per_task: float = 10.0,
) -> ProgramGraph:
    """A master distributes work to independent workers and gathers results."""
    if workers < 1:
        raise ValueError("workers must be >= 1")
    graph = ProgramGraph(name=f"master-worker-{workers}")
    graph.add_task("master-scatter", master_seconds)
    graph.add_task("master-gather", master_seconds)
    for i in range(workers):
        name = f"worker{i}"
        graph.add_task(name, work_units_per_worker)
        graph.add_edge("master-scatter", name, megabytes_per_task)
        graph.add_edge(name, "master-gather", megabytes_per_task)
    return graph


def pipeline(
    stages: int = 8, seconds_per_stage: float = 900.0, megabytes_between: float = 100.0
) -> ProgramGraph:
    """A linear chain of stages: no parallelism, pure dependency latency."""
    if stages < 1:
        raise ValueError("stages must be >= 1")
    graph = ProgramGraph(name=f"pipeline-{stages}")
    for i in range(stages):
        graph.add_task(f"stage{i}", seconds_per_stage)
    for i in range(stages - 1):
        graph.add_edge(f"stage{i}", f"stage{i + 1}", megabytes_between)
    return graph


def fork_join(
    phases: int = 3,
    width: int = 8,
    seconds_per_task: float = 600.0,
    megabytes_at_barrier: float = 50.0,
) -> ProgramGraph:
    """Alternating parallel phases and barriers (barrier-synchronized SPMD)."""
    if phases < 1 or width < 1:
        raise ValueError("phases and width must be >= 1")
    graph = ProgramGraph(name=f"fork-join-{phases}x{width}")
    previous_barrier: Optional[str] = None
    for p in range(phases):
        barrier = f"barrier{p}"
        graph.add_task(barrier, 1.0)
        for w in range(width):
            name = f"p{p}w{w}"
            graph.add_task(name, seconds_per_task)
            if previous_barrier is not None:
                graph.add_edge(previous_barrier, name, megabytes_at_barrier)
            graph.add_edge(name, barrier, megabytes_at_barrier)
        previous_barrier = barrier
    return graph


def random_dag(
    tasks: int = 40,
    layers: int = 5,
    edge_probability: float = 0.3,
    mean_compute: float = 900.0,
    mean_megabytes: float = 100.0,
    seed: Optional[int] = None,
) -> ProgramGraph:
    """A layered random DAG: edges only go from earlier to later layers."""
    if tasks < 1 or layers < 1:
        raise ValueError("tasks and layers must be >= 1")
    if not 0.0 <= edge_probability <= 1.0:
        raise ValueError("edge_probability must be in [0, 1]")
    rng = make_rng(seed)
    graph = ProgramGraph(name=f"random-dag-{tasks}")
    layer_of: Dict[str, int] = {}
    for i in range(tasks):
        name = f"t{i}"
        graph.add_task(name, float(rng.exponential(mean_compute) + 1.0))
        layer_of[name] = int(rng.integers(0, layers))
    names = graph.task_names
    for a in names:
        for b in names:
            if layer_of[a] < layer_of[b] and rng.random() < edge_probability:
                graph.add_edge(a, b, float(rng.exponential(mean_megabytes)))
    return graph


def benchmark_suite(seed: Optional[int] = None) -> List[ProgramGraph]:
    """The WARMstones micro-benchmark suite used by experiment E10."""
    base = 0 if seed is None else seed
    return [
        compute_intensive(tasks=32, seed=base + 1),
        communication_intensive(stages=4, width=6, seed=base + 2),
        master_worker(workers=16),
        pipeline(stages=8),
        fork_join(phases=3, width=8),
        random_dag(tasks=40, seed=base + 3),
    ]
