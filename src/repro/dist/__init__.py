"""Distributed, resumable bench fan-out over a shared result store.

``repro.dist`` shards suite execution across any number of worker processes
— on one machine or several hosts sharing a filesystem — with nothing but
directories and atomic file operations for coordination:

* :mod:`repro.dist.queue` — expand a suite into per-key work units and
  track per-suite progress against the store;
* :mod:`repro.dist.lease` — ``O_CREAT|O_EXCL`` claim files with TTL +
  heartbeat liveness and race-free reclaim of dead workers' leases;
* :mod:`repro.dist.worker` — the claim → simulate → ``store.put`` loop,
  bit-identical to the serial runner's output;
* :mod:`repro.dist.gather` — completeness-gated aggregation back into a
  normal :class:`~repro.bench.runner.SuiteRunResult`.

The store itself is the ground truth for completion, so crash-resume is a
rescan for missing keys: kill any worker at any point, start another, and
the suite finishes with zero duplicated simulation.
"""

from repro.dist.gather import QueueIncompleteError, gather
from repro.dist.lease import DEFAULT_TTL_SECONDS, Lease, LeaseBroker
from repro.dist.queue import (
    QUEUE_ENV_VAR,
    EnqueueResult,
    SuiteProgress,
    WorkQueue,
    WorkUnit,
    default_queue_root,
)
from repro.dist.worker import WorkerStats, run_worker

__all__ = [
    "DEFAULT_TTL_SECONDS",
    "QUEUE_ENV_VAR",
    "EnqueueResult",
    "Lease",
    "LeaseBroker",
    "QueueIncompleteError",
    "SuiteProgress",
    "WorkQueue",
    "WorkUnit",
    "WorkerStats",
    "default_queue_root",
    "gather",
    "run_worker",
]
