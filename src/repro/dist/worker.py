"""The distributed worker: claim → simulate → ``ResultStore.put`` → repeat.

A worker is intentionally almost stateless.  Its entire contract with the
rest of the fleet is:

* a unit is **done** iff its key decodes from the shared result store;
* a unit is **claimed** iff a live lease file exists for its key;
* everything a worker writes (the store entry) goes through the exact same
  construction a serial :func:`repro.bench.runner.run_suite` uses, so a
  distributed suite is bit-identical to a serial one.

The loop: scan for pending keys (enqueued, not in store), try to claim each
under a lease, re-check the store after winning the claim (someone may have
finished it between scan and claim), simulate with a heartbeat refreshing
the lease, publish through ``store.put``, release.  When every pending key
is leased by someone else the worker naps and rescans; when nothing is
pending it exits.  SIGKILL at *any* point loses at most the unit being
simulated — its lease expires, a later scan reclaims it, and the store is
never left with a torn entry (``put`` is atomic).

Workers publish progress snapshots (``workers/<id>.json``) including the
deterministic ``events_processed`` total summed over the units they
simulated — the CI smoke job compares fleet totals against the store's to
prove no unit was simulated twice.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.api.runner import resolve_workload_shared, run
from repro.bench.runner import _policy_mode
from repro.bench.store import ResultStore, StoredResult
from repro.dist.lease import DEFAULT_TTL_SECONDS, Heartbeat, LeaseBroker
from repro.dist.queue import WorkQueue, WorkUnit
from repro.obs.telemetry import Telemetry, count, telemetry_scope

__all__ = ["WorkerStats", "run_worker"]


@dataclass
class WorkerStats:
    """One worker's ledger, published as ``workers/<id>.json``."""

    worker_id: str
    #: leases this worker won
    claimed: int = 0
    #: units this worker actually simulated and stored
    simulated: int = 0
    #: pending-scan entries that turned out already stored (resume hits,
    #: or another worker finishing between scan and claim)
    already_stored: int = 0
    #: claim attempts lost to a live competing lease
    contended: int = 0
    #: expired leases reclaimed from presumed-dead workers
    reclaimed: int = 0
    #: unit files that failed to decode (skipped, journaled)
    corrupt_units: int = 0
    #: deterministic simulator events summed over simulated units — the
    #: fleet-wide no-duplicate-simulation proof compares these totals
    events_processed: int = 0
    simulate_seconds: float = 0.0
    #: full pending-scan passes over the queue
    passes: int = 0
    extra_counters: Dict[str, float] = field(default_factory=dict)

    def to_record(self) -> Dict[str, Any]:
        return {
            "worker": self.worker_id,
            "claimed": self.claimed,
            "simulated": self.simulated,
            "already_stored": self.already_stored,
            "contended": self.contended,
            "reclaimed": self.reclaimed,
            "corrupt_units": self.corrupt_units,
            "events_processed": self.events_processed,
            "simulate_seconds": round(self.simulate_seconds, 6),
            "passes": self.passes,
            "counters": self.extra_counters,
        }

    def summary(self) -> str:
        return (
            f"worker {self.worker_id}: {self.simulated} simulated, "
            f"{self.already_stored} already stored, {self.contended} contended, "
            f"{self.reclaimed} leases reclaimed "
            f"in {self.simulate_seconds:.2f}s simulation"
        )


def _execute(unit: WorkUnit, store: ResultStore) -> StoredResult:
    """Run one unit exactly as the serial suite runner would, and store it.

    Mirrors ``run_suite``'s miss path: grid-mode policies materialize their
    own (re-seeded per site) workloads, everything else gets the shared
    unscaled workload override; generated outage logs are rebuilt from the
    unit's recorded parameters (seeded by the replication seed, like
    ``BenchmarkCase.outage_log``); the stored entry carries the same
    suite/case labels and the same summed phase timings.
    """
    scenario = unit.scenario
    workload = None
    if _policy_mode(scenario.policy) != "grid":
        workload = resolve_workload_shared(scenario)
    result = run(scenario, workload=workload, outages=_unit_outages(unit))
    entry = StoredResult(
        key=unit.key,
        scenario=scenario,
        report=result.report,
        extra=unit.extra,
        suite=unit.suite,
        case=unit.case,
        elapsed_seconds=sum(result.timings.values()),
    )
    store.put(entry)
    return entry


def _unit_outages(unit: WorkUnit):
    """Regenerate the unit's outage log from its recorded parameters."""
    params = unit.extra.get("outages")
    if not params:
        return None
    from repro.core.outage import OutageModel, generate_outages

    return generate_outages(
        int(unit.scenario.machine_size),
        int(float(params.get("horizon_days", 30.0)) * 24 * 3600),
        model=OutageModel(
            mtbf_seconds=float(params.get("mtbf_days", 7.0)) * 24 * 3600
        ),
        seed=int(params["seed"]),
    )


def _rotate(keys, worker_id: str):
    """Scan order rotated by a stable per-worker offset.

    Every worker sees the same sorted key list; starting them all at index
    0 would pile the whole fleet onto the same lease and pay a contention
    round per unit.  A per-worker rotation spreads first claims out while
    keeping the scan deterministic for a given worker id.
    """
    if not keys:
        return keys
    offset = zlib.crc32(worker_id.encode("utf-8")) % len(keys)
    return keys[offset:] + keys[:offset]


def run_worker(
    queue: WorkQueue,
    store: ResultStore,
    ttl: float = DEFAULT_TTL_SECONDS,
    once: bool = False,
    poll_interval: float = 0.5,
    max_units: Optional[int] = None,
    worker_id: Optional[str] = None,
    progress: Optional[Callable[[WorkerStats, WorkUnit], None]] = None,
) -> WorkerStats:
    """Drain the queue's pending units into ``store``; returns the ledger.

    Exits when no enqueued key is missing from the store (the suite is
    complete), after one full pass with ``once=True``, or after
    ``max_units`` simulations.  ``progress(stats, unit)`` fires after each
    stored unit.  Safe to run any number of copies concurrently against the
    same queue/store — that is the whole point.
    """
    broker = LeaseBroker(queue.leases_dir, ttl=ttl, owner=worker_id)
    stats = WorkerStats(worker_id=broker.owner)
    telemetry = Telemetry()
    journal = queue.journal()
    journal.append(
        {"event": "dist.worker_start", "worker": stats.worker_id, "ttl": ttl},
        durable=True,
    )
    try:
        with telemetry_scope(telemetry):
            _drain(queue, store, broker, stats, journal, once, poll_interval,
                   max_units, progress)
    finally:
        stats.contended = broker.contended
        stats.reclaimed = broker.reclaimed
        stats.extra_counters = telemetry.as_counters()
        queue.write_worker_stats(stats.worker_id, stats.to_record())
        journal.append(
            {
                "event": "dist.worker_exit",
                "worker": stats.worker_id,
                "simulated": stats.simulated,
                "events_processed": stats.events_processed,
            },
            durable=True,
        )
        journal.close()
    return stats


def _drain(
    queue: WorkQueue,
    store: ResultStore,
    broker: LeaseBroker,
    stats: WorkerStats,
    journal,
    once: bool,
    poll_interval: float,
    max_units: Optional[int],
    progress: Optional[Callable[[WorkerStats, WorkUnit], None]],
) -> None:
    # Units whose file failed to decode are skipped for this worker's
    # lifetime: they can never complete, and leaving them in the pending set
    # would wedge the exit condition forever.
    skip: set = set()
    while True:
        pending = [key for key in queue.pending_keys(store) if key not in skip]
        if not pending:
            return
        stats.passes += 1
        progressed = False
        for key in _rotate(pending, stats.worker_id):
            if max_units is not None and stats.simulated >= max_units:
                return
            reclaimed_before = broker.reclaimed
            lease = broker.acquire(key)
            if broker.reclaimed > reclaimed_before:
                count("dist.lease_expired", broker.reclaimed - reclaimed_before)
                journal.append(
                    {"event": "dist.lease_expired", "worker": stats.worker_id,
                     "key": key}
                )
            if lease is None:
                continue
            stats.claimed += 1
            count("dist.claim")
            try:
                # The store, not the lease, is the source of truth for
                # "done": someone may have finished this key between our
                # pending scan and the claim (or an earlier fleet already
                # ran it) — decode-consistent membership makes this check
                # exact, so a finished unit is never simulated again.
                if key in store:
                    stats.already_stored += 1
                    progressed = True
                    continue
                unit = queue.unit(key)
                if unit is None:
                    skip.add(key)
                    stats.corrupt_units += 1
                    journal.append(
                        {"event": "dist.unit_corrupt", "worker": stats.worker_id,
                         "key": key}
                    )
                    continue
                journal.append(
                    {"event": "dist.claim", "worker": stats.worker_id,
                     "key": key, "case": unit.case, "suite": unit.suite}
                )
                started = time.perf_counter()
                with Heartbeat(lease):
                    entry = _execute(unit, store)
                elapsed = time.perf_counter() - started
                stats.simulated += 1
                stats.simulate_seconds += elapsed
                stats.events_processed += int(
                    entry.report.counters.get("events_processed", 0)
                )
                count("dist.units_simulated")
                progressed = True
                journal.append(
                    {"event": "dist.unit_done", "worker": stats.worker_id,
                     "key": key, "case": unit.case, "suite": unit.suite,
                     "seconds": round(elapsed, 6)},
                    durable=True,
                )
                if progress is not None:
                    progress(stats, unit)
            finally:
                lease.release()
            # Publish after every unit, not just at exit: status tooling and
            # the CI assertions read these snapshots while the fleet runs.
            stats.contended = broker.contended
            stats.reclaimed = broker.reclaimed
            queue.write_worker_stats(stats.worker_id, stats.to_record())
        if once:
            return
        if not progressed:
            # Everything pending is leased by live workers (or corrupt).
            # Wait out either a completion or a lease expiry, then rescan.
            time.sleep(poll_interval)
