"""The file-backed work queue: suite execution sharded across processes.

A queue is a directory (shareable over NFS, exactly like the result store):

.. code-block:: text

    <queue root>/
        units/<key>.json       one file per distinct work unit
        leases/<key>.lease     live claims (see :mod:`repro.dist.lease`)
        suites/<name>.json     per-suite manifest: the key list to gather
        workers/<id>.json      per-worker progress/counter snapshots
        journal.jsonl          append-only event log (enqueue/claim/done)

``enqueue`` expands a suite through the *same* :func:`repro.bench.runner.
_expand` path a serial run uses, so a unit's store key — and therefore the
entry any worker writes — is bit-identical to what ``run_suite`` would have
produced.  The queue holds one unit file per distinct key: overlapping
suites (or duplicate keys inside one suite) share units the same way they
share store entries.

Progress has no central state.  "Done" is defined as *the key decodes from
the shared result store* — the one fact every worker, the status probe, and
``gather`` can all establish independently, which is why crash-resume is
nothing but a rescan for missing keys.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.api.scenario import Scenario
from repro.bench.runner import _expand
from repro.bench.store import ResultStore
from repro.bench.suite import BenchmarkSuite, get_suite
from repro.obs.journal import JobJournal
from repro.util import atomic_write

__all__ = [
    "QUEUE_ENV_VAR",
    "WorkUnit",
    "EnqueueResult",
    "SuiteProgress",
    "WorkQueue",
    "default_queue_root",
]

#: Environment variable overriding the default queue location.
QUEUE_ENV_VAR = "REPRO_DIST_QUEUE"


def default_queue_root() -> Path:
    """``$REPRO_DIST_QUEUE`` if set, else ``~/.cache/repro-dist``."""
    override = os.environ.get(QUEUE_ENV_VAR)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-dist"


@dataclass(frozen=True)
class WorkUnit:
    """One distinct replication to execute, self-contained and re-runnable.

    Carries everything a worker on another host needs: the exact scenario
    (seeded, named), the non-scenario key material (``extra`` — outage
    parameters, trace digests), and the suite/case labels the store entry
    must record so ``bench report`` groups it exactly like a serial run's.
    The ``key`` is the store key; it doubles as the unit's file name and its
    lease name.
    """

    key: str
    suite: str
    case: str
    context: str
    seed: int
    scenario: Scenario
    extra: Dict[str, Any] = field(default_factory=dict)

    def to_record(self) -> Dict[str, Any]:
        return {
            "key": self.key,
            "suite": self.suite,
            "case": self.case,
            "context": self.context,
            "seed": self.seed,
            "scenario": self.scenario.to_dict(),
            "extra": self.extra,
        }

    @classmethod
    def from_record(cls, record: Dict[str, Any]) -> "WorkUnit":
        return cls(
            key=record["key"],
            suite=record["suite"],
            case=record["case"],
            context=record["context"],
            seed=int(record["seed"]),
            scenario=Scenario.from_dict(record["scenario"]),
            extra=record.get("extra", {}),
        )


@dataclass(frozen=True)
class EnqueueResult:
    """What one ``enqueue`` call did."""

    suite: str
    #: replications the suite expands to (duplicate keys included)
    replications: int
    #: distinct work units (one per distinct store key)
    units: int
    #: unit files this call created
    enqueued: int
    #: units whose key already decodes from the store (born finished)
    already_stored: int
    #: unit files that already existed (re-enqueue, or an overlapping suite)
    already_queued: int

    def summary(self) -> str:
        return (
            f"suite {self.suite!r}: {self.units} units "
            f"({self.replications} replications), {self.enqueued} enqueued, "
            f"{self.already_stored} already stored, "
            f"{self.already_queued} already queued"
        )


@dataclass(frozen=True)
class SuiteProgress:
    """Progress of one enqueued suite against the shared store."""

    suite: str
    total: int
    done: int
    #: keys currently under a live (unexpired) lease
    leased: int
    #: keys whose lease has outlived its TTL (owner presumed dead)
    expired: int

    @property
    def pending(self) -> int:
        return self.total - self.done

    @property
    def complete(self) -> bool:
        return self.done >= self.total

    def summary(self) -> str:
        lease = ""
        if self.leased or self.expired:
            lease = f", {self.leased} leased"
            if self.expired:
                lease += f" ({self.expired} expired)"
        state = "complete" if self.complete else f"{self.pending} pending{lease}"
        return f"suite {self.suite!r}: {self.done}/{self.total} done, {state}"


class WorkQueue:
    """One queue directory: units, leases, manifests, worker stats, journal."""

    def __init__(self, root: Union[str, Path, None] = None) -> None:
        self.root = Path(root) if root is not None else default_queue_root()

    @property
    def units_dir(self) -> Path:
        return self.root / "units"

    @property
    def leases_dir(self) -> Path:
        return self.root / "leases"

    @property
    def suites_dir(self) -> Path:
        return self.root / "suites"

    @property
    def workers_dir(self) -> Path:
        return self.root / "workers"

    @property
    def journal_path(self) -> Path:
        return self.root / "journal.jsonl"

    def journal(self) -> JobJournal:
        """An append handle on the queue-wide event journal."""
        return JobJournal(self.journal_path)

    # ------------------------------------------------------------------
    # enqueue
    # ------------------------------------------------------------------
    def enqueue_suite(
        self,
        suite: Union[str, BenchmarkSuite],
        store: Optional[ResultStore] = None,
    ) -> EnqueueResult:
        """Expand ``suite`` into unit files; idempotent per key.

        Expansion reuses the serial runner's path, so keys — and the store
        entries workers eventually write — match ``run_suite`` exactly.
        Units whose key already decodes from ``store`` are still enqueued
        (the manifest needs every key for gather), but reported separately:
        a worker recognizes them as done without simulating.
        """
        suite = get_suite(suite) if isinstance(suite, str) else suite
        entries = _expand(suite)
        unique: Dict[str, tuple] = {}
        for entry in entries:
            unique.setdefault(entry[4], entry)

        self.units_dir.mkdir(parents=True, exist_ok=True)
        enqueued = already_queued = already_stored = 0
        for key, (case, seed, scenario, extra, _key) in unique.items():
            if store is not None and key in store:
                already_stored += 1
            unit_path = self.units_dir / f"{key}.json"
            if unit_path.is_file():
                already_queued += 1
                continue
            unit = WorkUnit(
                key=key,
                suite=suite.name,
                case=case.name,
                context=case.context,
                seed=seed,
                scenario=scenario,
                extra=extra,
            )
            atomic_write(
                unit_path,
                json.dumps(unit.to_record(), sort_keys=True).encode("utf-8"),
            )
            enqueued += 1

        manifest = {
            "suite": suite.name,
            "metrics": list(suite.metrics),
            "replications": len(entries),
            "keys": sorted(unique),
        }
        self.suites_dir.mkdir(parents=True, exist_ok=True)
        atomic_write(
            self.suites_dir / f"{suite.name}.json",
            (json.dumps(manifest, sort_keys=True, indent=2) + "\n").encode("utf-8"),
        )
        result = EnqueueResult(
            suite=suite.name,
            replications=len(entries),
            units=len(unique),
            enqueued=enqueued,
            already_stored=already_stored,
            already_queued=already_queued,
        )
        with self.journal() as journal:
            journal.append(
                {
                    "event": "dist.enqueue",
                    "suite": suite.name,
                    "units": result.units,
                    "enqueued": result.enqueued,
                    "already_stored": result.already_stored,
                },
                durable=True,
            )
        return result

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def unit(self, key: str) -> Optional[WorkUnit]:
        """The unit stored under ``key``, or None on miss/corrupt file."""
        try:
            with open(self.units_dir / f"{key}.json", "r", encoding="utf-8") as handle:
                return WorkUnit.from_record(json.load(handle))
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def unit_keys(self) -> List[str]:
        """Every enqueued unit key, sorted (= deterministic scan order)."""
        if not self.units_dir.is_dir():
            return []
        return sorted(path.stem for path in self.units_dir.glob("*.json"))

    def units(self) -> List[WorkUnit]:
        """Every decodable enqueued unit, in key order."""
        loaded = (self.unit(key) for key in self.unit_keys())
        return [unit for unit in loaded if unit is not None]

    def pending_keys(self, store: ResultStore) -> List[str]:
        """Unit keys not yet decodable from ``store`` — the live backlog.

        This *is* the crash-resume scan: a killed worker's claimed-but-
        unfinished units have no store entry, so they reappear here for
        whoever looks next.
        """
        return [key for key in self.unit_keys() if key not in store]

    def manifest(self, suite_name: str) -> Optional[Dict[str, Any]]:
        try:
            with open(
                self.suites_dir / f"{suite_name}.json", "r", encoding="utf-8"
            ) as handle:
                manifest = json.load(handle)
            if not isinstance(manifest, dict) or "keys" not in manifest:
                return None
            return manifest
        except (OSError, ValueError):
            return None

    def suite_names(self) -> List[str]:
        if not self.suites_dir.is_dir():
            return []
        return sorted(path.stem for path in self.suites_dir.glob("*.json"))

    def status(
        self, store: ResultStore, ttl: Optional[float] = None
    ) -> List[SuiteProgress]:
        """Per-suite progress against ``store``, with lease occupancy."""
        from repro.dist.lease import DEFAULT_TTL_SECONDS, LeaseBroker

        broker = LeaseBroker(
            self.leases_dir, ttl=ttl if ttl is not None else DEFAULT_TTL_SECONDS
        )
        leases = broker.active_leases()
        progress = []
        for name in self.suite_names():
            manifest = self.manifest(name)
            if manifest is None:
                continue
            keys = manifest["keys"]
            done = sum(1 for key in keys if key in store)
            held = {key: expired for key, expired in leases.items() if key in set(keys)}
            progress.append(
                SuiteProgress(
                    suite=name,
                    total=len(keys),
                    done=done,
                    leased=sum(1 for expired in held.values() if not expired),
                    expired=sum(1 for expired in held.values() if expired),
                )
            )
        return progress

    # ------------------------------------------------------------------
    # worker stats
    # ------------------------------------------------------------------
    def write_worker_stats(self, worker_id: str, stats: Dict[str, Any]) -> Path:
        """Atomically publish one worker's progress snapshot."""
        self.workers_dir.mkdir(parents=True, exist_ok=True)
        path = self.workers_dir / f"{worker_id}.json"
        atomic_write(
            path, (json.dumps(stats, sort_keys=True, indent=2) + "\n").encode("utf-8")
        )
        return path

    def worker_stats(self) -> Dict[str, Dict[str, Any]]:
        """Every worker's latest snapshot, by worker id."""
        if not self.workers_dir.is_dir():
            return {}
        out: Dict[str, Dict[str, Any]] = {}
        for path in sorted(self.workers_dir.glob("*.json")):
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    stats = json.load(handle)
            except (OSError, ValueError):
                continue
            if isinstance(stats, dict):
                out[path.stem] = stats
        return out
