"""Atomic lease files: the claim protocol of the distributed work queue.

A lease is one file per work unit (``leases/<key>.lease``) created with
``O_CREAT | O_EXCL`` — the one filesystem primitive that arbitrates between
any number of processes *and hosts* sharing a directory (NFS included, for
any remotely modern server).  Whoever creates the file owns the unit; every
loser of the race gets ``FileExistsError`` and moves on to the next unit.

Liveness is the file's **mtime**: the owner refreshes it periodically (the
heartbeat) while simulating, and a lease whose mtime is older than the TTL
is *expired* — its owner is presumed dead (SIGKILL, host loss, partition).
Reclaiming an expired lease must itself be race-free, so it goes through
``os.replace`` onto a per-claimant unique name: of N workers that all see
the same expired lease, exactly one wins the rename, deletes the stale
file, and competes again under ``O_CREAT | O_EXCL``.

Ownership is verified by a random token stored inside the file: a worker
that stalled past its own TTL and got reclaimed must not release (or
heartbeat) the *successor's* lease.  None of this protects the result store
— it does not need protecting: ``ResultStore.put`` is an atomic replace of
deterministic content, so even a double-claim (possible when a worker
outlives its TTL without heartbeating) only costs a duplicated simulation,
never a corrupt entry.  Leases exist to make that duplication rare, not to
make correctness depend on them.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Union

__all__ = ["DEFAULT_TTL_SECONDS", "Heartbeat", "Lease", "LeaseBroker"]

#: Default lease time-to-live.  Generous relative to one replication (the
#: 100k-job std-scale unit runs ~30s) so heartbeats only matter for truly
#: long units, yet short enough that a killed worker's units come back
#: quickly.
DEFAULT_TTL_SECONDS = 120.0


@dataclass
class Lease:
    """One held claim: the lease file, its identity token, and its TTL."""

    path: Path
    key: str
    owner: str
    token: str
    ttl: float

    def heartbeat(self) -> bool:
        """Refresh the lease's mtime; False when the lease is no longer ours.

        A lease that expired and was reclaimed (or released twice) is gone or
        carries a different token — touching it would extend someone else's
        claim, so the heartbeat verifies ownership first.
        """
        if not self._owned():
            return False
        try:
            os.utime(self.path)
        except OSError:
            return False
        return True

    def release(self) -> bool:
        """Delete the lease file if it is still ours; returns success."""
        if not self._owned():
            return False
        try:
            self.path.unlink()
        except OSError:
            return False
        return True

    def _owned(self) -> bool:
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                return json.load(handle).get("token") == self.token
        except (OSError, ValueError):
            return False


class LeaseBroker:
    """Acquire/reclaim leases for one queue's ``leases/`` directory."""

    def __init__(
        self,
        root: Union[str, Path],
        ttl: float = DEFAULT_TTL_SECONDS,
        owner: Optional[str] = None,
    ) -> None:
        if ttl <= 0:
            raise ValueError("lease ttl must be positive")
        self.root = Path(root)
        self.ttl = float(ttl)
        self.owner = owner or f"{socket.gethostname()}-{os.getpid()}"
        #: expired leases this broker reclaimed (the `dist.lease_expired` feed)
        self.reclaimed = 0
        #: acquisition attempts lost to a live competing lease
        self.contended = 0

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.lease"

    def acquire(self, key: str) -> Optional[Lease]:
        """Try to claim ``key``; returns the held lease or None.

        Exactly one concurrent caller can succeed.  An expired lease left by
        a dead worker is reclaimed first (rename-arbitrated), after which the
        claim is re-contested from scratch — the reclaimer earns no priority.
        """
        path = self.path_for(key)
        token = uuid.uuid4().hex
        lease = self._create(path, key, token)
        if lease is not None:
            return lease
        if not self._reclaim_expired(path, token):
            self.contended += 1
            return None
        return self._create(path, key, token)

    def _create(self, path: Path, key: str, token: str) -> Optional[Lease]:
        path.parent.mkdir(parents=True, exist_ok=True)
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return None
        payload: Dict[str, Any] = {
            "key": key,
            "owner": self.owner,
            "token": token,
            "pid": os.getpid(),
            "host": socket.gethostname(),
            "acquired_at": round(time.time(), 6),
            "ttl_seconds": self.ttl,
        }
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(payload, sort_keys=True))
        return Lease(path=path, key=key, owner=self.owner, token=token, ttl=self.ttl)

    def is_expired(self, path: Path) -> Optional[bool]:
        """Whether the lease at ``path`` has outlived its TTL (None: gone)."""
        try:
            age = time.time() - path.stat().st_mtime
        except OSError:
            return None
        return age > self.ttl

    def _reclaim_expired(self, path: Path, token: str) -> bool:
        """Remove ``path`` if expired; True when the slot is (now) free.

        The rename-to-unique-name is the arbitration: two workers that both
        observed the expired lease race on ``os.replace`` from the *same*
        source, and the kernel hands the file to exactly one of them.
        """
        expired = self.is_expired(path)
        if expired is None:
            return True  # released in the meantime: the slot is free
        if not expired:
            return False
        stale = path.with_name(f"{path.name}.stale-{token}")
        try:
            os.replace(path, stale)
        except OSError:
            # Lost the rename race (or the owner released): either way the
            # original path is free to contest again.
            return True
        try:
            stale.unlink()
        except OSError:
            pass
        self.reclaimed += 1
        return True

    def active_leases(self) -> Dict[str, bool]:
        """Current leases: ``{key: expired}`` (snapshot; racy by nature)."""
        if not self.root.is_dir():
            return {}
        out: Dict[str, bool] = {}
        for path in sorted(self.root.glob("*.lease")):
            expired = self.is_expired(path)
            if expired is not None:
                out[path.stem] = expired
        return out


class Heartbeat:
    """Background mtime refresher held while a unit simulates.

    A daemon thread touches the lease every ``interval`` seconds (default
    TTL/4) so a long simulation never loses its claim; ``stop()`` joins the
    thread.  Use as a context manager around the simulation call.
    """

    def __init__(self, lease: Lease, interval: Optional[float] = None) -> None:
        self.lease = lease
        self.interval = interval if interval is not None else max(lease.ttl / 4.0, 0.05)
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name=f"lease-heartbeat-{lease.key[:8]}", daemon=True
        )

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            if not self.lease.heartbeat():
                return  # no longer ours; extending it would be someone else's

    def __enter__(self) -> "Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._stop.set()
        self._thread.join()
