"""Aggregating a distributed suite back into a normal ``SuiteRunResult``.

Gathering is deliberately *not* a new aggregation path: once every unit key
decodes from the shared store, the ordinary :func:`repro.bench.runner.
run_suite` over that store is all cache hits and zero simulation, and its
result — CIs, report tables, JSON — is byte-for-byte the serial result.
``gather`` only adds the completeness gate in front: aggregating a
half-finished suite silently would be worse than failing, and ``run_suite``
on an incomplete store would *locally simulate* the remainder, defeating
the point of the fleet.
"""

from __future__ import annotations

from typing import List, Union

from repro.bench.runner import SuiteRunResult, run_suite
from repro.bench.store import ResultStore
from repro.bench.suite import BenchmarkSuite, get_suite
from repro.dist.queue import WorkQueue

__all__ = ["QueueIncompleteError", "gather"]


class QueueIncompleteError(RuntimeError):
    """Raised when gathering a suite whose units are not all stored yet."""

    def __init__(self, suite: str, missing: List[str], total: int) -> None:
        self.suite = suite
        self.missing = missing
        self.total = total
        super().__init__(
            f"suite {suite!r} is incomplete: {len(missing)}/{total} units "
            f"missing from the store — run more workers, or wait for the "
            f"fleet to drain"
        )


def gather(
    queue: WorkQueue,
    suite: Union[str, BenchmarkSuite],
    store: ResultStore,
    confidence: float = 0.95,
    allow_partial: bool = False,
) -> SuiteRunResult:
    """Aggregate a fully stored suite; raises :class:`QueueIncompleteError`.

    ``allow_partial=True`` skips the completeness gate and lets ``run_suite``
    finish the remainder locally — the explicit "drain it here and now"
    escape hatch, never the default.
    """
    suite = get_suite(suite) if isinstance(suite, str) else suite
    manifest = queue.manifest(suite.name)
    if manifest is None:
        raise FileNotFoundError(
            f"suite {suite.name!r} has no manifest in {queue.suites_dir} — "
            f"was it enqueued on this queue?"
        )
    if not allow_partial:
        missing = [key for key in manifest["keys"] if key not in store]
        if missing:
            raise QueueIncompleteError(suite.name, missing, len(manifest["keys"]))
    return run_suite(suite, store=store, use_cache=True, confidence=confidence)
