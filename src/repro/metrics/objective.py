"""Composite objective functions and scheduler-ranking comparison.

The paper discusses (and its reference [41], Krallmann, Schwiegelshohn &
Yahyapour, demonstrates) that a site's true objective is usually a *weighted
combination* of elementary metrics, and that changing the weights changes
which scheduling algorithm looks best.  Experiment E4 reproduces that effect;
this module supplies the machinery:

* :class:`ObjectiveFunction` — a weighted sum of named metrics, each tagged
  with the direction of optimization (lower-is-better metrics contribute
  positively to a cost that is minimized),
* :func:`rank_schedulers` — order metric reports by a metric or objective,
* :func:`kendall_tau` — rank correlation between two orderings, the standard
  way to quantify "the ranking changed".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.metrics.basic import MetricsReport

__all__ = [
    "MINIMIZE_METRICS",
    "MAXIMIZE_METRICS",
    "ObjectiveFunction",
    "rank_schedulers",
    "kendall_tau",
    "ranking_agreement",
]

#: Metrics whose value a scheduler should minimize.
MINIMIZE_METRICS = frozenset(
    {
        "mean_wait",
        "median_wait",
        "mean_response",
        "median_response",
        "mean_slowdown",
        "mean_bounded_slowdown",
        "median_bounded_slowdown",
        "p90_bounded_slowdown",
        "makespan",
        "killed",
    }
)

#: Metrics whose value a scheduler should maximize.
MAXIMIZE_METRICS = frozenset({"utilization", "throughput_per_hour", "jobs"})


@dataclass(frozen=True)
class ObjectiveFunction:
    """A weighted combination of metrics, evaluated as a cost (lower is better).

    Each metric contributes ``weight * value / scale`` to the cost; metrics in
    :data:`MAXIMIZE_METRICS` contribute negatively (so maximizing them lowers
    the cost).  Scales normalize metrics with different units before they are
    combined — the usual practice is to scale by the value achieved by a
    reference scheduler (see :meth:`normalized_to`).
    """

    weights: Mapping[str, float]
    scales: Mapping[str, float] = field(default_factory=dict)
    name: str = "objective"

    def __post_init__(self) -> None:
        if not self.weights:
            raise ValueError("an objective function needs at least one weighted metric")
        for metric in self.weights:
            if metric not in MINIMIZE_METRICS and metric not in MAXIMIZE_METRICS:
                raise ValueError(f"unknown metric {metric!r} in objective function")

    def evaluate(self, report: MetricsReport) -> float:
        """Cost of a metrics report under this objective (lower is better)."""
        cost = 0.0
        for metric, weight in self.weights.items():
            value = report.value(metric)
            scale = float(self.scales.get(metric, 1.0)) or 1.0
            contribution = weight * value / scale
            if metric in MAXIMIZE_METRICS:
                contribution = -contribution
            cost += contribution
        return cost

    def normalized_to(self, reference: MetricsReport, name: Optional[str] = None) -> "ObjectiveFunction":
        """Return a copy whose scales are the reference report's metric values.

        After normalization every metric contributes in units of "times the
        reference scheduler's value", which makes weights comparable across
        metrics with wildly different magnitudes.
        """
        scales = {}
        for metric in self.weights:
            value = abs(reference.value(metric))
            scales[metric] = value if value > 0 else 1.0
        return ObjectiveFunction(
            weights=dict(self.weights),
            scales=scales,
            name=name if name is not None else f"{self.name}-normalized",
        )


def rank_schedulers(
    reports: Sequence[MetricsReport],
    metric: Optional[str] = None,
    objective: Optional[ObjectiveFunction] = None,
) -> List[str]:
    """Order scheduler names from best to worst by a metric or an objective.

    Exactly one of ``metric`` / ``objective`` must be given.  Metrics in
    :data:`MAXIMIZE_METRICS` rank descending, everything else ascending.
    """
    if (metric is None) == (objective is None):
        raise ValueError("pass exactly one of metric or objective")
    if metric is not None:
        reverse = metric in MAXIMIZE_METRICS
        ordered = sorted(reports, key=lambda r: r.value(metric), reverse=reverse)
    else:
        ordered = sorted(reports, key=objective.evaluate)
    return [r.scheduler for r in ordered]


def kendall_tau(ranking_a: Sequence[str], ranking_b: Sequence[str]) -> float:
    """Kendall rank correlation between two orderings of the same items.

    1.0 means identical order, -1.0 fully reversed, 0.0 uncorrelated.  Raises
    if the two rankings do not contain exactly the same items.
    """
    if set(ranking_a) != set(ranking_b):
        raise ValueError("both rankings must contain exactly the same items")
    n = len(ranking_a)
    if n < 2:
        return 1.0
    position_b = {item: i for i, item in enumerate(ranking_b)}
    concordant = 0
    discordant = 0
    for i in range(n):
        for j in range(i + 1, n):
            a_i, a_j = ranking_a[i], ranking_a[j]
            if position_b[a_i] < position_b[a_j]:
                concordant += 1
            else:
                discordant += 1
    total = concordant + discordant
    return (concordant - discordant) / total if total else 1.0


def ranking_agreement(
    reports: Sequence[MetricsReport], metrics: Sequence[str]
) -> Dict[Tuple[str, str], float]:
    """Pairwise Kendall tau between the rankings induced by different metrics.

    This is the quantity experiment E3 reports: when it is below 1.0 for a
    pair of metrics, the choice of metric changes the scheduler ranking —
    the paper's motivating observation.
    """
    rankings = {metric: rank_schedulers(reports, metric=metric) for metric in metrics}
    agreement: Dict[Tuple[str, str], float] = {}
    for i, metric_a in enumerate(metrics):
        for metric_b in metrics[i + 1 :]:
            agreement[(metric_a, metric_b)] = kendall_tau(
                rankings[metric_a], rankings[metric_b]
            )
    return agreement
