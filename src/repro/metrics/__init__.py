"""Metrics, composite objective functions, and ranking comparison."""

from repro.metrics.basic import DEFAULT_TAU, MetricsReport, compute_metrics, confidence_interval
from repro.metrics.objective import (
    MAXIMIZE_METRICS,
    MINIMIZE_METRICS,
    ObjectiveFunction,
    kendall_tau,
    rank_schedulers,
    ranking_agreement,
)

__all__ = [
    "DEFAULT_TAU",
    "MetricsReport",
    "compute_metrics",
    "confidence_interval",
    "MAXIMIZE_METRICS",
    "MINIMIZE_METRICS",
    "ObjectiveFunction",
    "kendall_tau",
    "rank_schedulers",
    "ranking_agreement",
]
