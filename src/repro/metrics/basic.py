"""The standard performance metrics of the scheduler-evaluation methodology.

Section 1.2 ("Possible inclusion of the objective function") lists the
metrics in common use: response time, wait time, slowdown, utilization,
throughput — some to be minimized, others maximized — and warns that
different metrics can rank schedulers differently.  This module computes all
of them from a :class:`~repro.evaluation.results.SimulationResult` so the
experiments can demonstrate exactly that sensitivity.

Utilization accounts for outages: when the simulation reports the node-seconds
that were actually available, utilization is work done divided by *available*
capacity, not by nominal capacity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.api.registry import register_metric
from repro.evaluation.results import JobResult, SimulationResult

__all__ = ["MetricsReport", "compute_metrics", "confidence_interval"]

#: Default interactivity threshold (seconds) for bounded slowdown.
DEFAULT_TAU = 10.0


@dataclass(frozen=True)
class MetricsReport:
    """Aggregate metrics of one simulation run.

    All means are over completed jobs (killed jobs are counted separately):
    including jobs that never finished would make response-time metrics
    meaningless, which is itself one of the methodological points of the
    outage experiment.
    """

    scheduler: str
    jobs: int
    killed: int
    mean_wait: float
    median_wait: float
    mean_response: float
    median_response: float
    mean_slowdown: float
    mean_bounded_slowdown: float
    median_bounded_slowdown: float
    p90_bounded_slowdown: float
    utilization: float
    throughput_per_hour: float
    makespan: float
    total_area: float
    tau: float = DEFAULT_TAU
    #: deterministic per-run scheduler/engine counters (events processed,
    #: scheduling passes, shadow scans, jobs backfilled, queue depth peaks).
    #: Derived from simulated facts only, so they are bit-identical between
    #: serial and parallel runs and safe to persist in the result store.
    counters: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, float]:
        """Rounded *display* view used when printing experiment tables.

        This intentionally drops the median columns and rounds for table
        width; it is not a serialization format.  Use :meth:`to_json` /
        :meth:`from_json` for a lossless round trip.
        """
        return {
            "scheduler": self.scheduler,
            "jobs": self.jobs,
            "killed": self.killed,
            "mean_wait": round(self.mean_wait, 1),
            "mean_response": round(self.mean_response, 1),
            "mean_slowdown": round(self.mean_slowdown, 2),
            "mean_bounded_slowdown": round(self.mean_bounded_slowdown, 2),
            "p90_bounded_slowdown": round(self.p90_bounded_slowdown, 2),
            "utilization": round(self.utilization, 4),
            "throughput_per_hour": round(self.throughput_per_hour, 2),
            "makespan": round(self.makespan, 0),
        }

    def to_json(self) -> Dict[str, Any]:
        """Lossless JSON-serializable dict: every field, full precision.

        Inverse of :meth:`from_json`; this is what the benchmark result
        store persists, so cached metrics are bit-identical to fresh ones.
        """
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "MetricsReport":
        """Rebuild from :meth:`to_json` output; unknown or missing keys raise."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown MetricsReport field(s): {', '.join(sorted(unknown))}"
            )
        missing = known - set(data)
        if missing:
            raise ValueError(
                f"missing MetricsReport field(s): {', '.join(sorted(missing))}"
            )
        return cls(**dict(data))

    def value(self, metric: str) -> float:
        """Look up a metric by name (the names used by objective functions).

        ``counters.<name>`` reaches into the per-run counter dict, so
        objective configs and sweeps can select telemetry the same way they
        select performance metrics (missing counters read as 0).
        """
        if metric.startswith("counters."):
            return float(self.counters.get(metric[len("counters."):], 0))
        try:
            return float(getattr(self, metric))
        except AttributeError as exc:
            raise KeyError(f"unknown metric {metric!r}") from exc


def compute_metrics(result: SimulationResult, tau: float = DEFAULT_TAU) -> MetricsReport:
    """Compute the full :class:`MetricsReport` for a simulation result."""
    cols = result.columns()
    completed_mask = ~cols.killed
    completed_count = int(completed_mask.sum())
    killed_count = cols.n - completed_count

    submit = cols.np("submit")[completed_mask]
    start = cols.np("start")[completed_mask]
    end = cols.np("end")[completed_mask]
    # Column expressions mirror the JobResult properties operation for
    # operation, so every value is bit-identical to the per-job path.
    waits = start - submit
    responses = end - submit
    runs = end - start
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        slowdowns = responses[runs > 0] / runs[runs > 0]
    slowdowns = slowdowns[np.isfinite(slowdowns)]
    if completed_count and tau <= 0:
        raise ValueError("tau must be positive")
    bounded = np.maximum(1.0, responses / np.maximum(runs, tau))

    makespan = result.makespan
    total_area = result.total_area()
    if result.available_node_seconds is not None and result.available_node_seconds > 0:
        capacity = result.available_node_seconds
    else:
        capacity = result.machine_size * makespan if makespan > 0 else 0.0
    utilization = (total_area / capacity) if capacity > 0 else 0.0
    throughput = (completed_count / (makespan / 3600.0)) if makespan > 0 else 0.0

    def _mean(a: np.ndarray) -> float:
        return float(np.mean(a)) if a.size else 0.0

    def _median(a: np.ndarray) -> float:
        return float(np.median(a)) if a.size else 0.0

    def _p90(a: np.ndarray) -> float:
        return float(np.percentile(a, 90)) if a.size else 0.0

    return MetricsReport(
        scheduler=result.scheduler_name,
        jobs=completed_count,
        killed=killed_count,
        mean_wait=_mean(waits),
        median_wait=_median(waits),
        mean_response=_mean(responses),
        median_response=_median(responses),
        mean_slowdown=_mean(slowdowns),
        mean_bounded_slowdown=_mean(bounded),
        median_bounded_slowdown=_median(bounded),
        p90_bounded_slowdown=_p90(bounded),
        utilization=min(utilization, 1.0),
        throughput_per_hour=throughput,
        makespan=makespan,
        total_area=total_area,
        tau=tau,
        counters={k: int(v) for k, v in sorted(result.counters.items())},
    )


# Every numeric column of the report is reachable by name through the metric
# registry, so sweeps and objective configs can select metrics from strings.
def _register_report_metrics() -> None:
    for metric_name in (
        "mean_wait",
        "median_wait",
        "mean_response",
        "median_response",
        "mean_slowdown",
        "mean_bounded_slowdown",
        "median_bounded_slowdown",
        "p90_bounded_slowdown",
        "utilization",
        "throughput_per_hour",
        "makespan",
        "total_area",
    ):
        register_metric(metric_name)(
            lambda report, _metric=metric_name: report.value(_metric)
        )


_register_report_metrics()


def confidence_interval(values: Sequence[float], confidence: float = 0.95) -> tuple:
    """Normal-approximation confidence interval for the mean of ``values``.

    Returns ``(mean, half_width)``.  With fewer than two samples the half
    width is zero.  The normal approximation (z = 1.96 at 95%) is adequate
    for the hundreds-to-thousands of jobs a workload contains.
    """
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        return 0.0, 0.0
    mean = float(np.mean(data))
    if data.size < 2:
        return mean, 0.0
    z = {0.90: 1.645, 0.95: 1.96, 0.99: 2.576}.get(round(confidence, 2), 1.96)
    half = z * float(np.std(data, ddof=1)) / math.sqrt(data.size)
    return mean, half
