"""E10 — The WARMstones scheduler-selection scorecard (Section 4.3).

The WARMstones environment exists to answer questions like "I have devised a
new scheduling algorithm.  I want to evaluate it using the benchmark suite
and a range of standard machine representations" and "I can store these
results in a table, and at run time look up the closest matches ... to find a
scheduler which should work well for me."  This experiment produces exactly
those artifacts:

* the full scorecard: makespan of every mapper on every micro-benchmark graph
  and every canonical system,
* the per-(graph, system) winner,
* the off-line selection table and a check that its closest-match lookup
  recommends a mapper whose makespan is within a small factor of the best.

Expected shape: on the single-cluster system the mappers are nearly
indistinguishable (homogeneous resources); on the heterogeneous systems the
cost-aware mappers (min-min / HEFT) win on communication-heavy graphs, while
round-robin remains competitive only on the embarrassingly-parallel
compute-intensive graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.appsched import (
    ScorecardEntry,
    Warmstones,
    benchmark_suite,
    canonical_systems,
    random_dag,
)

__all__ = ["WarmstonesResult", "run"]


@dataclass
class WarmstonesResult:
    """Scorecard, winners, and selection-table quality."""

    entries: List[ScorecardEntry]
    winners: Dict[Tuple[str, str], str]
    selection_table: Dict[Tuple[int, int, int], str]
    lookup_regret: float

    def rows(self) -> List[Dict[str, object]]:
        return [
            {
                "graph": entry.graph,
                "system": entry.system,
                "mapper": entry.mapper,
                "makespan_s": round(entry.makespan, 1),
                "speedup": round(entry.speedup, 2),
                "winner": self.winners[(entry.graph, entry.system)] == entry.mapper,
            }
            for entry in self.entries
        ]

    def winner_rows(self) -> List[Dict[str, object]]:
        return [
            {"graph": graph, "system": system, "best_mapper": mapper}
            for (graph, system), mapper in sorted(self.winners.items())
        ]


def run(seed: int = 10) -> WarmstonesResult:
    """Produce the scorecard and validate the closest-match selection table."""
    environment = Warmstones(graphs=benchmark_suite(seed=seed), systems=canonical_systems())
    entries = environment.scorecard()

    winners: Dict[Tuple[str, str], str] = {}
    best_makespan: Dict[Tuple[str, str], float] = {}
    for entry in entries:
        key = (entry.graph, entry.system)
        if key not in best_makespan or entry.makespan < best_makespan[key]:
            best_makespan[key] = entry.makespan
            winners[key] = entry.mapper

    selection_table = environment.build_selection_table()

    # Score the lookup on a held-out graph: the recommendation's makespan
    # relative to the true best mapper for that graph ("regret", >= 1).
    held_out = random_dag(tasks=30, layers=4, seed=seed + 99)
    regrets = []
    for system in environment.systems:
        recommended = environment.lookup(held_out, system)
        recommended_mapper = next(m for m in environment.mappers if m.name == recommended)
        recommended_makespan = environment.evaluate(held_out, system, recommended_mapper).makespan
        _, best = environment.best_mapper_for(held_out, system)
        regrets.append(recommended_makespan / best if best > 0 else 1.0)
    lookup_regret = sum(regrets) / len(regrets)

    return WarmstonesResult(
        entries=entries,
        winners=winners,
        selection_table=selection_table,
        lookup_regret=lookup_regret,
    )
