"""E9 — Metacomputing scheduling: prediction accuracy, reservations, co-allocation.

Sections 3 and 4: meta-schedulers need queue-wait predictions to pick sites,
and co-allocation "can only be achieved if the schedulers that control the
participating parallel machines accept reservations."  This experiment runs
the same multi-site scenario (local workloads per site plus a meta-job
stream) in four configurations — {least-loaded, earliest-start} x
{no reservations, reservations} — and reports:

* mean meta-job wait and bounded slowdown,
* co-allocated jobs finished versus left hanging (the starvation risk of
  reservation-less co-allocation),
* node-seconds wasted by components idling while waiting for their partners,
* local (site) utilization and slowdown, to expose the price local users pay
  for reservations,
* the accuracy of three queue-wait predictors (mean, category-template,
  profile-based), scored on the single-site meta jobs.

Expected shape: reservations complete (nearly) all co-allocations and cut the
wasted node-seconds sharply, at a modest cost to local metrics; the
informed (earliest-start) meta-scheduler beats least-loaded on meta-job wait;
the profile predictor has the lowest error of the three families.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.api import Scenario, run as run_scenario
from repro.grid import GridResult, prediction_error_summary
from repro.metrics import compute_metrics

__all__ = ["GridExperimentResult", "run"]


@dataclass
class GridExperimentResult:
    """Grid results per (meta-scheduler, reservations) configuration."""

    configurations: List[str]
    grid_results: Dict[str, GridResult]
    prediction_errors: Dict[str, Dict[str, Dict[str, float]]]

    def rows(self) -> List[Dict[str, object]]:
        rows = []
        for name in self.configurations:
            result = self.grid_results[name]
            coallocations = result.coallocation_results()
            local_reports = [
                compute_metrics(site_result) for site_result in result.site_results.values()
            ]
            mean_local_util = (
                sum(r.utilization for r in local_reports) / len(local_reports)
                if local_reports
                else 0.0
            )
            rows.append(
                {
                    "configuration": name,
                    "meta_jobs_done": len(result.meta_results),
                    "meta_unfinished": len(result.unfinished_meta_jobs),
                    "mean_meta_wait": round(result.mean_meta_wait(), 1),
                    "coallocations_done": len(coallocations),
                    "wasted_node_seconds": round(result.total_wasted_node_seconds(), 0),
                    "late_reservations": round(result.late_reservation_fraction(), 3),
                    "mean_local_utilization": round(mean_local_util, 3),
                }
            )
        return rows

    def predictor_rows(self) -> List[Dict[str, object]]:
        rows = []
        for config, per_predictor in self.prediction_errors.items():
            for predictor, summary in per_predictor.items():
                rows.append(
                    {
                        "configuration": config,
                        "predictor": predictor,
                        "mae_seconds": round(summary["mae"], 1),
                        "bias_seconds": round(summary["bias"], 1),
                        "mean_actual_wait": round(summary["mean_actual"], 1),
                        "samples": summary["count"],
                    }
                )
        return rows


def run(
    sites: int = 4,
    machine_size: int = 128,
    local_jobs_per_site: int = 250,
    meta_jobs: int = 120,
    local_load: float = 0.6,
    coallocation_fraction: float = 0.3,
    seed: int = 9,
) -> GridExperimentResult:
    """Run the four (meta-scheduler, reservations) configurations.

    Each configuration is one grid-mode :class:`Scenario`: the local per-site
    workloads (re-seeded per site), the synthetic meta stream, and the three
    scored queue-wait predictors are all materialized by the scenario runner.
    """
    configurations: List[Tuple[str, str, bool]] = [
        ("least-loaded/no-reservations", "least-loaded", False),
        ("least-loaded/reservations", "least-loaded", True),
        ("earliest-start/no-reservations", "earliest-start", False),
        ("earliest-start/reservations", "earliest-start", True),
    ]
    grid_results: Dict[str, GridResult] = {}
    prediction_errors: Dict[str, Dict[str, Dict[str, float]]] = {}
    for name, meta, use_reservations in configurations:
        scenario = Scenario(
            workload=f"lublin99:jobs={local_jobs_per_site}",
            policy=(
                f"grid:meta={meta},sites={sites},"
                f"reservations={str(use_reservations).lower()},"
                f"meta_jobs={meta_jobs},coallocation_fraction={coallocation_fraction}"
            ),
            machine_size=machine_size,
            load=local_load,
            seed=seed,
            name=name,
        )
        result = run_scenario(scenario).grid
        grid_results[name] = result
        prediction_errors[name] = {
            predictor: prediction_error_summary(pairs)
            for predictor, pairs in result.prediction_pairs.items()
        }
    return GridExperimentResult(
        configurations=[c[0] for c in configurations],
        grid_results=grid_results,
        prediction_errors=prediction_errors,
    )
