"""E1 — Figure 1: the scheduling-entity hierarchy of a metacomputing environment.

The paper's only figure shows users submitting work either directly to
machine schedulers or through meta-/application schedulers that talk to
several machine schedulers, which in turn direct node schedulers.  This
experiment materializes that hierarchy: two sites with their own machine
schedulers and local users, one meta-scheduler placing meta jobs across them,
and reports how work flowed through each entity — the structural counterpart
of the figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.bench.seeds import derive_seeds
from repro.grid import (
    GridSimulation,
    LeastLoadedMetaScheduler,
    Site,
    generate_meta_jobs,
)
from repro.schedulers import EasyBackfillScheduler
from repro.workloads import Lublin99Model

__all__ = ["EntitiesResult", "run"]


@dataclass
class EntitiesResult:
    """Jobs routed through each entity of the Figure 1 hierarchy."""

    site_names: List[str]
    local_jobs_per_site: Dict[str, int]
    meta_jobs_total: int
    meta_jobs_per_site: Dict[str, int]
    coallocated_jobs: int
    mean_local_wait: Dict[str, float]
    mean_meta_wait: float

    def rows(self) -> List[Dict[str, object]]:
        rows = []
        for name in self.site_names:
            rows.append(
                {
                    "entity": f"machine scheduler @ {name}",
                    "jobs_handled": self.local_jobs_per_site[name] + self.meta_jobs_per_site[name],
                    "local_jobs": self.local_jobs_per_site[name],
                    "meta_jobs": self.meta_jobs_per_site[name],
                    "mean_wait_s": round(self.mean_local_wait[name], 1),
                }
            )
        rows.append(
            {
                "entity": "meta scheduler",
                "jobs_handled": self.meta_jobs_total,
                "local_jobs": 0,
                "meta_jobs": self.meta_jobs_total,
                "mean_wait_s": round(self.mean_meta_wait, 1),
            }
        )
        return rows


def run(
    sites: int = 2,
    machine_size: int = 128,
    local_jobs_per_site: int = 300,
    meta_jobs: int = 60,
    load: float = 0.6,
    seed: int = 1,
) -> EntitiesResult:
    """Build the Figure 1 hierarchy and route local + meta jobs through it."""
    site_seeds = derive_seeds(seed, sites)
    site_objects = [
        Site(
            name=f"site-{i + 1}",
            machine_size=machine_size,
            scheduler=EasyBackfillScheduler(outage_aware=True),
            local_workload=Lublin99Model(machine_size=machine_size).generate_with_load(
                local_jobs_per_site, load, seed=site_seeds[i]
            ),
        )
        for i in range(sites)
    ]
    meta_stream = generate_meta_jobs(
        meta_jobs, coallocation_fraction=0.2, max_components=min(sites, 3), seed=seed + 100
    )
    simulation = GridSimulation(
        site_objects, meta_stream, LeastLoadedMetaScheduler(), use_reservations=True
    )
    result = simulation.run()

    meta_per_site = {s.name: 0 for s in site_objects}
    for meta_result in result.meta_results:
        for site_name in meta_result.sites:
            meta_per_site[site_name] += 1
    local_per_site = {
        name: len(sim_result.jobs) for name, sim_result in result.site_results.items()
    }
    mean_local_wait = {}
    for name, sim_result in result.site_results.items():
        completed = sim_result.completed_jobs()
        mean_local_wait[name] = (
            sum(j.wait_time for j in completed) / len(completed) if completed else 0.0
        )
    return EntitiesResult(
        site_names=[s.name for s in site_objects],
        local_jobs_per_site=local_per_site,
        meta_jobs_total=len(result.meta_results),
        meta_jobs_per_site=meta_per_site,
        coallocated_jobs=len(result.coallocation_results()),
        mean_local_wait=mean_local_wait,
        mean_meta_wait=result.mean_meta_wait(),
    )
