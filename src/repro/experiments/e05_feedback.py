"""E5 — Feedback: open replay versus closed (dependency-honouring) replay.

Section 2.2 ("Including feedback"): the instant a job is submitted often
depends on the termination of the user's previous job, so replaying absolute
arrival times breaks the feedback loop between system performance and the
workload.  The SWF's fields 17/18 make the dependencies explicit; this
experiment replays the same session-structured workload twice —

* **open**: absolute submit times, dependencies ignored, and
* **closed**: dependent jobs submitted think-time seconds after their
  predecessor completes —

across a load sweep, under EASY backfilling.

Expected shape: the open replay consistently overstates waits and slowdowns —
arrivals keep coming regardless of backlog, while the closed replay
self-throttles (a user cannot submit the next job of a session before the
previous one finished).  The gap is clearest at and beyond saturation.  This
is the distortion the paper warns evaluations about when feedback is ignored.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.api import Scenario, make_model, run as run_scenario
from repro.core.swf.feedback import sessions_of
from repro.metrics import MetricsReport

__all__ = ["FeedbackResult", "run"]


@dataclass
class FeedbackResult:
    """Open vs closed metric reports per offered load."""

    loads: List[float]
    open_reports: Dict[float, MetricsReport]
    closed_reports: Dict[float, MetricsReport]
    sessions: int
    dependent_fraction: float

    def rows(self) -> List[Dict[str, object]]:
        rows = []
        for load in self.loads:
            open_report = self.open_reports[load]
            closed_report = self.closed_reports[load]
            rows.append(
                {
                    "load": load,
                    "open_mean_wait": round(open_report.mean_wait, 1),
                    "closed_mean_wait": round(closed_report.mean_wait, 1),
                    "open_mean_bsld": round(open_report.mean_bounded_slowdown, 2),
                    "closed_mean_bsld": round(closed_report.mean_bounded_slowdown, 2),
                    "wait_ratio_open_over_closed": round(
                        open_report.mean_wait / closed_report.mean_wait, 2
                    )
                    if closed_report.mean_wait > 0
                    else float("inf"),
                }
            )
        return rows

    def divergence_at(self, load: float) -> float:
        """Open mean wait divided by closed mean wait at the given load."""
        closed = self.closed_reports[load].mean_wait
        return self.open_reports[load].mean_wait / closed if closed > 0 else float("inf")


def run(
    jobs: int = 1200,
    machine_size: int = 128,
    loads: Sequence[float] = (0.6, 0.9, 1.1),
    seed: int = 5,
) -> FeedbackResult:
    """Replay the same session workload open and closed across a load sweep."""
    model = make_model("sessions:users=40", machine_size=machine_size)
    base = model.generate(jobs, seed=seed)
    sessions = sessions_of(base)
    dependent = sum(1 for job in base.summary_jobs() if job.has_dependency)

    open_reports: Dict[float, MetricsReport] = {}
    closed_reports: Dict[float, MetricsReport] = {}
    for load in loads:
        scenario = Scenario(
            workload=f"sessions:users=40,jobs={jobs},seed={seed}",
            policy="easy",
            machine_size=machine_size,
            load=load,
        )
        open_reports[load] = run_scenario(scenario, workload=base).report
        closed_reports[load] = run_scenario(
            scenario.with_(honor_dependencies=True), workload=base
        ).report
    return FeedbackResult(
        loads=list(loads),
        open_reports=open_reports,
        closed_reports=closed_reports,
        sessions=len(sessions),
        dependent_fraction=dependent / len(base) if len(base) else 0.0,
    )
