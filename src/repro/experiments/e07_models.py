"""E7 — Comparing workload models against an archive-like reference (Section 2.1, ref [58]).

The paper reports that "a statistical analysis shows that the one proposed by
Lublin is relatively representative of multiple workloads" (the Talby,
Feitelson & Raveh co-plot study).  This experiment places the four
measurement-based models and the naive uniform baseline side by side with a
synthetic archive reference along two axes:

* **descriptive statistics** — power-of-two fraction, serial fraction, size
  and runtime distributions, interarrival CV;
* **scheduling results** — the metrics EASY backfilling produces on each
  workload at the same offered load (the property evaluations actually
  depend on).

A per-model "distance" to the reference aggregates normalized differences of
the descriptive statistics, so the benchmark can assert the expected ordering:
a measurement-based model is always the closest match (Lublin in the top two;
in this repository the synthetic archive references are themselves
Lublin-derived — see DESIGN.md — so this doubles as a consistency check of the
distance measure), and the naive uniform baseline never is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.api import Scenario, model_registry, run as run_scenario
from repro.core.swf import WorkloadStatistics, summarize
from repro.data import synthetic_archive
from repro.metrics import MetricsReport

__all__ = ["ModelComparisonResult", "run"]

#: The rigid models compared against the archive reference, by registry name.
MODEL_NAMES = ("feitelson96", "jann97", "lublin99", "downey97", "uniform")


@dataclass
class ModelComparisonResult:
    """Statistics, scheduling metrics, and reference distance per workload."""

    names: List[str]
    statistics: Dict[str, WorkloadStatistics]
    scheduling: Dict[str, MetricsReport]
    distance_to_reference: Dict[str, float]
    reference: str

    def rows(self) -> List[Dict[str, object]]:
        rows = []
        for name in self.names:
            stats = self.statistics[name]
            report = self.scheduling[name]
            rows.append(
                {
                    "workload": name,
                    "pow2_fraction": round(stats.power_of_two_fraction, 3),
                    "serial_fraction": round(stats.serial_fraction, 3),
                    "mean_size": round(stats.size.mean, 1),
                    "runtime_cv": round(stats.runtime.cv, 2),
                    "interarrival_cv": round(stats.interarrival.cv, 2),
                    "easy_mean_bsld": round(report.mean_bounded_slowdown, 2),
                    "easy_utilization": round(report.utilization, 3),
                    "distance_to_reference": round(self.distance_to_reference[name], 3),
                }
            )
        return rows

    def models_ordered_by_distance(self) -> List[str]:
        """Model names (reference excluded) from closest to farthest."""
        return sorted(
            (n for n in self.names if n != self.reference),
            key=lambda n: self.distance_to_reference[n],
        )


def _distance(stats: WorkloadStatistics, reference: WorkloadStatistics) -> float:
    """Normalized absolute difference over the co-plot-style feature set."""
    features = [
        ("power_of_two_fraction", stats.power_of_two_fraction, reference.power_of_two_fraction),
        ("serial_fraction", stats.serial_fraction, reference.serial_fraction),
        ("mean_size", stats.size.mean, reference.size.mean),
        ("runtime_mean", stats.runtime.mean, reference.runtime.mean),
        ("runtime_cv", stats.runtime.cv, reference.runtime.cv),
        ("interarrival_cv", stats.interarrival.cv, reference.interarrival.cv),
    ]
    total = 0.0
    for _name, value, ref in features:
        scale = abs(ref) if abs(ref) > 1e-9 else 1.0
        total += abs(value - ref) / scale
    return total / len(features)


def run(
    jobs: int = 2000,
    machine_size: int = 128,
    load: float = 0.7,
    seed: int = 7,
    reference_archive: str = "sdsc-paragon",
) -> ModelComparisonResult:
    """Generate every model at the same load and compare against the reference."""
    reference = synthetic_archive(reference_archive, jobs=jobs, seed=seed)
    reference_name = f"reference:{reference_archive}"

    workloads = {reference_name: reference}
    for model_name in MODEL_NAMES:
        model = model_registry.create(model_name, machine_size=machine_size)
        workloads[model.name] = model.generate_with_load(jobs, load, seed=seed)

    statistics: Dict[str, WorkloadStatistics] = {}
    scheduling: Dict[str, MetricsReport] = {}
    distances: Dict[str, float] = {}
    reference_stats = summarize(reference, machine_size=machine_size)
    scenario = Scenario(workload="(in-memory)", policy="easy", machine_size=machine_size)
    for name, workload in workloads.items():
        stats = summarize(workload, machine_size=machine_size)
        statistics[name] = stats
        scheduling[name] = run_scenario(scenario.with_(name=name), workload=workload).report
        distances[name] = _distance(stats, reference_stats)
    return ModelComparisonResult(
        names=list(workloads),
        statistics=statistics,
        scheduling=scheduling,
        distance_to_reference=distances,
        reference=reference_name,
    )
