"""E8 — Moldable (flexible) job scheduling with the Downey speedup model.

Section 2.1 ("Flexible job models"): describing a job by its total work and
speedup function "enables the scheduler to choose the number of processors
that will be used, according to the current load conditions."  This
experiment generates one Downey workload and schedules the same job set three
ways across a load sweep:

* **rigid + FCFS** — the user's request (average parallelism rounded to a
  power of two) is fixed; FCFS baseline,
* **rigid + EASY** — same requests under backfilling,
* **moldable adaptive** — the scheduler chooses each job's allocation from
  its speedup curve, subject to an efficiency threshold, shrinking jobs when
  the machine is busy.

Expected shape (Downey's own conclusion): adaptivity matters most at high
load, where shrinking allocations keeps jobs flowing; at low load rigid
requests already start immediately and the three policies converge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.api import Scenario, make_model, run as run_scenario
from repro.metrics import MetricsReport
from repro.schedulers.moldable import MoldableScheduler

__all__ = ["MoldableResult", "run"]


@dataclass
class MoldableResult:
    """Metric reports per (load, policy)."""

    loads: List[float]
    reports: Dict[float, Dict[str, MetricsReport]]
    mean_adaptive_allocation: Dict[float, float]

    def rows(self) -> List[Dict[str, object]]:
        rows = []
        for load in self.loads:
            for policy, report in self.reports[load].items():
                rows.append(
                    {
                        "load": load,
                        "policy": policy,
                        "mean_response": round(report.mean_response, 1),
                        "mean_bounded_slowdown": round(report.mean_bounded_slowdown, 2),
                        "utilization": round(report.utilization, 3),
                    }
                )
        return rows

    def adaptive_gain_over_rigid_easy(self, load: float) -> float:
        """Rigid-EASY mean response divided by adaptive mean response (>1 = adaptive wins)."""
        adaptive = self.reports[load]["moldable-adaptive"].mean_response
        rigid = self.reports[load]["easy-backfill"].mean_response
        return rigid / adaptive if adaptive > 0 else float("inf")


def run(
    jobs: int = 800,
    machine_size: int = 128,
    loads: Sequence[float] = (0.5, 0.8),
    efficiency_threshold: float = 0.5,
    seed: int = 8,
) -> MoldableResult:
    """Compare rigid FCFS, rigid EASY, and adaptive moldable scheduling."""
    model = make_model("downey97", machine_size=machine_size)
    base, moldable_jobs = model.generate_moldable(jobs, seed=seed)

    reports: Dict[float, Dict[str, MetricsReport]] = {}
    mean_allocation: Dict[float, float] = {}
    for load in loads:
        scenario = Scenario(
            workload=f"downey97:jobs={jobs},seed={seed}",
            machine_size=machine_size,
            load=load,
        )
        per_policy: Dict[str, MetricsReport] = {}

        for policy in ("fcfs", "easy"):
            sr = run_scenario(scenario.with_(policy=policy), workload=base)
            per_policy[sr.result.scheduler_name] = sr.report

        # The moldable-jobs table cannot be expressed as a spec string, so the
        # adaptive policy rides along as an instance override.
        adaptive = MoldableScheduler(
            moldable_jobs, efficiency_threshold=efficiency_threshold
        )
        sr = run_scenario(scenario.with_(policy="moldable"), workload=base, policy=adaptive)
        per_policy[adaptive.name] = sr.report
        sizes = [j.processors for j in sr.result.completed_jobs()]
        mean_allocation[load] = sum(sizes) / len(sizes) if sizes else 0.0
        reports[load] = per_policy
    return MoldableResult(
        loads=list(loads), reports=reports, mean_adaptive_allocation=mean_allocation
    )
