"""E4 — Objective-weight sensitivity (reference [41], Krallmann et al.).

The paper notes that objective functions "that only differ in the selection
of a weight" can rank scheduling algorithms differently.  This experiment
evaluates a roster of policies once on a fixed workload, then sweeps the
weights of a composite objective (wait time, bounded slowdown, utilization)
and reports which policy each weighting prefers.

Expected shape: the winner changes across the weight sweep — utilization-
heavy weightings prefer the packing-oriented policies, slowdown-heavy
weightings prefer the ones that favour short jobs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.api import Scenario, resolve_workload, run as run_scenario
from repro.metrics import MetricsReport, ObjectiveFunction, rank_schedulers

__all__ = ["ObjectiveWeightsResult", "run", "DEFAULT_WEIGHTINGS"]

#: The policy roster, named through the scheduler registry.
POLICIES = ("fcfs", "first-fit", "sjf", "easy", "conservative")

#: (label, weights) pairs swept by default: from purely user-centric to
#: purely system-centric.
DEFAULT_WEIGHTINGS: Tuple[Tuple[str, Dict[str, float]], ...] = (
    ("wait-only", {"mean_wait": 1.0}),
    ("slowdown-only", {"mean_bounded_slowdown": 1.0}),
    ("utilization-only", {"utilization": 1.0}),
    ("balanced", {"mean_wait": 0.4, "mean_bounded_slowdown": 0.4, "utilization": 0.2}),
    ("system-centric", {"mean_wait": 0.1, "mean_bounded_slowdown": 0.1, "utilization": 0.8}),
    ("user-centric", {"mean_wait": 0.5, "mean_bounded_slowdown": 0.5}),
)


@dataclass
class ObjectiveWeightsResult:
    """Winner and full ranking per objective weighting."""

    reports: List[MetricsReport]
    rankings: Dict[str, List[str]]

    @property
    def winners(self) -> Dict[str, str]:
        return {label: ranking[0] for label, ranking in self.rankings.items()}

    def distinct_winners(self) -> int:
        return len(set(self.winners.values()))

    def rows(self) -> List[Dict[str, object]]:
        rows = []
        for label, ranking in self.rankings.items():
            rows.append(
                {
                    "objective": label,
                    "winner": ranking[0],
                    "ranking": " > ".join(ranking),
                }
            )
        return rows


def run(
    jobs: int = 1500,
    machine_size: int = 128,
    load: float = 0.8,
    weightings: Sequence[Tuple[str, Dict[str, float]]] = DEFAULT_WEIGHTINGS,
    seed: int = 4,
) -> ObjectiveWeightsResult:
    """Evaluate the policy roster once, then rank it under each weighting."""
    base_scenario = Scenario(
        workload=f"lublin99:jobs={jobs},seed={seed}", machine_size=machine_size, load=load
    )
    workload = resolve_workload(base_scenario)
    # load=None per run: the shared override is already rescaled to target.
    reports = [
        run_scenario(base_scenario.with_(policy=policy, load=None), workload=workload).report
        for policy in POLICIES
    ]
    # Normalize every objective to the FCFS baseline so weights are unitless.
    baseline = next(r for r in reports if r.scheduler == "fcfs")
    rankings: Dict[str, List[str]] = {}
    for label, weights in weightings:
        objective = ObjectiveFunction(weights=weights, name=label).normalized_to(baseline)
        rankings[label] = rank_schedulers(reports, objective=objective)
    return ObjectiveWeightsResult(reports=reports, rankings=rankings)
