"""E4 — Objective-weight sensitivity (reference [41], Krallmann et al.).

The paper notes that objective functions "that only differ in the selection
of a weight" can rank scheduling algorithms differently.  This experiment
evaluates a roster of policies on a fixed workload context, then sweeps the
weights of a composite objective (wait time, bounded slowdown, utilization)
and reports which policy each weighting prefers.

Replications run through the benchmark suite runner
(:func:`repro.bench.runner.run_suite`): every policy is evaluated over a
common derived seed list, objectives are computed on across-seed means, and
the per-metric Student-t intervals are exposed so a "winner" can be read
against the replication noise.

Expected shape: the winner changes across the weight sweep — utilization-
heavy weightings prefer the packing-oriented policies, slowdown-heavy
weightings prefer the ones that favour short jobs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api import Scenario
from repro.bench.runner import run_suite
from repro.bench.seeds import derive_seeds
from repro.bench.stats import CIEstimate
from repro.bench.store import ResultStore
from repro.bench.suite import BenchmarkCase, BenchmarkSuite
from repro.metrics import MetricsReport, ObjectiveFunction, rank_schedulers

__all__ = ["ObjectiveWeightsResult", "run", "DEFAULT_WEIGHTINGS"]

#: The policy roster, named through the scheduler registry.
POLICIES = ("fcfs", "first-fit", "sjf", "easy", "conservative")

#: (label, weights) pairs swept by default: from purely user-centric to
#: purely system-centric.
DEFAULT_WEIGHTINGS: Tuple[Tuple[str, Dict[str, float]], ...] = (
    ("wait-only", {"mean_wait": 1.0}),
    ("slowdown-only", {"mean_bounded_slowdown": 1.0}),
    ("utilization-only", {"utilization": 1.0}),
    ("balanced", {"mean_wait": 0.4, "mean_bounded_slowdown": 0.4, "utilization": 0.2}),
    ("system-centric", {"mean_wait": 0.1, "mean_bounded_slowdown": 0.1, "utilization": 0.8}),
    ("user-centric", {"mean_wait": 0.5, "mean_bounded_slowdown": 0.5}),
)


@dataclass
class ObjectiveWeightsResult:
    """Winner and full ranking per objective weighting.

    ``reports`` are across-seeds mean reports (one per policy);
    ``cis[scheduler][metric]`` holds the matching Student-t intervals.
    """

    reports: List[MetricsReport]
    rankings: Dict[str, List[str]]
    cis: Dict[str, Dict[str, CIEstimate]]
    replications: int = 1

    @property
    def winners(self) -> Dict[str, str]:
        return {label: ranking[0] for label, ranking in self.rankings.items()}

    def distinct_winners(self) -> int:
        return len(set(self.winners.values()))

    def rows(self) -> List[Dict[str, object]]:
        rows = []
        for label, ranking in self.rankings.items():
            rows.append(
                {
                    "objective": label,
                    "winner": ranking[0],
                    "ranking": " > ".join(ranking),
                }
            )
        return rows


def run(
    jobs: int = 1500,
    machine_size: int = 128,
    load: float = 0.8,
    weightings: Sequence[Tuple[str, Dict[str, float]]] = DEFAULT_WEIGHTINGS,
    seed: int = 4,
    replications: int = 3,
    workers: Optional[int] = None,
    store: Optional[ResultStore] = None,
) -> ObjectiveWeightsResult:
    """Evaluate the roster over replications, then rank it under each weighting.

    All policies share the derived seed list (common random numbers), so the
    rankings compare like with like; pass a :class:`ResultStore` to reuse
    cached replications across invocations.
    """
    seeds = tuple(derive_seeds(seed, replications))
    context = f"lublin99@{load:.2f}"
    scenario = Scenario(
        workload="lublin99", machine_size=machine_size, jobs=jobs, load=load
    )
    suite = BenchmarkSuite(
        name="e04-objective-weights",
        description="E4 replication suite: the roster on one workload context.",
        cases=tuple(
            BenchmarkCase(
                context=context,
                scenario=scenario.with_(policy=policy),
                seeds=seeds,
            )
            for policy in POLICIES
        ),
        metrics=("mean_wait", "mean_bounded_slowdown", "utilization"),
    )
    outcome = run_suite(suite, workers=workers, store=store)
    aggregates = {agg.case: agg for agg in outcome.aggregates()}
    ordered = [aggregates[f"{context}/{policy}"] for policy in POLICIES]
    reports = [agg.summary for agg in ordered]
    cis = {agg.summary.scheduler: agg.cis for agg in ordered}

    # Normalize every objective to the FCFS baseline so weights are unitless.
    baseline = next(r for r in reports if r.scheduler == "fcfs")
    rankings: Dict[str, List[str]] = {}
    for label, weights in weightings:
        objective = ObjectiveFunction(weights=weights, name=label).normalized_to(baseline)
        rankings[label] = rank_schedulers(reports, objective=objective)
    return ObjectiveWeightsResult(
        reports=reports,
        rankings=rankings,
        cis=cis,
        replications=replications,
    )
