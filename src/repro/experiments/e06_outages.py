"""E6 — Outage impact on scheduler evaluation (Section 2.2, "Including outage information").

The paper argues a simulation "cannot possibly be accurate if it ignores all
factors external to a scheduler's trace file" — node failures, maintenance,
dedicated time — and proposes a standard outage log keyed to the workload.
This experiment replays the same workload under EASY backfilling in four
configurations:

1. **no outages** (the idealized evaluation every trace-only study performs),
2. **unannounced failures** (nodes drop without warning; running jobs are
   killed and restarted),
3. **announced maintenance, outage-blind scheduler** (the scheduler does not
   drain, so jobs are killed at the window start), and
4. **announced maintenance, outage-aware scheduler** (the scheduler drains
   ahead of the window using the announced-capacity hook).

Expected shape: unannounced failures kill and restart jobs, wasting capacity
(lower utilization, longer makespan); announced-but-ignored maintenance still
kills jobs at the window start; draining eliminates maintenance kills at a
modest cost in utilization.  Note that *mean* slowdown can even improve under
failures, because killing a wide long job and re-queueing it acts like
preemption in favour of the many short jobs — exactly the kind of
metric-choice subtlety the paper warns about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.api import Scenario, run as run_scenario
from repro.core.outage import OutageLog, OutageModel, generate_outages
from repro.metrics import MetricsReport

__all__ = ["OutageImpactResult", "run"]


@dataclass
class OutageImpactResult:
    """Metric reports and kill counts per configuration."""

    configurations: List[str]
    reports: Dict[str, MetricsReport]
    outage_kills: Dict[str, int]
    node_downtime_fraction: Dict[str, float]

    def rows(self) -> List[Dict[str, object]]:
        return [
            {
                "configuration": name,
                "mean_wait": round(self.reports[name].mean_wait, 1),
                "mean_bounded_slowdown": round(self.reports[name].mean_bounded_slowdown, 2),
                "utilization": round(self.reports[name].utilization, 3),
                "jobs_killed_by_outages": self.outage_kills[name],
                "downtime_fraction": round(self.node_downtime_fraction[name], 4),
            }
            for name in self.configurations
        ]


def run(
    jobs: int = 1200,
    machine_size: int = 128,
    load: float = 0.7,
    mtbf_days: float = 3.0,
    seed: int = 6,
) -> OutageImpactResult:
    """Compare scheduling with no outages, failures, and maintenance (blind vs aware)."""
    base_scenario = Scenario(
        workload=f"lublin99:jobs={jobs},seed={seed}",
        policy="easy",
        machine_size=machine_size,
        load=load,
    )
    from repro.api import resolve_workload

    workload = resolve_workload(base_scenario)
    horizon = workload.span() + 24 * 3600

    failures = generate_outages(
        machine_size,
        horizon,
        model=OutageModel(
            mtbf_seconds=mtbf_days * 24 * 3600,
            maintenance_interval_seconds=0,  # failures only
            max_nodes_per_failure=8,
        ),
        seed=seed,
    )
    maintenance = generate_outages(
        machine_size,
        horizon,
        model=OutageModel(
            mtbf_seconds=float("1e18"),  # effectively no random failures
            maintenance_interval_seconds=7 * 24 * 3600,
            maintenance_duration_seconds=8 * 3600,
            maintenance_notice_seconds=3 * 24 * 3600,
            maintenance_fraction=1.0,
        ),
        seed=seed,
    )

    configurations = [
        ("no-outages", None, False),
        ("unannounced-failures", failures, False),
        ("maintenance-blind", maintenance, False),
        ("maintenance-drained", maintenance, True),
    ]
    reports: Dict[str, MetricsReport] = {}
    kills: Dict[str, int] = {}
    downtime: Dict[str, float] = {}
    for name, outages, aware in configurations:
        scenario = base_scenario.with_(
            policy=f"easy:outage_aware={str(aware).lower()}", load=None
        )
        # The outage logs are in-memory (keyed to this workload's horizon), so
        # they ride along as an override rather than a path in the scenario;
        # load=None because the shared workload is already rescaled to target.
        scenario_result = run_scenario(scenario, workload=workload, outages=outages)
        result = scenario_result.result
        reports[name] = scenario_result.report
        kills[name] = result.outage_kills
        if outages is not None and result.makespan > 0:
            downtime[name] = outages.total_node_downtime() / (machine_size * result.makespan)
        else:
            downtime[name] = 0.0
    return OutageImpactResult(
        configurations=[c[0] for c in configurations],
        reports=reports,
        outage_kills=kills,
        node_downtime_fraction=downtime,
    )
