"""Experiment harnesses E1..E11 (see DESIGN.md for the experiment index).

Each module exposes a ``run(...)`` function that executes the experiment at a
configurable (default: laptop-friendly) scale and returns a structured result
with a ``rows()`` method producing the table the benchmark prints and
EXPERIMENTS.md records.
"""

from repro.experiments import (
    e01_entities,
    e02_swf_roundtrip,
    e03_metric_ranking,
    e04_objective_weights,
    e05_feedback,
    e06_outages,
    e07_models,
    e08_moldable,
    e09_grid,
    e10_warmstones,
    e11_traces,
)

__all__ = [
    "e01_entities",
    "e02_swf_roundtrip",
    "e03_metric_ranking",
    "e04_objective_weights",
    "e05_feedback",
    "e06_outages",
    "e07_models",
    "e08_moldable",
    "e09_grid",
    "e10_warmstones",
    "e11_traces",
]
