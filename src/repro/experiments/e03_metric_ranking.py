"""E3 — Metric-dependent scheduler ranking (Section 1.2, reference [30]).

The paper's motivating observation for standardizing metrics: "one of the
papers in the workshop showed contradicting results for the comparison of two
scheduling algorithms if response time or slowdown were used as a metric."
This experiment compares FCFS, EASY backfilling, and conservative backfilling
across a load sweep and reports, per load, the mean response time and mean
bounded slowdown of each policy plus the ranking each metric induces.

Replications run through the benchmark suite runner
(:func:`repro.bench.runner.run_suite`): every (load, policy) cell is
evaluated over a common derived seed list, rankings are computed on
across-seed means, and the tables carry Student-t confidence-interval
half-widths — the paper's point made with statistics instead of single runs.

Expected shape (from the backfilling literature the paper builds on): both
backfilling variants dominate FCFS by a growing factor as load rises, while
the EASY-versus-conservative ordering is metric- and load-dependent — the
Kendall tau between the response-time and slowdown rankings drops below 1.0
somewhere in the sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.api import Scenario
from repro.bench.runner import mean_report, run_suite
from repro.bench.seeds import derive_seeds
from repro.bench.stats import CIEstimate
from repro.bench.store import ResultStore
from repro.bench.suite import BenchmarkCase, BenchmarkSuite
from repro.metrics import MetricsReport, kendall_tau, rank_schedulers

__all__ = ["MetricRankingResult", "run"]

#: The policy roster, named through the scheduler registry.
POLICIES = ("fcfs", "easy", "conservative")

#: The two metrics whose induced rankings the experiment contrasts.
RANKING_METRICS = ("mean_response", "mean_bounded_slowdown")


@dataclass
class MetricRankingResult:
    """Per-load metric reports (seed means) and the rankings they induce.

    ``reports[load]`` holds one across-seeds mean :class:`MetricsReport` per
    policy; ``cis[load][scheduler][metric]`` holds the matching Student-t
    interval, so tables can print ``mean ± half-width``.
    """

    loads: List[float]
    reports: Dict[float, List[MetricsReport]]
    ranking_by_response: Dict[float, List[str]]
    ranking_by_slowdown: Dict[float, List[str]]
    #: worst-case Kendall tau between the two metric-induced rankings at each
    #: load, over the across-seed means *and* every individual replication —
    #: a single evaluation whose metrics contradict each other is exactly the
    #: phenomenon the paper reports.
    ranking_agreement: Dict[float, float]
    cis: Dict[float, Dict[str, Dict[str, CIEstimate]]]
    replications: int = 1

    def rows(self) -> List[Dict[str, object]]:
        rows = []
        for load in self.loads:
            for report in self.reports[load]:
                cis = self.cis[load][report.scheduler]
                rows.append(
                    {
                        "load": load,
                        "scheduler": report.scheduler,
                        "mean_response": round(report.mean_response, 1),
                        "ci95_response": round(cis["mean_response"].half_width, 1),
                        "mean_bounded_slowdown": round(report.mean_bounded_slowdown, 2),
                        "ci95_slowdown": round(cis["mean_bounded_slowdown"].half_width, 2),
                        "utilization": round(report.utilization, 3),
                        "rank_by_response": self.ranking_by_response[load].index(report.scheduler) + 1,
                        "rank_by_slowdown": self.ranking_by_slowdown[load].index(report.scheduler) + 1,
                    }
                )
        return rows

    def rankings_ever_disagree(self) -> bool:
        """True if, at any load, the two metrics order the policies differently."""
        return any(tau < 1.0 for tau in self.ranking_agreement.values())

    def backfilling_speedup_over_fcfs(self, load: float) -> float:
        """FCFS mean bounded slowdown divided by EASY's at the given load."""
        reports = {r.scheduler: r for r in self.reports[load]}
        easy = reports["easy-backfill"].mean_bounded_slowdown
        fcfs = reports["fcfs"].mean_bounded_slowdown
        return fcfs / easy if easy > 0 else float("inf")


def run(
    jobs: int = 1500,
    machine_size: int = 128,
    loads: Sequence[float] = (0.5, 0.7, 0.9),
    seed: int = 3,
    tau: float = 10.0,
    replications: int = 3,
    workers: Optional[int] = None,
    store: Optional[ResultStore] = None,
) -> MetricRankingResult:
    """Sweep offered load and compare the three policies under two metrics.

    Every (load, policy) cell runs ``replications`` times over a seed list
    derived from ``seed``; all policies at one load share the seed list
    (common random numbers).  Pass a :class:`ResultStore` to reuse cached
    replications across invocations.
    """
    seeds = tuple(derive_seeds(seed, replications))
    cases = [
        BenchmarkCase(
            context=f"load={load:.2f}",
            scenario=Scenario(
                workload="lublin99",
                policy=policy,
                machine_size=machine_size,
                jobs=jobs,
                load=float(load),
                tau=tau,
            ),
            seeds=seeds,
        )
        for load in loads
        for policy in POLICIES
    ]
    suite = BenchmarkSuite(
        name="e03-metric-ranking",
        description="E3 replication suite: the space-sharing roster across a load sweep.",
        cases=tuple(cases),
        metrics=("mean_response", "mean_bounded_slowdown", "utilization"),
    )
    outcome = run_suite(suite, workers=workers, store=store)
    aggregates = {agg.case: agg for agg in outcome.aggregates()}
    grouped = outcome.by_case()

    reports: Dict[float, List[MetricsReport]] = {}
    cis: Dict[float, Dict[str, Dict[str, CIEstimate]]] = {}
    by_response: Dict[float, List[str]] = {}
    by_slowdown: Dict[float, List[str]] = {}
    agreement: Dict[float, float] = {}
    for load in loads:
        load_aggs = [aggregates[f"load={load:.2f}/{policy}"] for policy in POLICIES]
        load_reports = [agg.summary for agg in load_aggs]
        reports[load] = load_reports
        cis[load] = {agg.summary.scheduler: agg.cis for agg in load_aggs}
        by_response[load] = rank_schedulers(load_reports, metric="mean_response")
        by_slowdown[load] = rank_schedulers(load_reports, metric="mean_bounded_slowdown")
        # Agreement is the *worst* tau across the mean-based ranking and
        # every per-replication ranking: single evaluations contradicting
        # each other between metrics is the paper's motivating observation.
        taus = [kendall_tau(by_response[load], by_slowdown[load])]
        for k in range(replications):
            seed_reports = [
                grouped[f"load={load:.2f}/{policy}"][k].report for policy in POLICIES
            ]
            taus.append(
                kendall_tau(
                    rank_schedulers(seed_reports, metric="mean_response"),
                    rank_schedulers(seed_reports, metric="mean_bounded_slowdown"),
                )
            )
        agreement[load] = min(taus)
    return MetricRankingResult(
        loads=list(loads),
        reports=reports,
        ranking_by_response=by_response,
        ranking_by_slowdown=by_slowdown,
        ranking_agreement=agreement,
        cis=cis,
        replications=replications,
    )
