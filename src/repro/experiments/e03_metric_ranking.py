"""E3 — Metric-dependent scheduler ranking (Section 1.2, reference [30]).

The paper's motivating observation for standardizing metrics: "one of the
papers in the workshop showed contradicting results for the comparison of two
scheduling algorithms if response time or slowdown were used as a metric."
This experiment compares FCFS, EASY backfilling, and conservative backfilling
across a load sweep and reports, per load, the mean response time and mean
bounded slowdown of each policy plus the ranking each metric induces.

Expected shape (from the backfilling literature the paper builds on): both
backfilling variants dominate FCFS by a growing factor as load rises, while
the EASY-versus-conservative ordering is metric- and load-dependent — the
Kendall tau between the response-time and slowdown rankings drops below 1.0
somewhere in the sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.api import make_model
from repro.evaluation import compare_schedulers
from repro.metrics import MetricsReport, kendall_tau, rank_schedulers

__all__ = ["MetricRankingResult", "run"]

#: The policy roster, named through the scheduler registry.
POLICIES = ("fcfs", "easy", "conservative")


@dataclass
class MetricRankingResult:
    """Per-load metric reports and the rankings the two metrics induce."""

    loads: List[float]
    reports: Dict[float, List[MetricsReport]]
    ranking_by_response: Dict[float, List[str]]
    ranking_by_slowdown: Dict[float, List[str]]
    ranking_agreement: Dict[float, float]

    def rows(self) -> List[Dict[str, object]]:
        rows = []
        for load in self.loads:
            for report in self.reports[load]:
                rows.append(
                    {
                        "load": load,
                        "scheduler": report.scheduler,
                        "mean_response": round(report.mean_response, 1),
                        "mean_bounded_slowdown": round(report.mean_bounded_slowdown, 2),
                        "utilization": round(report.utilization, 3),
                        "rank_by_response": self.ranking_by_response[load].index(report.scheduler) + 1,
                        "rank_by_slowdown": self.ranking_by_slowdown[load].index(report.scheduler) + 1,
                    }
                )
        return rows

    def rankings_ever_disagree(self) -> bool:
        """True if, at any load, the two metrics order the policies differently."""
        return any(tau < 1.0 for tau in self.ranking_agreement.values())

    def backfilling_speedup_over_fcfs(self, load: float) -> float:
        """FCFS mean bounded slowdown divided by EASY's at the given load."""
        reports = {r.scheduler: r for r in self.reports[load]}
        easy = reports["easy-backfill"].mean_bounded_slowdown
        fcfs = reports["fcfs"].mean_bounded_slowdown
        return fcfs / easy if easy > 0 else float("inf")


def run(
    jobs: int = 1500,
    machine_size: int = 128,
    loads: Sequence[float] = (0.5, 0.7, 0.9),
    seed: int = 3,
    tau: float = 10.0,
) -> MetricRankingResult:
    """Sweep offered load and compare the three policies under two metrics."""
    model = make_model("lublin99", machine_size=machine_size)
    base = model.generate(jobs, seed=seed)
    base_load = base.offered_load(machine_size)

    reports: Dict[float, List[MetricsReport]] = {}
    by_response: Dict[float, List[str]] = {}
    by_slowdown: Dict[float, List[str]] = {}
    agreement: Dict[float, float] = {}
    for load in loads:
        scaled = base.scale_load(load / base_load, name=f"lublin@{load:.2f}")
        rows = compare_schedulers(
            scaled,
            list(POLICIES),
            machine_size=machine_size,
            tau=tau,
        )
        load_reports = [row.report for row in rows]
        reports[load] = load_reports
        by_response[load] = rank_schedulers(load_reports, metric="mean_response")
        by_slowdown[load] = rank_schedulers(load_reports, metric="mean_bounded_slowdown")
        agreement[load] = kendall_tau(by_response[load], by_slowdown[load])
    return MetricRankingResult(
        loads=list(loads),
        reports=reports,
        ranking_by_response=by_response,
        ranking_by_slowdown=by_slowdown,
        ranking_agreement=agreement,
    )
