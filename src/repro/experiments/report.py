"""Generate EXPERIMENTS.md: paper expectation vs. measured outcome per experiment.

Run as a module to regenerate the report from scratch::

    python -m repro.experiments.report > EXPERIMENTS.md

Every experiment is executed at the same scale the benchmark harness uses, so
the tables in EXPERIMENTS.md are exactly what ``pytest benchmarks/
--benchmark-only`` reproduces.
"""

from __future__ import annotations

import sys
from typing import Iterable, List, Mapping, Sequence

from repro.evaluation import format_table
from repro.experiments import (
    e01_entities,
    e02_swf_roundtrip,
    e03_metric_ranking,
    e04_objective_weights,
    e05_feedback,
    e06_outages,
    e07_models,
    e08_moldable,
    e09_grid,
    e10_warmstones,
)

__all__ = ["generate_report"]


def _markdown_table(rows: Sequence[Mapping[str, object]]) -> str:
    """Render rows as a fenced text table (keeps alignment in any renderer)."""
    return "```\n" + format_table(rows) + "\n```"


def _section(exp_id: str, title: str, anchor: str, expectation: str, measured: str, tables: Iterable[str]) -> str:
    parts = [
        f"## {exp_id} — {title}",
        "",
        f"*Paper anchor:* {anchor}",
        "",
        f"**Expected shape (from the paper and its cited prior work).** {expectation}",
        "",
        f"**Measured.** {measured}",
        "",
    ]
    for table in tables:
        parts.append(table)
        parts.append("")
    return "\n".join(parts)


def generate_report() -> str:
    """Run every experiment at benchmark scale and render the markdown report."""
    sections: List[str] = []

    # ------------------------------------------------------------------ E1
    r1 = e01_entities.run(sites=2, machine_size=128, local_jobs_per_site=400, meta_jobs=80, load=0.6, seed=1)
    sections.append(
        _section(
            "E1",
            "Scheduling-entity hierarchy (Figure 1)",
            "Figure 1, Section 3.1",
            "Users submit work either to machine schedulers directly or through a "
            "meta-scheduler that farms requests out to several machine schedulers; "
            "every entity in the figure handles real traffic.",
            f"Both machine schedulers process local and meta jobs; the meta-scheduler placed "
            f"{r1.meta_jobs_total} meta jobs ({r1.coallocated_jobs} co-allocated across sites).",
            [_markdown_table(r1.rows())],
        )
    )

    # ------------------------------------------------------------------ E2
    r2 = e02_swf_roundtrip.run(jobs_per_archive=2500, seed=11)
    sections.append(
        _section(
            "E2",
            "SWF conformance round trip",
            "Section 2.3 (the standard workload format)",
            "Any workload written in the standard format can be parsed back exactly, passes the "
            "consistency rules ('clean'), and has dense incremental user/group/executable numbers.",
            ("All four synthetic archives pass every check." if r2.all_pass else "Some archives FAIL conformance."),
            [_markdown_table(r2.rows())],
        )
    )

    # ------------------------------------------------------------------ E3
    r3 = e03_metric_ranking.run(jobs=1500, machine_size=128, loads=(0.5, 0.7, 0.9), seed=3)
    disagree_loads = [load for load, tau in r3.ranking_agreement.items() if tau < 1.0]
    sections.append(
        _section(
            "E3",
            "Metric-dependent scheduler ranking",
            "Section 1.2 'Possible inclusion of the objective function'; reference [30]",
            "Backfilling beats FCFS by a factor that grows with load, and the ranking of policies "
            "can differ between response time and slowdown — the observation that motivates "
            "standardizing the objective function.",
            f"EASY backfilling improves mean bounded slowdown over FCFS by a factor of "
            f"{r3.backfilling_speedup_over_fcfs(0.9):.1f} at load 0.9 "
            f"(vs {r3.backfilling_speedup_over_fcfs(0.5):.1f} at load 0.5); the response-time and "
            f"slowdown rankings disagree at load(s) {disagree_loads if disagree_loads else 'none in this sweep'}.",
            [_markdown_table(r3.rows())],
        )
    )

    # ------------------------------------------------------------------ E4
    r4 = e04_objective_weights.run(jobs=1500, machine_size=128, load=0.8, seed=4)
    sections.append(
        _section(
            "E4",
            "Objective-weight sensitivity",
            "Reference [41] (Krallmann, Schwiegelshohn & Yahyapour)",
            "Composite objectives that differ only in their weights rank the same set of "
            "scheduling algorithms differently.",
            f"The six weightings produce {r4.distinct_winners()} distinct winners: "
            + ", ".join(f"{label} → {winner}" for label, winner in r4.winners.items())
            + ".",
            [_markdown_table(r4.rows())],
        )
    )

    # ------------------------------------------------------------------ E5
    r5 = e05_feedback.run(jobs=1200, machine_size=128, loads=(0.6, 0.9, 1.1), seed=5)
    sections.append(
        _section(
            "E5",
            "Feedback: open vs closed replay",
            "Section 2.2 'Including feedback'; SWF fields 17/18",
            "Replaying absolute arrival times ignores the dependence of submittals on earlier "
            "completions and therefore overstates congestion; honouring the preceding-job / "
            "think-time fields lets the workload self-throttle, especially at and past saturation.",
            f"{r5.dependent_fraction:.0%} of jobs carry dependencies ({r5.sessions} sessions). "
            f"The open replay's mean wait exceeds the closed replay's at every load; at offered load 1.1 "
            f"it is {r5.divergence_at(1.1):.2f}x the closed value.",
            [_markdown_table(r5.rows())],
        )
    )

    # ------------------------------------------------------------------ E6
    r6 = e06_outages.run(jobs=1200, machine_size=128, load=0.7, mtbf_days=3.0, seed=6)
    sections.append(
        _section(
            "E6",
            "Outage impact and outage-aware scheduling",
            "Section 2.2 'Including outage information'",
            "Ignoring outages makes evaluations optimistic: unannounced failures kill and restart "
            "jobs (wasting capacity), announced-but-ignored maintenance kills jobs at the window "
            "start, and draining ahead of announced windows avoids (almost all of) those kills at "
            "some cost in wait time.",
            f"Unannounced failures killed {r6.outage_kills['unannounced-failures']} executions; "
            f"maintenance caught {r6.outage_kills['maintenance-blind']} jobs when ignored versus "
            f"{r6.outage_kills['maintenance-drained']} when drained.  (Note the metric subtlety: mean "
            f"slowdown can even improve under failures because restarts act like preemption of wide "
            f"long jobs — another instance of the paper's metric-choice warning.)",
            [_markdown_table(r6.rows())],
        )
    )

    # ------------------------------------------------------------------ E7
    r7 = e07_models.run(jobs=2000, machine_size=128, load=0.7, seed=7)
    ordering = r7.models_ordered_by_distance()
    sections.append(
        _section(
            "E7",
            "Workload models vs an archive-like reference",
            "Section 2.1 'Workload models'; reference [58] (Talby et al.)",
            "Measurement-based models (Lublin in particular) are representative of production "
            "workloads; naive guesswork models are not.",
            f"Distance ordering (closest first): {', '.join(ordering)}.  The measurement-based models "
            f"occupy the top of the ordering; the naive uniform baseline does not.",
            [_markdown_table(r7.rows())],
        )
    )

    # ------------------------------------------------------------------ E8
    r8 = e08_moldable.run(jobs=800, machine_size=128, loads=(0.5, 0.8), seed=8)
    sections.append(
        _section(
            "E8",
            "Moldable jobs and adaptive allocation",
            "Section 2.1 'Flexible job models' (Downey / Sevcik speedup models)",
            "Describing jobs by total work and a speedup function lets the scheduler pick the "
            "allocation; adaptivity pays off most under heavy load, where shrinking allocations "
            "keeps work flowing.",
            f"At load {max(r8.loads)} the adaptive policy's mean response is "
            f"{r8.adaptive_gain_over_rigid_easy(max(r8.loads)):.2f}x better than rigid EASY backfilling "
            f"(mean adaptive allocation {r8.mean_adaptive_allocation[max(r8.loads)]:.1f} processors).",
            [_markdown_table(r8.rows())],
        )
    )

    # ------------------------------------------------------------------ E9
    r9 = e09_grid.run(sites=4, machine_size=128, local_jobs_per_site=250, meta_jobs=120,
                      local_load=0.6, coallocation_fraction=0.3, seed=9)
    sections.append(
        _section(
            "E9",
            "Metacomputing: prediction, reservations, co-allocation",
            "Sections 3 and 4",
            "Meta-schedulers need queue-wait predictions to choose sites, and co-allocation "
            "requires advance reservations from the participating machine schedulers; without "
            "reservations co-allocated components starve and waste the cycles of the components "
            "that did start.",
            "Reservations let every (or nearly every) co-allocation finish, while the "
            "reservation-less runs leave co-allocations starving; the predictor table shows the "
            "state-based (profile) predictor competing with the history-based families, with the "
            "naive global mean as the baseline.",
            [_markdown_table(r9.rows()), _markdown_table(r9.predictor_rows())],
        )
    )

    # ------------------------------------------------------------------ E10
    r10 = e10_warmstones.run(seed=10)
    sections.append(
        _section(
            "E10",
            "WARMstones scorecard and scheduler selection",
            "Section 4.3",
            "Evaluating application schedulers over a micro-benchmark suite of annotated program "
            "graphs and canonical system representations yields an apples-to-apples scorecard, and "
            "an off-line table of results supports run-time selection of a good scheduler by "
            "closest match.",
            f"The scorecard covers {len(r10.entries)} (graph, system, mapper) combinations; "
            f"cost-aware mappers win on the heterogeneous systems while the choice barely matters on "
            f"the homogeneous cluster.  The closest-match lookup recommends a mapper within "
            f"{r10.lookup_regret:.2f}x of the exhaustive best for a held-out application.",
            [_markdown_table(r10.winner_rows())],
        )
    )

    header = "\n".join(
        [
            "# EXPERIMENTS — paper expectation vs. measured outcome",
            "",
            "Reproduction of Chapin et al., *Benchmarks and Standards for the Evaluation of",
            "Parallel Job Schedulers* (JSSPP/IPPS 1999).  The paper is a standards and",
            "methodology paper: it has one figure (the scheduling-entity hierarchy) and no",
            "numeric tables, so each experiment below regenerates either a paper artifact",
            "directly (E1-E2) or an evaluation the paper prescribes, with the expected shape",
            "taken from the paper's text and the prior work it cites (see DESIGN.md for the",
            "full experiment index).  Absolute numbers come from this repository's synthetic",
            "workloads and simulators and are not expected to match any particular testbed;",
            "the *shapes* are.",
            "",
            "Regenerate this file with `python -m repro.experiments.report > EXPERIMENTS.md`;",
            "the same experiments (same scales, same seeds) back `pytest benchmarks/ --benchmark-only`.",
            "",
        ]
    )
    return header + "\n" + "\n".join(sections)


if __name__ == "__main__":
    sys.stdout.write(generate_report())
