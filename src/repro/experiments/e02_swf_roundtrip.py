"""E2 — SWF conformance: parse → validate → write → re-parse round trip.

Section 2.3 defines the format; the conformance experiment checks, for every
synthetic archive trace, that

* the generated trace passes the consistency rules (is "clean"),
* writing and re-parsing reproduces every field of every job exactly,
* anonymization keeps the id spaces dense (1..N), and
* the parser and validator agree on the number of jobs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.swf import (
    anonymize_workload,
    parse_swf_text,
    summarize,
    validate,
    write_swf_text,
)
from repro.data import archive_names, synthetic_archive

__all__ = ["RoundTripResult", "run"]


@dataclass
class RoundTripResult:
    """Per-archive conformance outcomes."""

    archives: List[str]
    jobs: Dict[str, int]
    clean: Dict[str, bool]
    round_trip_exact: Dict[str, bool]
    dense_ids: Dict[str, bool]
    offered_load: Dict[str, float]

    @property
    def all_pass(self) -> bool:
        return all(self.clean.values()) and all(self.round_trip_exact.values()) and all(
            self.dense_ids.values()
        )

    def rows(self) -> List[Dict[str, object]]:
        return [
            {
                "archive": name,
                "jobs": self.jobs[name],
                "clean": self.clean[name],
                "round_trip_exact": self.round_trip_exact[name],
                "dense_ids": self.dense_ids[name],
                "offered_load": round(self.offered_load[name], 3),
            }
            for name in self.archives
        ]


def run(jobs_per_archive: int = 2500, seed: int = 11) -> RoundTripResult:
    """Run the conformance checks over every synthetic archive."""
    names = archive_names()
    jobs: Dict[str, int] = {}
    clean: Dict[str, bool] = {}
    exact: Dict[str, bool] = {}
    dense: Dict[str, bool] = {}
    load: Dict[str, float] = {}
    for name in names:
        workload = synthetic_archive(name, jobs=jobs_per_archive, seed=seed)
        jobs[name] = len(workload)
        clean[name] = validate(workload).is_clean
        text = write_swf_text(workload)
        reparsed = parse_swf_text(text, name=workload.name)
        exact[name] = reparsed.jobs == workload.jobs and len(reparsed.header) == len(
            workload.header
        )
        anonymized = anonymize_workload(workload)
        users = anonymized.users()
        groups = anonymized.groups()
        executables = anonymized.executables()
        dense[name] = (
            users == list(range(1, len(users) + 1))
            and groups == list(range(1, len(groups) + 1))
            and executables == list(range(1, len(executables) + 1))
        )
        load[name] = workload.offered_load()
    return RoundTripResult(
        archives=names,
        jobs=jobs,
        clean=clean,
        round_trip_exact=exact,
        dense_ids=dense,
        offered_load=load,
    )
