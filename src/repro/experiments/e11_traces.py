"""E11 — Trace-catalog replay: load-varied catalog traces through the space roster.

The paper's methodology (Section 2.1) evaluates schedulers on production
workload logs replayed at varied offered loads.  This experiment is that
methodology through the trace catalog end to end: each catalog trace is
load-rescaled by the transformation pipeline (``trace:<name>,load=L``),
materialized through the content-addressed cache, and replayed through
FCFS and EASY backfilling.

Beyond the table itself, the experiment asserts the two properties the
trace subsystem promises:

* **content addressing** — every (trace, load) cell reports the digest its
  workload materialized from, and re-deriving the digest from the spec
  string reproduces it exactly;
* **methodological continuity** — backfilling's advantage over FCFS on
  bounded slowdown holds on trace replays just as it does on model
  workloads (E3), and grows with offered load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.api import Scenario, run_many
from repro.metrics import MetricsReport
from repro.traces import trace_from_spec

__all__ = ["TraceReplayResult", "run"]

#: Catalog traces replayed by default (two archives with contrasting job mixes).
DEFAULT_TRACES = ("ctc-sp2", "nasa-ipsc")

#: Offered loads of the replay (moderate and near-saturation).
DEFAULT_LOADS = (0.7, 1.0)

POLICIES = ("fcfs", "easy")


@dataclass
class TraceReplayResult:
    """Per-(trace, load) digests and scheduling reports."""

    #: (trace key, load) cells in run order
    cells: List[Tuple[str, float]]
    #: cell -> full trace spec string
    specs: Dict[Tuple[str, float], str]
    #: cell -> content digest of the materialized trace
    digests: Dict[Tuple[str, float], str]
    #: cell -> policy -> metrics
    reports: Dict[Tuple[str, float], Dict[str, MetricsReport]]

    def rows(self) -> List[Dict[str, object]]:
        rows = []
        for cell in self.cells:
            trace, load = cell
            for policy in POLICIES:
                report = self.reports[cell][policy]
                rows.append(
                    {
                        "trace": trace,
                        "load": load,
                        "digest": self.digests[cell][:12],
                        "policy": policy,
                        "mean_wait": round(report.mean_wait, 1),
                        "mean_bounded_slowdown": round(report.mean_bounded_slowdown, 2),
                        "utilization": round(report.utilization, 3),
                    }
                )
        return rows

    def backfill_speedup(self, trace: str, load: float) -> float:
        """FCFS over EASY mean bounded slowdown (>1: backfilling wins)."""
        cell = self.reports[(trace, load)]
        easy = max(cell["easy"].mean_bounded_slowdown, 1.0)
        return cell["fcfs"].mean_bounded_slowdown / easy


def run(
    traces: Sequence[str] = DEFAULT_TRACES,
    loads: Sequence[float] = DEFAULT_LOADS,
    jobs: int = 400,
    seed: int = 11,
    workers: int = 0,
) -> TraceReplayResult:
    """Replay each catalog trace at each load through FCFS and EASY."""
    cells = [(trace, float(load)) for trace in traces for load in loads]
    specs = {
        (trace, load): f"trace:{trace},jobs={jobs},seed={seed},load={load:g}"
        for trace, load in cells
    }
    digests = {cell: trace_from_spec(spec).digest for cell, spec in specs.items()}

    scenarios = [
        Scenario(workload=specs[cell], policy=policy, name=f"{cell[0]}@{cell[1]:g}/{policy}")
        for cell in cells
        for policy in POLICIES
    ]
    results = run_many(scenarios, workers=workers or None)

    reports: Dict[Tuple[str, float], Dict[str, MetricsReport]] = {}
    index = 0
    for cell in cells:
        reports[cell] = {}
        for policy in POLICIES:
            reports[cell][policy] = results[index].report
            index += 1

    return TraceReplayResult(cells=cells, specs=specs, digests=digests, reports=reports)
