"""Synthetic stand-ins for the Parallel Workloads Archive traces.

The paper's evaluation methodology is anchored to four production logs
(Section 2.1): the NASA Ames iPSC/860, the CTC SP2, the SDSC Paragon, and the
LANL CM-5.  The archive is not reachable from this offline environment, so
this module generates *synthetic archive traces*: SWF workloads whose machine
sizes, size distributions, runtime scales, interactive fractions, and header
descriptions follow the published summary characteristics of those systems.

These are substitutes, not the real logs (DESIGN.md records the
substitution).  What matters for the reproduction is that (a) every generated
trace is a valid SWF file exercised through the same parser / validator /
simulator code path a real archive trace would be, and (b) the four traces
differ from each other along the dimensions the originals do (size, job mix,
interactivity), so cross-trace comparisons remain meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.core.swf.fields import MISSING
from repro.core.swf.header import SWFHeader
from repro.core.swf.workload import Workload
from repro.simulation.distributions import make_rng
from repro.workloads.feitelson96 import Feitelson96Model
from repro.workloads.jann97 import Jann97Model
from repro.workloads.lublin99 import Lublin99Model

__all__ = [
    "ArchiveSpec",
    "ARCHIVES",
    "ARCHIVE_EPOCH",
    "DEFAULT_ARCHIVE_SEED",
    "synthetic_archive",
    "archive_names",
]

#: Fixed UnixStartTime stamped into every generated archive header:
#: 1999-01-01T00:00:00 UTC, the year of the source paper.  A wall-clock
#: timestamp here would give identical (name, jobs, seed) specs different
#: bytes, which would break the content-addressed trace catalog.
ARCHIVE_EPOCH = 915148800

#: Seed used when the caller passes ``seed=None``.  Canonicalizing the
#: default (instead of drawing OS entropy) makes every spec — including the
#: default one — produce byte-identical SWF files across runs and machines.
DEFAULT_ARCHIVE_SEED = 0


@dataclass(frozen=True)
class ArchiveSpec:
    """Descriptive parameters of one synthetic archive trace."""

    key: str
    computer: str
    installation: str
    machine_size: int
    interactive_fraction: float
    memory_per_node_kb: int
    power_of_two_only: bool
    min_allocation: int
    mean_interarrival: float
    offered_load: float
    description: str


ARCHIVES: Dict[str, ArchiveSpec] = {
    "nasa-ipsc": ArchiveSpec(
        key="nasa-ipsc",
        computer="Intel iPSC/860 (synthetic)",
        installation="NASA Ames Research Center (synthetic stand-in)",
        machine_size=128,
        interactive_fraction=0.55,
        memory_per_node_kb=8 * 1024,
        power_of_two_only=True,
        min_allocation=1,
        mean_interarrival=700.0,
        offered_load=0.47,
        description="Hypercube: power-of-two sub-cubes only, many short interactive jobs.",
    ),
    "ctc-sp2": ArchiveSpec(
        key="ctc-sp2",
        computer="IBM SP2 (synthetic)",
        installation="Cornell Theory Center (synthetic stand-in)",
        machine_size=430,
        interactive_fraction=0.02,
        memory_per_node_kb=128 * 1024,
        power_of_two_only=False,
        min_allocation=1,
        mean_interarrival=1100.0,
        offered_load=0.66,
        description="Batch-dominated SP2 workload with arbitrary (non-power-of-two) sizes.",
    ),
    "sdsc-paragon": ArchiveSpec(
        key="sdsc-paragon",
        computer="Intel Paragon (synthetic)",
        installation="San Diego Supercomputer Center (synthetic stand-in)",
        machine_size=416,
        interactive_fraction=0.15,
        memory_per_node_kb=32 * 1024,
        power_of_two_only=False,
        min_allocation=1,
        mean_interarrival=1000.0,
        offered_load=0.71,
        description="Mesh-partitioned Paragon workload, mixed batch and interactive queues.",
    ),
    "lanl-cm5": ArchiveSpec(
        key="lanl-cm5",
        computer="Thinking Machines CM-5 (synthetic)",
        installation="Los Alamos National Laboratory (synthetic stand-in)",
        machine_size=1024,
        interactive_fraction=0.1,
        memory_per_node_kb=32 * 1024,
        power_of_two_only=True,
        min_allocation=32,
        mean_interarrival=1400.0,
        offered_load=0.74,
        description="CM-5 workload: allocations in power-of-two multiples of 32 nodes, "
        "with per-job memory data (the trace behind the memory-usage study).",
    ),
}


def archive_names() -> List[str]:
    """Keys of the available synthetic archives."""
    return list(ARCHIVES)


def _base_model(spec: ArchiveSpec) -> Lublin99Model:
    """The generator behind every synthetic archive is a tuned Lublin model."""
    return Lublin99Model(
        machine_size=spec.machine_size,
        mean_interarrival=spec.mean_interarrival,
        interactive_probability=spec.interactive_fraction,
        power_of_two_probability=0.95 if spec.power_of_two_only else 0.6,
    )


def synthetic_archive(name: str, jobs: int = 5000, seed: Optional[int] = None) -> Workload:
    """Generate the named synthetic archive trace.

    Parameters
    ----------
    name:
        One of :func:`archive_names` (e.g. ``"ctc-sp2"``).
    jobs:
        Number of jobs to generate.
    seed:
        RNG seed; the same (name, jobs, seed) triple always yields the same
        trace — byte-identical through the SWF writer — so experiments and
        the trace catalog can reference traces reproducibly.  ``None`` is
        canonicalized to :data:`DEFAULT_ARCHIVE_SEED` rather than drawing
        entropy, so even the default spec is content-stable.
    """
    if name not in ARCHIVES:
        raise KeyError(f"unknown archive {name!r}; available: {sorted(ARCHIVES)}")
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if seed is None:
        seed = DEFAULT_ARCHIVE_SEED
    spec = ARCHIVES[name]
    rng = make_rng(seed)
    workload = _base_model(spec).generate(jobs, seed=seed)

    adjusted = []
    for job in workload:
        size = job.allocated_processors
        if spec.power_of_two_only and size != MISSING:
            size = 1 << max(0, int(round(np.log2(max(size, 1)))))
        if spec.min_allocation > 1 and size != MISSING:
            size = max(spec.min_allocation, int(np.ceil(size / spec.min_allocation)) * spec.min_allocation)
        size = min(size, spec.machine_size) if size != MISSING else size
        memory = MISSING
        if spec.memory_per_node_kb:
            memory = int(rng.uniform(0.05, 0.8) * spec.memory_per_node_kb)
        status = 1 if rng.random() > 0.06 else 0  # a few percent of jobs are killed
        adjusted.append(
            job.replace(
                allocated_processors=size,
                requested_processors=size,
                used_memory=memory,
                requested_memory=memory if memory == MISSING else int(memory * rng.uniform(1.0, 1.5)),
                status=status,
                # Real traces record the wait the original scheduler produced;
                # give a plausible non-negative wait so derived fields exist.
                wait_time=int(rng.exponential(600.0)),
            )
        )

    result = Workload(adjusted, SWFHeader(), name=name).sorted_by_submit().renumbered()
    # Rescale arrivals so the trace matches the published offered load of the
    # machine it stands in for (the size adjustments above change the area).
    current = result.offered_load(spec.machine_size)
    if current > 0:
        result = result.scale_load(spec.offered_load / current, name=name)
    # The header is attached last so the EndTime it derives reflects the
    # trace's final (post-rescale) span; its timestamps are fixed constants,
    # keeping identical specs byte-identical (see ARCHIVE_EPOCH).
    header = SWFHeader.standard(
        computer=spec.computer,
        installation=spec.installation,
        max_nodes=spec.machine_size,
        max_runtime=7 * 24 * 3600,
        max_memory=spec.memory_per_node_kb,
        conversion="repro.data.archives synthetic generator",
        acknowledge="Synthetic stand-in for a Parallel Workloads Archive trace (see DESIGN.md)",
        partitions=spec.description,
        notes=[
            f"Synthetic archive trace modelled on the {spec.installation} log.",
            "This is NOT the original archive data; see DESIGN.md substitution table.",
        ],
        unix_start_time=ARCHIVE_EPOCH,
        duration_seconds=result.span(),
    )
    return Workload(result.jobs, header, name=name)
