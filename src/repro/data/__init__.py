"""Synthetic archive traces standing in for the Parallel Workloads Archive."""

from repro.data.archives import ARCHIVES, ArchiveSpec, archive_names, synthetic_archive

__all__ = ["ARCHIVES", "ArchiveSpec", "archive_names", "synthetic_archive"]
