"""Synthetic archive traces standing in for the Parallel Workloads Archive."""

from repro.data.archives import (
    ARCHIVE_EPOCH,
    ARCHIVES,
    DEFAULT_ARCHIVE_SEED,
    ArchiveSpec,
    archive_names,
    synthetic_archive,
)

__all__ = [
    "ARCHIVE_EPOCH",
    "ARCHIVES",
    "DEFAULT_ARCHIVE_SEED",
    "ArchiveSpec",
    "archive_names",
    "synthetic_archive",
]
