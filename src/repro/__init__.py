"""parsched-bench: benchmarks and standards for evaluating parallel job schedulers.

A reproduction of Chapin, Cirne, Feitelson, Jones, Leutenegger,
Schwiegelshohn, Smith & Talby, "Benchmarks and Standards for the Evaluation
of Parallel Job Schedulers" (IPPS/SPDP JSSPP 1999).

Top-level convenience imports cover the most common entry points; the
subpackages hold the full API:

* :mod:`repro.api` — the canonical front door: registries, spec strings,
  :class:`Scenario`, and the unified :func:`run` / :func:`run_many`,
* :mod:`repro.core` — the SWF and outage-log standards,
* :mod:`repro.workloads` — workload models (rigid, flexible, sessions),
* :mod:`repro.schedulers` — machine-scheduling policies,
* :mod:`repro.evaluation` — the simulation drivers and metric sweeps,
* :mod:`repro.metrics` — metrics, objectives, ranking comparison,
* :mod:`repro.grid` — metacomputing: sites, meta-schedulers, reservations,
* :mod:`repro.appsched` — program graphs and the WARMstones environment,
* :mod:`repro.data` — synthetic archive traces,
* :mod:`repro.experiments` — the E1..E10 experiment harnesses.
"""

from repro.api.registry import (
    make_model,
    make_scheduler,
    model_names,
    parse_spec,
    scheduler_names,
)
from repro.api.scenario import Scenario
from repro.api.runner import ScenarioResult, run, run_many
from repro.core.swf import (
    SWFHeader,
    SWFJob,
    Workload,
    parse_swf,
    parse_swf_text,
    validate,
    write_swf,
    write_swf_text,
)
from repro.core.outage import OutageLog, OutageRecord, OutageType, generate_outages
from repro.data import synthetic_archive
from repro.evaluation import compare_schedulers, simulate
from repro.metrics import ObjectiveFunction, compute_metrics, rank_schedulers
from repro.schedulers import (
    ConservativeBackfillScheduler,
    EasyBackfillScheduler,
    FCFSScheduler,
    simulate_gang,
)
from repro.workloads import (
    Downey97Model,
    Feitelson96Model,
    Jann97Model,
    Lublin99Model,
    SessionModel,
    UniformModel,
)

__version__ = "1.1.0"

__all__ = [
    "Scenario",
    "ScenarioResult",
    "run",
    "run_many",
    "make_scheduler",
    "make_model",
    "scheduler_names",
    "model_names",
    "parse_spec",
    "SWFHeader",
    "SWFJob",
    "Workload",
    "parse_swf",
    "parse_swf_text",
    "validate",
    "write_swf",
    "write_swf_text",
    "OutageLog",
    "OutageRecord",
    "OutageType",
    "generate_outages",
    "synthetic_archive",
    "compare_schedulers",
    "simulate",
    "ObjectiveFunction",
    "compute_metrics",
    "rank_schedulers",
    "FCFSScheduler",
    "EasyBackfillScheduler",
    "ConservativeBackfillScheduler",
    "simulate_gang",
    "Downey97Model",
    "Feitelson96Model",
    "Jann97Model",
    "Lublin99Model",
    "SessionModel",
    "UniformModel",
    "__version__",
]
