"""One ``run()`` entrypoint for every simulator, and ``run_many()`` for sweeps.

:func:`run` takes a :class:`~repro.api.scenario.Scenario`, materializes its
workload, builds its policy from the spec string, and dispatches to the right
simulator based on the policy class's declared ``mode``:

* ``"space"`` — the event-driven space-sharing driver
  (:func:`repro.evaluation.simulator.simulate`), covering FCFS, the priority
  family, backfilling, and moldable policies;
* ``"gang"``  — the fluid Ousterhout-matrix gang simulator
  (:func:`repro.schedulers.gang.simulate_gang`);
* ``"grid"``  — the multi-site metacomputing simulator
  (:class:`repro.grid.simulation.GridSimulation`), with the scenario workload
  replicated (re-seeded) per site and a synthetic meta-job stream layered on
  top.

Every mode produces a :class:`ScenarioResult` carrying the per-job
:class:`~repro.evaluation.results.SimulationResult` and the standard
:class:`~repro.metrics.basic.MetricsReport`, so sweeps, experiments, and the
CLI tabulate all simulators uniformly.

:func:`run_many` fans a list of scenarios out over ``multiprocessing``
workers; runs are independent and seeded, so parallel results match serial
results job-for-job.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.api.registry import (
    UnknownNameError,
    parse_spec,
    register_scheduler,
    scheduler_registry,
)
from repro.api.scenario import Scenario
from repro.bench.seeds import derive_seeds
from repro.core.outage.log import OutageLog, parse_outage_log
from repro.core.swf.parser import parse_swf
from repro.core.swf.workload import Workload
from repro.evaluation.results import SimulationResult
from repro.evaluation.simulator import simulate
from repro.metrics.basic import MetricsReport, compute_metrics
from repro.obs.trace import (
    Tracer,
    current_span_id,
    current_tracer,
    trace_scope,
    trace_span,
)
from repro.schedulers.base import Scheduler
from repro.schedulers.gang import simulate_gang
from repro.util import looks_like_swf_path as _looks_like_path

__all__ = [
    "ScenarioResult",
    "GridPolicy",
    "run",
    "run_many",
    "resolve_workload",
    "resolve_workload_shared",
]

#: Offset added to the scenario seed for the grid meta-job stream, so local
#: workloads and the meta stream never share a seed.
_META_SEED_OFFSET = 1000


@dataclass
class ScenarioResult:
    """What one scenario produced: per-job results plus the standard metrics."""

    scenario: Scenario
    result: SimulationResult
    report: MetricsReport
    #: full :class:`repro.grid.simulation.GridResult` for grid-mode policies
    grid: Optional[Any] = None
    #: wall-clock phase breakdown of this run (``materialize_seconds``,
    #: ``simulate_seconds``, ``metrics_seconds``).  Non-deterministic by
    #: nature, so it rides here — never inside :attr:`report`, whose content
    #: feeds the content-addressed result store.
    timings: Dict[str, float] = field(default_factory=dict)
    #: serialized trace spans recorded by a ``run_many`` worker process,
    #: present only when the parent had an active tracer; the parent grafts
    #: these into its own timeline and drops the copy.
    trace_spans: Optional[List[Dict[str, Any]]] = None

    @property
    def scheduler(self) -> str:
        return self.result.scheduler_name

    def row(self) -> Dict[str, Any]:
        """One flat table row (scenario label + the standard metric columns)."""
        return {"scenario": self.scenario.label, **self.report.as_dict()}


# ----------------------------------------------------------------------
# grid-mode policy
# ----------------------------------------------------------------------
@register_scheduler("grid")
class GridPolicy:
    """Metacomputing configuration constructible from a spec string.

    ``"grid:meta=earliest-start,sites=4,reservations=true,local=easy"``
    replays the scenario workload as each site's local stream (re-seeded per
    site when the workload is a model) and layers a synthetic meta-job stream
    on top.  The three standard queue-wait predictors are always scored.
    """

    mode = "grid"

    def __init__(
        self,
        meta: str = "earliest-start",
        sites: int = 4,
        reservations: bool = False,
        local: str = "easy",
        meta_jobs: int = 120,
        coallocation_fraction: float = 0.3,
        speed_step: float = 0.1,
        negotiation_slack: float = 60.0,
    ) -> None:
        if sites < 1:
            raise ValueError("sites must be >= 1")
        self.meta = meta
        self.sites = sites
        self.reservations = bool(reservations)
        self.local = local
        self.meta_jobs = meta_jobs
        self.coallocation_fraction = coallocation_fraction
        self.speed_step = speed_step
        self.negotiation_slack = negotiation_slack

    @property
    def name(self) -> str:
        suffix = "reservations" if self.reservations else "no-reservations"
        return f"grid:{self.meta}/{suffix}"


# ----------------------------------------------------------------------
# workload materialization
# ----------------------------------------------------------------------


def resolve_workload(scenario: Scenario, seed: Optional[int] = None) -> Workload:
    """Materialize the scenario's workload spec, including its load scaling.

    ``seed`` overrides the scenario seed (used by the grid runner to re-seed
    per site); a ``seed=`` kwarg inside the workload spec wins over both.
    """
    return _scale_to_load(
        _resolve_spec(scenario, seed), scenario.load, scenario.machine_size
    )


def _resolve_spec(scenario: Scenario, seed: Optional[int] = None) -> Workload:
    """Materialize the workload spec itself (without load scaling)."""
    spec = scenario.workload
    if spec.startswith("trace:"):
        # Catalog traces materialize through the content-addressed trace
        # cache: the digest pins source and pipeline, so repeated runs (and
        # run_many workers) parse one canonical SWF file instead of
        # regenerating, and are bit-for-bit identical either way.
        from repro.traces import trace_for_scenario

        return trace_for_scenario(scenario, seed=seed).materialize()
    if spec.startswith("swf:"):
        return parse_swf(spec[len("swf:"):])
    if _looks_like_path(spec):
        return parse_swf(spec)

    name, kwargs = parse_spec(spec)
    jobs = kwargs.pop("jobs", scenario.jobs)
    gen_seed = kwargs.pop("seed", seed if seed is not None else scenario.seed)

    from repro.data.archives import ARCHIVES, synthetic_archive

    if name in ARCHIVES:
        if kwargs:
            raise ValueError(
                f"archive workload {name!r} accepts only jobs/seed, "
                f"got {sorted(kwargs)}"
            )
        return synthetic_archive(name, jobs=jobs, seed=gen_seed)

    try:
        from repro.api.registry import model_registry

        factory = model_registry.get(name)
    except UnknownNameError as exc:
        # Re-raise with archives folded into the known-name set.
        raise UnknownNameError(
            "workload", name, list(model_registry.names()) + sorted(ARCHIVES)
        ) from exc
    if scenario.machine_size is not None:
        kwargs.setdefault("machine_size", scenario.machine_size)
    model = factory(**kwargs)
    return model.generate(jobs, seed=gen_seed)


def _scale_to_load(
    workload: Workload, load: Optional[float], machine_size: Optional[int]
) -> Workload:
    if load is None:
        return workload
    base = workload.offered_load(machine_size)
    if base <= 0:
        raise ValueError("the workload has no measurable offered load to rescale")
    return workload.scale_load(load / base, name=f"{workload.name}@{load:.2f}")


#: Process-wide memo of *unscaled* materialized workloads, keyed by every
#: input ``_resolve_spec`` reads.  For ``trace:`` specs the spec pins the
#: content digest, so this is effectively per-digest: a worker process
#: draining many units over one trace parses the canonical SWF once and
#: shares the Workload object across runs (safe — ``run()`` only rescales
#: through ``scale_load``, which copies).
_SHARED_WORKLOADS: Dict[tuple, Workload] = {}

#: Memo capacity.  Materialized workloads can be large (100k-job traces), so
#: a long-lived process (the serve daemon, a worker draining a mixed queue)
#: must not accumulate every workload it ever touched; eviction is FIFO,
#: which matches how suites walk their contexts in order.
_SHARED_WORKLOADS_MAX = 16


def resolve_workload_shared(scenario: Scenario) -> Workload:
    """Memoized unscaled materialization, shared across runs in this process.

    Returns the workload resolved with ``load=None``, suitable as a
    ``run()``/``run_many()`` override: ``run()`` then applies the scenario's
    load scaling exactly as it would from the spec, so results are
    bit-identical to an unshared materialization.  The suite runner and the
    distributed worker both draw from this memo, so replications differing
    only in policy (or in load) never re-parse their workload.
    """
    key = (scenario.workload, scenario.jobs, scenario.machine_size, scenario.seed)
    workload = _SHARED_WORKLOADS.get(key)
    if workload is None:
        workload = resolve_workload(scenario.with_(load=None))
        while len(_SHARED_WORKLOADS) >= _SHARED_WORKLOADS_MAX:
            _SHARED_WORKLOADS.pop(next(iter(_SHARED_WORKLOADS)))
        _SHARED_WORKLOADS[key] = workload
    return workload


def _materialize(
    scenario: Scenario,
    override: Optional[Workload],
    seed: Optional[int] = None,
) -> Workload:
    if override is not None:
        return _scale_to_load(override, scenario.load, scenario.machine_size)
    return resolve_workload(scenario, seed=seed)


def _resolve_outages(
    scenario: Scenario, override: Optional[OutageLog]
) -> Optional[OutageLog]:
    if override is not None:
        return override
    if scenario.outages is None:
        return None
    return parse_outage_log(scenario.outages)


# ----------------------------------------------------------------------
# the entrypoint
# ----------------------------------------------------------------------
def run(
    scenario: Scenario,
    *,
    workload: Optional[Workload] = None,
    policy: Optional[Any] = None,
    outages: Optional[OutageLog] = None,
) -> ScenarioResult:
    """Run one scenario to completion and return its results.

    The keyword overrides are the escape hatch for objects that cannot be
    expressed as spec strings: an already-materialized :class:`Workload`
    (sweeps resolve once and reuse it across policies), a policy instance
    carrying non-serializable state (e.g. a moldable-job table), or an
    in-memory :class:`OutageLog`.  Overridden runs execute identically but
    lose the scenario's from-spec reproducibility.
    """
    with trace_span(
        "run.scenario", scenario=scenario.label, policy=scenario.policy
    ):
        if policy is None:
            name, _ = parse_spec(scenario.policy)
            factory = scheduler_registry.get(name)
            mode = getattr(factory, "mode", "space")
            policy = scheduler_registry.create(scenario.policy)
        else:
            mode = getattr(policy, "mode", "space")

        if mode != "space":
            # Outage replay and closed-feedback replay are features of the
            # space-sharing driver only; dropping them silently would let a
            # user believe a gang/grid run honoured conditions it never saw.
            unsupported = []
            if scenario.outages is not None or outages is not None:
                unsupported.append("outages")
            if scenario.honor_dependencies:
                unsupported.append("honor_dependencies")
            if unsupported:
                raise ValueError(
                    f"policy {scenario.policy!r} runs on the {mode!r} simulator, "
                    f"which does not support: {', '.join(unsupported)}"
                )

        if mode == "grid":
            return _run_grid(scenario, policy, workload)

        timings: Dict[str, float] = {}
        phase_started = time.perf_counter()
        with trace_span("run.materialize", workload=scenario.workload):
            materialized = _materialize(scenario, workload)
        timings["materialize_seconds"] = time.perf_counter() - phase_started
        phase_started = time.perf_counter()
        with trace_span("run.simulate", mode=mode):
            if mode == "gang":
                result = simulate_gang(
                    materialized,
                    machine_size=scenario.machine_size,
                    max_slots=policy.slots,
                    context_switch_overhead=policy.overhead,
                )
            elif mode == "space":
                if not isinstance(policy, Scheduler):
                    raise TypeError(
                        f"policy {scenario.policy!r} resolved to {policy!r}, "
                        "which is not a space-sharing Scheduler"
                    )
                result = simulate(
                    materialized,
                    policy,
                    machine_size=scenario.machine_size,
                    outages=_resolve_outages(scenario, outages),
                    honor_dependencies=scenario.honor_dependencies,
                    restart_failed_jobs=scenario.restart_failed_jobs,
                    max_restarts=scenario.max_restarts,
                )
            else:
                raise ValueError(
                    f"policy {scenario.policy!r} declares unknown mode {mode!r}"
                )
        timings["simulate_seconds"] = time.perf_counter() - phase_started

        phase_started = time.perf_counter()
        with trace_span("run.metrics"):
            report = compute_metrics(result, tau=scenario.tau)
        timings["metrics_seconds"] = time.perf_counter() - phase_started
        return ScenarioResult(
            scenario=scenario,
            result=result,
            report=report,
            timings=timings,
        )


def _run_grid(
    scenario: Scenario, policy: GridPolicy, workload: Optional[Workload]
) -> ScenarioResult:
    """Dispatch a grid-mode scenario to the multi-site simulator."""
    from repro.grid.metaschedulers import (
        EarliestStartMetaScheduler,
        LeastLoadedMetaScheduler,
    )
    from repro.grid.prediction import (
        CategoryMeanPredictor,
        MeanWaitPredictor,
        ProfilePredictor,
    )
    from repro.grid.simulation import GridSimulation
    from repro.grid.site import Site
    from repro.grid.workload import generate_meta_jobs

    timings: Dict[str, float] = {}
    phase_started = time.perf_counter()
    meta_classes = {
        "least-loaded": LeastLoadedMetaScheduler,
        "earliest-start": EarliestStartMetaScheduler,
    }
    try:
        meta_scheduler = meta_classes[policy.meta]()
    except KeyError:
        raise UnknownNameError("meta-scheduler", policy.meta, list(meta_classes)) from None

    base_seed = scenario.seed if scenario.seed is not None else 0
    site_seeds = derive_seeds(base_seed, policy.sites)
    sites = []
    for i in range(policy.sites):
        # Each site gets its own local stream: re-seed the model per site, or
        # replay the same trace everywhere when the workload is materialized.
        local = _materialize(
            scenario, workload, seed=None if workload is not None else site_seeds[i]
        )
        machine_size = scenario.machine_size or local.header.max_nodes or local.max_processors()
        sites.append(
            Site(
                name=f"site-{i + 1}",
                machine_size=int(machine_size),
                scheduler=scheduler_registry.create(policy.local, outage_aware=True),
                local_workload=local,
                speed=1.0 + policy.speed_step * i,
            )
        )
    machine_size = sites[0].machine_size
    meta_stream = generate_meta_jobs(
        policy.meta_jobs,
        coallocation_fraction=policy.coallocation_fraction,
        max_components=min(3, policy.sites),
        max_component_processors=max(1, machine_size // 2),
        seed=base_seed + _META_SEED_OFFSET,
    )
    simulation = GridSimulation(
        sites,
        meta_stream,
        meta_scheduler,
        use_reservations=policy.reservations,
        negotiation_slack=policy.negotiation_slack,
        predictors={
            "mean-wait": MeanWaitPredictor,
            "category-mean": CategoryMeanPredictor,
            "profile": ProfilePredictor,
        },
    )
    timings["materialize_seconds"] = time.perf_counter() - phase_started
    phase_started = time.perf_counter()
    with trace_span("run.simulate", mode="grid"):
        grid_result = simulation.run()
    timings["simulate_seconds"] = time.perf_counter() - phase_started

    merged_jobs = sorted(
        (job for site in grid_result.site_results.values() for job in site.jobs),
        key=lambda j: (j.job_id, j.site or ""),
    )
    result = SimulationResult(
        scheduler_name=policy.name,
        machine_size=sum(s.machine_size for s in sites),
        jobs=merged_jobs,
        metadata={
            "sites": policy.sites,
            "meta_jobs_done": len(grid_result.meta_results),
            "meta_unfinished": len(grid_result.unfinished_meta_jobs),
            "mean_meta_wait": grid_result.mean_meta_wait(),
            "wasted_node_seconds": grid_result.total_wasted_node_seconds(),
        },
    )
    phase_started = time.perf_counter()
    report = compute_metrics(result, tau=scenario.tau)
    timings["metrics_seconds"] = time.perf_counter() - phase_started
    return ScenarioResult(
        scenario=scenario,
        result=result,
        report=report,
        grid=grid_result,
        timings=timings,
    )


# ----------------------------------------------------------------------
# fan-out
# ----------------------------------------------------------------------
def _broadcast(value: Any, count: int, what: str) -> List[Any]:
    if isinstance(value, (list, tuple)):
        if len(value) != count:
            raise ValueError(f"{what} list length {len(value)} != scenarios {count}")
        return list(value)
    return [value] * count


def _run_task(task) -> ScenarioResult:
    scenario, workload, outages, traced = task
    if not traced:
        return run(scenario, workload=workload, outages=outages)
    # Worker processes cannot see the parent's contextvar scope; record into
    # a fresh local tracer and ship the serialized spans home with the
    # result, where run_many grafts them into the parent timeline.
    tracer = Tracer()
    with trace_scope(tracer):
        result = run(scenario, workload=workload, outages=outages)
    result.trace_spans = tracer.serialize()
    return result


def _run_indexed(indexed_task) -> tuple:
    index, task = indexed_task
    return index, _run_task(task)


def _prewarm_traces(tasks) -> None:
    """Materialize every distinct ``trace:`` workload once before forking.

    Without this, a cold trace cache makes every worker process rebuild and
    rewrite the same canonical SWF file (atomic writes keep that *correct*,
    but the build cost multiplies by the worker count).  Warming the cache in
    the parent means workers only ever read.  Scenarios carrying an explicit
    workload override never re-materialize, so they are skipped.
    """
    cache = None
    warmed: set = set()
    for scenario, workload, *_rest in tasks:
        if workload is not None or not scenario.workload.startswith("trace:"):
            continue
        from repro.traces import TraceCache, trace_for_scenario

        trace = trace_for_scenario(scenario)
        if trace is None or trace.digest in warmed:
            continue
        warmed.add(trace.digest)
        if cache is None:
            cache = TraceCache()
        if trace.digest not in cache:
            trace.materialize(cache=cache)


def run_many(
    scenarios: Sequence[Scenario],
    workers: Optional[int] = None,
    *,
    workloads: Union[None, Workload, Sequence[Optional[Workload]]] = None,
    outages: Union[None, OutageLog, Sequence[Optional[OutageLog]]] = None,
    on_result: Optional[Callable[[int, ScenarioResult], None]] = None,
) -> List[ScenarioResult]:
    """Run scenarios serially or across ``workers`` processes, in input order.

    ``workloads``/``outages`` optionally pre-materialize inputs: a single
    object is shared by every scenario, a sequence is matched element-wise.
    Runs are independent and fully seeded, so ``workers=N`` reproduces the
    serial per-job results bit-for-bit.

    ``on_result(index, result)`` is called in the parent process as each
    scenario finishes — in completion order under ``workers=N``, which is
    what incremental progress reporting (the serve daemon, long suites)
    needs.  The returned list is always in input order regardless.
    """
    scenarios = list(scenarios)
    serial = workers is None or workers <= 1 or len(scenarios) == 1
    tracer = current_tracer()
    # Serial runs record straight into the active scope (run() emits spans
    # through the contextvar); only pool workers need the record-and-graft
    # round trip, so the traced flag is set for the parallel path alone.
    traced = tracer is not None and not serial
    tasks = list(
        zip(
            scenarios,
            _broadcast(workloads, len(scenarios), "workloads"),
            _broadcast(outages, len(scenarios), "outages"),
            [traced] * len(scenarios),
        )
    )
    if not tasks:
        return []
    if serial:
        results = []
        for index, task in enumerate(tasks):
            result = _run_task(task)
            results.append(result)
            if on_result is not None:
                on_result(index, result)
        return results
    _prewarm_traces(tasks)
    graft_parent = current_span_id()
    results_by_index: List[Optional[ScenarioResult]] = [None] * len(tasks)
    with multiprocessing.Pool(processes=min(workers, len(tasks))) as pool:
        for index, result in pool.imap_unordered(
            _run_indexed, list(enumerate(tasks)), chunksize=1
        ):
            if traced and result.trace_spans:
                tracer.graft(result.trace_spans, parent_id=graft_parent)
                result.trace_spans = None
            results_by_index[index] = result
            if on_result is not None:
                on_result(index, result)
    return results_by_index
