"""The Scenario: one declarative description of "run workload W through policy P under conditions C".

Everything the evaluation methodology varies — workload source, machine
size, policy, outages, feedback replay, load scaling, the bounded-slowdown
threshold, the seed — lives in one frozen dataclass that round-trips through
JSON exactly.  A sweep is a list of scenarios; a config file is a list of
scenario dicts; a distributed run is the same list shipped to workers.

The ``workload`` field is a spec string naming either

* a registered workload model (``"lublin99"``, ``"lublin99:jobs=5000,seed=1"``),
* a synthetic archive (``"ctc-sp2"``),
* an SWF trace on disk (``"swf:path/to/trace.swf"``, or any string that looks
  like a path — contains a separator or ends in ``.swf``), or
* a catalog trace with an optional transformation pipeline
  (``"trace:ctc-sp2,load=1.2,slice=0:7d"`` — see :mod:`repro.traces`):
  content-addressed, cached on disk, and seed-deterministic end to end.

The ``policy`` field is a scheduler spec string (``"easy"``, ``"sjf:strict=true"``,
``"gang:slots=3"``, ``"grid:meta=earliest-start,reservations=true"``); the
policy's registered class declares which simulator :func:`repro.api.runner.run`
dispatches to.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, fields
from typing import Any, Dict, Optional

__all__ = ["Scenario"]


@dataclass(frozen=True)
class Scenario:
    """One evaluation run, fully described by JSON-serializable values."""

    #: workload spec string: model/archive spec or an SWF trace path
    workload: str
    #: scheduler spec string; the registered class declares the simulator mode
    policy: str = "easy"
    #: machine size (defaults to the workload header's MaxNodes)
    machine_size: Optional[int] = None
    #: jobs to generate when the workload is a model or archive
    jobs: int = 2000
    #: target offered load; the workload is rescaled to hit it (None = as-is)
    load: Optional[float] = None
    #: seed for workload generation (models and archives)
    seed: Optional[int] = None
    #: path to a standard-format outage log (None = no outages)
    outages: Optional[str] = None
    #: closed replay: dependent jobs are submitted think-time seconds after
    #: their predecessor completes instead of at their absolute submit time
    honor_dependencies: bool = False
    #: whether jobs killed by an outage are re-queued
    restart_failed_jobs: bool = True
    #: restart budget per job before it is recorded as killed
    max_restarts: int = 10
    #: bounded-slowdown interactivity threshold (seconds)
    tau: float = 10.0
    #: optional human-readable label used in tables (defaults to the specs)
    name: Optional[str] = None

    @property
    def label(self) -> str:
        """Table label: the explicit name, or ``workload/policy``."""
        return self.name if self.name else f"{self.workload}/{self.policy}"

    def with_(self, **changes: Any) -> "Scenario":
        """A copy with the given fields replaced (sweep construction helper)."""
        return dataclasses.replace(self, **changes)

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Flat JSON-serializable dict; inverse of :meth:`from_dict`."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Scenario":
        """Rebuild from :meth:`to_dict` output; unknown keys raise."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown scenario field(s): {', '.join(sorted(unknown))} "
                f"(known: {', '.join(sorted(known))})"
            )
        if "workload" not in data:
            raise ValueError("a scenario requires a 'workload' spec")
        return cls(**data)

    def to_json(self, **dumps_kwargs: Any) -> str:
        return json.dumps(self.to_dict(), **dumps_kwargs)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        return cls.from_dict(json.loads(text))
