"""The canonical public surface: registries, spec strings, scenarios, run().

Everything an evaluation needs is reachable from here::

    from repro.api import Scenario, run, run_many

    result = run(Scenario(workload="lublin99:jobs=2000,seed=1",
                          policy="easy", machine_size=128, load=0.7))
    print(result.report.mean_bounded_slowdown)

Attributes are loaded lazily (PEP 562) so that low-level modules — scheduler
and workload definitions register themselves via
:mod:`repro.api.registry` at import time — can import this package without
creating an import cycle.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    # registry + specs
    "Registry",
    "RegistryError",
    "UnknownNameError",
    "SpecError",
    "parse_spec",
    "format_spec",
    "scheduler_registry",
    "model_registry",
    "metric_registry",
    "register_scheduler",
    "register_model",
    "register_metric",
    "make_scheduler",
    "make_model",
    "get_metric",
    "scheduler_names",
    "model_names",
    "metric_names",
    # scenarios + running
    "Scenario",
    "ScenarioResult",
    "GridPolicy",
    "run",
    "run_many",
    "resolve_workload",
    "resolve_workload_shared",
]

_REGISTRY_NAMES = {
    "Registry",
    "RegistryError",
    "UnknownNameError",
    "SpecError",
    "parse_spec",
    "format_spec",
    "scheduler_registry",
    "model_registry",
    "metric_registry",
    "register_scheduler",
    "register_model",
    "register_metric",
    "make_scheduler",
    "make_model",
    "get_metric",
    "scheduler_names",
    "model_names",
    "metric_names",
}
_SCENARIO_NAMES = {"Scenario"}
_RUNNER_NAMES = {
    "ScenarioResult",
    "GridPolicy",
    "run",
    "run_many",
    "resolve_workload",
    "resolve_workload_shared",
}


def __getattr__(name: str) -> Any:
    if name in _REGISTRY_NAMES:
        from repro.api import registry as module
    elif name in _SCENARIO_NAMES:
        from repro.api import scenario as module
    elif name in _RUNNER_NAMES:
        from repro.api import runner as module
    else:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    return getattr(module, name)


def __dir__() -> list:
    return sorted(__all__)
