"""Registries and spec strings: every policy, model, and metric by name.

The paper's methodology is only a *standard* if every experiment can name its
ingredients the same way.  This module provides the naming layer:

* three :class:`Registry` instances — schedulers, workload models, metrics —
  populated by decorator registration at class-definition time
  (``@register_scheduler("easy")``, ``@register_model("lublin99")``,
  ``@register_metric("mean_wait")``);
* **spec strings**, the one-line constructor syntax used by the CLI, the
  :class:`~repro.api.scenario.Scenario` dataclass, and config files:
  ``"easy"``, ``"sjf:strict=true"``, ``"gang:slots=3,overhead=0.1"``,
  ``"lublin99:jobs=5000,seed=1"``.  ``name:key=value,key=value`` with values
  coerced to int/float/bool/None where they parse as such;
* lookup with *did-you-mean* suggestions, so a typo in a sweep config fails
  with ``unknown scheduler 'easyy'; did you mean 'easy'?`` instead of a bare
  :class:`KeyError` three stack frames deep in a worker process.

Registration happens when the defining module is imported; the registries
lazily import the standard rosters (:mod:`repro.schedulers`,
:mod:`repro.workloads`, :mod:`repro.metrics`, :mod:`repro.api.runner`) on
first lookup, so ``make_scheduler("easy")`` works without any prior import
ceremony while plugin packages can still add entries of their own.
"""

from __future__ import annotations

import difflib
import importlib
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "Registry",
    "RegistryError",
    "UnknownNameError",
    "SpecError",
    "parse_spec",
    "format_spec",
    "scheduler_registry",
    "model_registry",
    "metric_registry",
    "register_scheduler",
    "register_model",
    "register_metric",
    "make_scheduler",
    "make_model",
    "get_metric",
    "scheduler_names",
    "model_names",
    "metric_names",
]


class RegistryError(Exception):
    """Base class for registry and spec-string errors."""


class UnknownNameError(RegistryError, KeyError):
    """A name was looked up that no entry was registered under."""

    def __init__(self, kind: str, name: str, known: List[str]) -> None:
        self.kind = kind
        self.name = name
        self.known = sorted(known)
        message = f"unknown {kind} {name!r}"
        suggestions = difflib.get_close_matches(name, self.known, n=3, cutoff=0.5)
        if suggestions:
            quoted = ", ".join(repr(s) for s in suggestions)
            message += f"; did you mean {quoted}?"
        elif self.known:
            message += f" (known: {', '.join(self.known)})"
        super().__init__(message)
        self.message = message

    def __str__(self) -> str:  # KeyError would repr() the message otherwise
        return self.message

    def __reduce__(self):
        # Default pickling would replay __init__ with the formatted message;
        # round-trip the real arguments so multiprocessing workers can raise
        # this across the process boundary (a worker exception that fails to
        # unpickle hangs the parent's Pool.map forever).
        return (UnknownNameError, (self.kind, self.name, self.known))


class SpecError(RegistryError, ValueError):
    """A spec string could not be parsed or applied to its factory."""


# ----------------------------------------------------------------------
# spec strings
# ----------------------------------------------------------------------
def _coerce(text: str) -> Any:
    """Coerce a spec value: int, float, bool, None, else the raw string."""
    lowered = text.lower()
    if lowered in ("true", "yes", "on"):
        return True
    if lowered in ("false", "no", "off"):
        return False
    if lowered in ("none", "null"):
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def parse_spec(spec: str) -> Tuple[str, Dict[str, Any]]:
    """Split ``"name:key=value,key=value"`` into ``(name, kwargs)``.

    Keys are normalized to identifiers (``-`` becomes ``_``); values are
    coerced to int/float/bool/None where they parse as such.  A bare name
    parses to an empty kwargs dict.
    """
    if not isinstance(spec, str) or not spec.strip():
        raise SpecError(f"empty or non-string spec: {spec!r}")
    name, _, rest = spec.partition(":")
    name = name.strip()
    if not name:
        raise SpecError(f"spec {spec!r} has no name before ':'")
    kwargs: Dict[str, Any] = {}
    if rest.strip():
        for part in rest.split(","):
            key, eq, value = part.partition("=")
            key = key.strip().replace("-", "_")
            if not eq or not key:
                raise SpecError(
                    f"spec {spec!r}: expected 'key=value' but got {part.strip()!r}"
                )
            kwargs[key] = _coerce(value.strip())
    return name, kwargs


def format_spec(name: str, kwargs: Optional[Dict[str, Any]] = None) -> str:
    """Inverse of :func:`parse_spec` (for round-tripping scenarios to files)."""
    if not kwargs:
        return name
    parts = ",".join(f"{key}={value}" for key, value in sorted(kwargs.items()))
    return f"{name}:{parts}"


# ----------------------------------------------------------------------
# the registry
# ----------------------------------------------------------------------
class Registry:
    """Name -> factory mapping with decorator registration and spec lookup."""

    def __init__(self, kind: str, populate_modules: Tuple[str, ...] = ()) -> None:
        self.kind = kind
        self._entries: Dict[str, Callable[..., Any]] = {}
        self._populate_modules = populate_modules
        self._populated = not populate_modules

    def _populate(self) -> None:
        """Import the standard modules whose definitions self-register."""
        if self._populated:
            return
        self._populated = True
        for module in self._populate_modules:
            importlib.import_module(module)

    def register(self, *names: str) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
        """Decorator registering a factory under one or more names.

        The first name is canonical; the rest are aliases.  Registering a
        name twice raises, so two plugins cannot silently shadow each other.
        """
        if not names:
            raise RegistryError(f"{self.kind} registration needs at least one name")

        def decorator(factory: Callable[..., Any]) -> Callable[..., Any]:
            for name in names:
                if name in self._entries and self._entries[name] is not factory:
                    raise RegistryError(
                        f"{self.kind} {name!r} is already registered "
                        f"({self._entries[name]!r})"
                    )
                self._entries[name] = factory
            return factory

        return decorator

    def get(self, name: str) -> Callable[..., Any]:
        """The factory registered under ``name`` (with did-you-mean on miss)."""
        self._populate()
        try:
            return self._entries[name]
        except KeyError:
            raise UnknownNameError(self.kind, name, list(self._entries)) from None

    def create(self, spec: str, **defaults: Any) -> Any:
        """Instantiate from a spec string; ``defaults`` yield to spec kwargs."""
        name, kwargs = parse_spec(spec)
        factory = self.get(name)
        merged = {**defaults, **kwargs}
        try:
            return factory(**merged)
        except TypeError as exc:
            raise SpecError(
                f"{self.kind} spec {spec!r} does not match "
                f"{getattr(factory, '__name__', factory)!r}: {exc}"
            ) from exc

    def names(self) -> List[str]:
        """All registered names, canonical and alias, sorted."""
        self._populate()
        return sorted(self._entries)

    def __contains__(self, name: str) -> bool:
        self._populate()
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        self._populate()
        return len(self._entries)


#: Scheduling policies (space-sharing, gang, grid); factories are classes
#: whose ``mode`` attribute tells :func:`repro.api.runner.run` which
#: simulator to dispatch to.
scheduler_registry = Registry(
    "scheduler", populate_modules=("repro.schedulers", "repro.api.runner")
)

#: Synthetic workload models (rigid, flexible, session-structured).
model_registry = Registry("workload model", populate_modules=("repro.workloads",))

#: Named metric extractors: callables of a MetricsReport returning a float.
metric_registry = Registry("metric", populate_modules=("repro.metrics",))


def register_scheduler(*names: str):
    """Register a scheduling policy class under one or more names."""
    return scheduler_registry.register(*names)


def register_model(*names: str):
    """Register a workload model class under one or more names."""
    return model_registry.register(*names)


def register_metric(*names: str):
    """Register a metric extractor (MetricsReport -> float)."""
    return metric_registry.register(*names)


def make_scheduler(spec: str, **defaults: Any) -> Any:
    """Build a policy instance from a spec string (``"sjf:strict=true"``)."""
    return scheduler_registry.create(spec, **defaults)


def make_model(spec: str, **defaults: Any) -> Any:
    """Build a workload model instance from a spec string."""
    return model_registry.create(spec, **defaults)


def get_metric(name: str) -> Callable[..., float]:
    """The metric extractor registered under ``name``."""
    return metric_registry.get(name)


def scheduler_names() -> List[str]:
    return scheduler_registry.names()


def model_names() -> List[str]:
    return model_registry.names()


def metric_names() -> List[str]:
    return metric_registry.names()
