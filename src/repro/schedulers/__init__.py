"""Machine-scheduling policies for space-shared parallel machines.

* FCFS and first-fit baselines,
* priority re-ordering policies (SJF, LJF, narrowest/widest first, WFP),
* EASY and conservative backfilling,
* gang scheduling (time slicing, fluid Ousterhout-matrix model).

All space-sharing policies implement the
:class:`~repro.schedulers.base.Scheduler` interface consumed by
:func:`repro.evaluation.simulate`; gang scheduling ships its own simulator
because it time-slices rather than space-shares.
"""

from repro.schedulers.base import (
    AvailabilityProfile,
    JobRequest,
    RunningJobInfo,
    Scheduler,
    SchedulerState,
)
from repro.schedulers.fcfs import FCFSScheduler, FirstFitScheduler
from repro.schedulers.priority import (
    LongestJobFirstScheduler,
    NarrowestFirstScheduler,
    PriorityScheduler,
    ShortestJobFirstScheduler,
    SmallestAreaFirstScheduler,
    WFPScheduler,
    WidestFirstScheduler,
)
from repro.schedulers.backfill import ConservativeBackfillScheduler, EasyBackfillScheduler
from repro.schedulers.gang import GangPolicy, GangSimulation, simulate_gang
from repro.schedulers.moldable import MoldableScheduler

__all__ = [
    "AvailabilityProfile",
    "JobRequest",
    "RunningJobInfo",
    "Scheduler",
    "SchedulerState",
    "FCFSScheduler",
    "FirstFitScheduler",
    "PriorityScheduler",
    "ShortestJobFirstScheduler",
    "LongestJobFirstScheduler",
    "NarrowestFirstScheduler",
    "WidestFirstScheduler",
    "SmallestAreaFirstScheduler",
    "WFPScheduler",
    "EasyBackfillScheduler",
    "ConservativeBackfillScheduler",
    "MoldableScheduler",
    "GangPolicy",
    "GangSimulation",
    "simulate_gang",
]

#: The standard roster of policies the experiments compare.
DEFAULT_POLICIES = (
    FCFSScheduler,
    EasyBackfillScheduler,
    ConservativeBackfillScheduler,
)
