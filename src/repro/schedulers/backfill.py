"""Backfilling schedulers: EASY and conservative.

Backfilling is the family of policies the paper's community converged on for
space-shared machines, and the policy whose evaluation most needs standard
workloads (its benefit depends on the distribution of job sizes, runtimes,
and user estimates).

* **EASY backfilling** (Lifka's Argonne scheduler): jobs start in FCFS order;
  when the queue head does not fit, it receives a *reservation* at the
  earliest time enough processors will be free (the "shadow time"), and
  shorter/narrower jobs further back may start out of order provided they do
  not delay that reservation — either because they finish before the shadow
  time or because they use only processors the head job will not need
  ("extra" nodes).

* **Conservative backfilling**: every queued job receives a reservation when
  it arrives, and a job may be backfilled only if it delays *no* existing
  reservation.  Implemented by anchoring jobs in queue order against the
  incrementally-maintained :class:`~repro.schedulers.freespace.FreeSpace`
  slot set (a per-pass copy takes the tentative reservations, so the base
  structure only ever tracks actually-running jobs).

Both use the user estimate, not the actual runtime, to compute reservations —
as in production systems, over-estimates create backfill opportunities.
"""

from __future__ import annotations

from heapq import merge
from typing import List, Optional

from repro.api.registry import register_scheduler
from repro.obs.telemetry import count
from repro.schedulers.base import (
    AvailabilityProfile,
    JobRequest,
    RunningJobInfo,
    Scheduler,
    SchedulerState,
)
from repro.schedulers.freespace import FreeSpaceTracker

__all__ = ["EasyBackfillScheduler", "ConservativeBackfillScheduler"]


@register_scheduler("easy", "easy-backfill", "backfill")
class EasyBackfillScheduler(Scheduler):
    """EASY (aggressive) backfilling: one reservation, for the queue head.

    Registered as plain ``backfill`` too: EASY is *the* canonical
    backfilling policy, so benchmark specs can name it generically.
    """

    name = "easy-backfill"

    def __init__(self, outage_aware: bool = False) -> None:
        self.outage_aware = outage_aware

    def select_jobs(self, state: SchedulerState) -> List[JobRequest]:
        started: List[JobRequest] = []
        free = state.free_processors
        queue = state.queue

        # Phase 1: start jobs in FCFS order while they fit (an index walk —
        # popping the head of a list re-shifts the whole queue each time).
        head_index = 0
        for head in queue:
            if not self.job_fits_now(state, head, free):
                break
            started.append(head)
            free -= head.processors
            head_index += 1

        if head_index >= len(queue):
            return started

        # Phase 2: the head does not fit.  Compute its shadow time and the
        # number of extra processors, then backfill behind it.
        head = queue[head_index]
        shadow_time, extra = self._shadow(state, started, head, free)

        for i in range(head_index + 1, len(queue)):
            candidate = queue[i]
            if not self.job_fits_now(state, candidate, free):
                continue
            finishes_before_shadow = state.now + candidate.estimate <= shadow_time
            uses_only_extra = candidate.processors <= extra
            if finishes_before_shadow or uses_only_extra:
                count("jobs_backfilled")
                started.append(candidate)
                free -= candidate.processors
                if not finishes_before_shadow:
                    extra -= candidate.processors
        return started

    def _shadow(
        self,
        state: SchedulerState,
        just_started: List[JobRequest],
        head: JobRequest,
        free: int,
    ) -> tuple:
        """(shadow time, extra processors) for the blocked queue head.

        The shadow time is when, based on expected completions of running
        jobs (including those started in phase 1), enough processors free up
        for the head; the extra processors are those free at the shadow time
        beyond what the head needs.

        The running-set release list comes memoized from
        :meth:`SchedulerState.expected_completions`; phase-1 starts are a
        second (small) sorted run merged in, so nothing is re-sorted here.

        Deliberately *not* expressed as a :class:`FreeSpace` query: the
        ``extra`` count depends on how many releases the walk consumed,
        not on the free level at the shadow time — two simultaneous
        completions can leave the profile higher than the walk's
        ``available``, and preserving the historical (paper-faithful)
        tie-breaking keeps schedules bit-for-bit identical.
        """
        count("shadow_scans")
        releases = state.expected_completions()
        if just_started:
            fresh = sorted(
                (state.now + req.estimate, req.processors) for req in just_started
            )
            releases = merge(releases, fresh)

        available = free
        shadow_time = state.now
        for end_time, processors in releases:
            if available >= head.processors:
                break
            available += processors
            shadow_time = end_time
        if available < head.processors:
            # Even with everything finished the head does not fit (should not
            # happen for feasible jobs); fall back to "never", disabling
            # the finish-before-shadow rule.
            return float("inf"), 0
        extra = available - head.processors
        return shadow_time, extra


@register_scheduler("conservative", "conservative-backfill")
class ConservativeBackfillScheduler(Scheduler):
    """Conservative backfilling: every queued job holds a reservation.

    Each scheduling pass syncs the incrementally-maintained slot set to
    the running jobs (patching only what started/finished since the last
    pass), takes an O(slots) copy, optionally clamps it to announced
    outage capacity, and anchors the queue in order — identical decisions
    to the old rebuild-every-pass profile, without the rebuild.
    """

    name = "conservative-backfill"

    def __init__(self, outage_aware: bool = False, horizon: float = 365 * 24 * 3600.0) -> None:
        self.outage_aware = outage_aware
        #: how far ahead the availability profile is clamped by announced outages
        self.horizon = horizon
        self._tracker = FreeSpaceTracker()

    def select_jobs(self, state: SchedulerState) -> List[JobRequest]:
        base = self._tracker.sync(state)
        profile = base.copy()
        if self.outage_aware:
            profile.clamp_capacity(state.min_capacity, state.now + self.horizon)

        started: List[JobRequest] = []
        free = state.free_processors
        blocked = False  # has any earlier-queued job been held back?
        for request in state.queue:
            duration = max(request.estimate, 1)
            anchor = profile.earliest_start(request.processors, duration)
            profile.reserve(anchor, anchor + duration, request.processors)
            if anchor <= state.now and self.job_fits_now(state, request, free):
                if blocked:
                    count("jobs_backfilled")
                started.append(request)
                free -= request.processors
            else:
                blocked = True
        splits, merges = profile.take_stats()
        if splits:
            count("slots_split", splits)
        if merges:
            count("slots_merged", merges)
        return started
