"""First-come-first-served scheduling (with an optional first-fit relaxation).

``FCFSScheduler`` is the strict baseline every evaluation in the literature
includes: jobs start in arrival order, and the head of the queue blocks all
later jobs until enough processors free up.  ``FirstFitScheduler`` relaxes
the blocking: any queued job that fits may start, still scanning in arrival
order — this is "FCFS with first-fit backfilling without reservations",
which improves utilization but can starve large jobs (the reason EASY adds a
reservation for the head job).
"""

from __future__ import annotations

from typing import List

from repro.api.registry import register_scheduler
from repro.schedulers.base import JobRequest, Scheduler, SchedulerState

__all__ = ["FCFSScheduler", "FirstFitScheduler"]


@register_scheduler("fcfs")
class FCFSScheduler(Scheduler):
    """Strict first-come-first-served: the queue head blocks everything behind it."""

    name = "fcfs"

    def __init__(self, outage_aware: bool = False) -> None:
        self.outage_aware = outage_aware

    def select_jobs(self, state: SchedulerState) -> List[JobRequest]:
        started: List[JobRequest] = []
        free = state.free_processors
        for request in state.queue:
            if self.job_fits_now(state, request, free):
                started.append(request)
                free -= request.processors
            else:
                break  # strict FCFS: do not look past the blocked head
        return started


@register_scheduler("first-fit")
class FirstFitScheduler(Scheduler):
    """Start any queued job that fits, scanning in arrival order (no reservations)."""

    name = "first-fit"

    def __init__(self, outage_aware: bool = False) -> None:
        self.outage_aware = outage_aware

    def select_jobs(self, state: SchedulerState) -> List[JobRequest]:
        started: List[JobRequest] = []
        free = state.free_processors
        for request in state.queue:
            if self.job_fits_now(state, request, free):
                started.append(request)
                free -= request.processors
        return started
