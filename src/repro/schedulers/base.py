"""Scheduler interface and the data structures shared by all policies.

The evaluation driver (:mod:`repro.evaluation.simulator`) is event-driven: at
every job arrival, job completion, or outage event it builds a
:class:`SchedulerState` snapshot and asks the policy which queued jobs to
start *now*.  Policies never see actual runtimes — only the user estimate
(field 9 of the SWF, falling back to the actual runtime when no estimate is
recorded), exactly the information a production scheduler has.

The :class:`AvailabilityProfile` helper maintains the piecewise-constant
"free processors over future time" function that backfilling and advance
reservations reason about.  It is a thin compatibility shim over the
slot-set :class:`repro.schedulers.freespace.FreeSpace` core — same public
API and bit-for-bit identical answers, with bisect lookups and slot walks
instead of per-breakpoint scans.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.swf.fields import MISSING
from repro.core.swf.records import SWFJob
from repro.schedulers.freespace import FreeSpace

__all__ = [
    "JobRequest",
    "RunningJobInfo",
    "SchedulerState",
    "Scheduler",
    "AvailabilityProfile",
]


@dataclass(frozen=True)
class JobRequest:
    """What the scheduler knows about a job (plus the hidden actual runtime).

    Attributes
    ----------
    job:
        The underlying SWF record.
    processors:
        Processors the job needs (requested count, falling back to allocated).
    runtime:
        The *actual* runtime; used by the simulator to schedule the completion
        event, never exposed to policies through :class:`SchedulerState`.
    estimate:
        The user's runtime estimate (requested time); what policies may use.
    submit_time:
        Arrival time in the simulation (seconds).
    """

    job: SWFJob
    processors: int
    runtime: int
    estimate: int
    submit_time: int

    @property
    def job_id(self) -> int:
        return self.job.job_number

    @classmethod
    def from_swf(cls, job: SWFJob) -> "JobRequest":
        """Build a request from an SWF record, applying the standard fallbacks."""
        processors = job.processors
        if processors == MISSING or processors < 1:
            raise ValueError(f"job {job.job_number} has no usable processor count")
        runtime = job.run_time if job.run_time != MISSING else 0
        estimate = job.requested_time if job.requested_time != MISSING else runtime
        if estimate < runtime:
            # Production schedulers kill jobs that exceed their request; the
            # archive logs keep the recorded runtime, so treat the estimate as
            # a lower bound rather than modelling the kill here.
            estimate = runtime
        submit = job.submit_time if job.submit_time != MISSING else 0
        return cls(
            job=job,
            processors=int(processors),
            runtime=int(runtime),
            estimate=int(max(estimate, 0)),
            submit_time=int(submit),
        )


@dataclass(frozen=True)
class RunningJobInfo:
    """A job currently executing, as visible to the scheduler."""

    request: JobRequest
    start_time: float
    expected_end: float

    @property
    def processors(self) -> int:
        return self.request.processors


@dataclass
class SchedulerState:
    """Snapshot handed to a policy at each scheduling point."""

    now: float
    total_processors: int
    free_processors: int
    queue: List[JobRequest]
    running: List[RunningJobInfo]
    #: min available capacity over a future window, considering *announced*
    #: outages only; defaults to the constant total capacity.
    min_capacity: Callable[[float, float], int] = None  # type: ignore[assignment]
    _completions: Optional[List[Tuple[float, int]]] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.min_capacity is None:
            total = self.total_processors
            self.min_capacity = lambda start, end: total

    def expected_completions(self) -> List[Tuple[float, int]]:
        """(expected end, processors) for running jobs, sorted by end time.

        Memoized on the snapshot: backfilling consults this once per
        blocked-head decision, and the running set cannot change within
        one scheduling pass.
        """
        if self._completions is None:
            self._completions = sorted((r.expected_end, r.processors) for r in self.running)
        return self._completions


class Scheduler(ABC):
    """Base class for machine-scheduling policies.

    Subclasses implement :meth:`select_jobs`, returning the queued jobs to
    start immediately.  The returned jobs must collectively fit in the free
    processors reported by the state; the driver enforces this and raises if
    a policy misbehaves, so policy bugs surface in tests rather than as
    silently wrong results.
    """

    #: human-readable policy name (used in experiment tables)
    name: str = "scheduler"
    #: simulator the policy plugs into: ``"space"`` policies implement
    #: :meth:`select_jobs` for the event-driven space-sharing driver; other
    #: registered policy classes declare ``"gang"`` or ``"grid"`` and are
    #: dispatched by :func:`repro.api.runner.run` to their own simulators.
    mode: str = "space"
    #: if True, the policy consults announced outages via ``state.min_capacity``
    outage_aware: bool = False

    @abstractmethod
    def select_jobs(self, state: SchedulerState) -> List[JobRequest]:
        """Return the queued jobs to start at ``state.now``."""

    # ------------------------------------------------------------------
    # helpers shared by concrete policies
    # ------------------------------------------------------------------
    def job_fits_now(self, state: SchedulerState, request: JobRequest, free: int) -> bool:
        """Whether ``request`` can start now given ``free`` processors.

        Outage-aware policies additionally require that the announced
        capacity stays sufficient for the whole estimated duration, i.e. the
        machine is drained ahead of known maintenance windows.
        """
        if request.processors > free:
            return False
        if self.outage_aware:
            horizon_capacity = state.min_capacity(state.now, state.now + request.estimate)
            used_by_others = state.total_processors - free
            if request.processors > horizon_capacity - used_by_others:
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class AvailabilityProfile(FreeSpace):
    """Piecewise-constant future free-processor profile.

    Built from the currently-running jobs' expected end times (and, for
    advance reservations, from reserved windows), then queried/updated as
    candidate jobs are placed.  This is the core data structure of
    conservative backfilling: every queued job gets the earliest anchor point
    at which it fits, and placing it updates the profile so later jobs cannot
    push it back.

    Since the slot-set refactor this is a compatibility shim over
    :class:`repro.schedulers.freespace.FreeSpace`: the legacy method names
    (``remove``, ``add_capacity_limit``) delegate to the slot-set core,
    and every query returns exactly what the original breakpoint-scan
    implementation returned (asserted against a verbatim copy of the old
    code in ``tests/schedulers/test_freespace.py``).
    """

    @classmethod
    def from_running(
        cls,
        total_processors: int,
        now: float,
        running: Sequence[RunningJobInfo],
        capacity_fn: Optional[Callable[[float, float], int]] = None,
        horizon: float = float("inf"),
    ) -> "AvailabilityProfile":
        """Profile implied by the running jobs' expected completion times."""
        profile = cls(total_processors, now)
        for info in running:
            end = max(info.expected_end, now)
            profile.remove(now, end, info.processors)
        return profile

    def _index_at(self, time: float) -> int:
        """Index of the slot covering ``time`` (bisect, not a linear scan)."""
        return bisect_right(self._times, time) - 1 if time >= self._times[0] else 0

    def remove(self, start: float, end: float, processors: int) -> None:
        """Subtract ``processors`` from the profile over [start, end)."""
        self.reserve(start, end, processors)

    def add_capacity_limit(self, capacity_fn: Callable[[float, float], int], horizon: float) -> None:
        """Clamp the profile to an external capacity function over [now, horizon).

        Used by outage-aware conservative backfilling: the free curve can
        never exceed the announced available capacity.
        """
        self.clamp_capacity(capacity_fn, horizon)
