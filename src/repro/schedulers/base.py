"""Scheduler interface and the data structures shared by all policies.

The evaluation driver (:mod:`repro.evaluation.simulator`) is event-driven: at
every job arrival, job completion, or outage event it builds a
:class:`SchedulerState` snapshot and asks the policy which queued jobs to
start *now*.  Policies never see actual runtimes — only the user estimate
(field 9 of the SWF, falling back to the actual runtime when no estimate is
recorded), exactly the information a production scheduler has.

The :class:`AvailabilityProfile` helper maintains the piecewise-constant
"free processors over future time" function that backfilling and advance
reservations reason about.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from bisect import insort
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.swf.fields import MISSING
from repro.core.swf.records import SWFJob

__all__ = [
    "JobRequest",
    "RunningJobInfo",
    "SchedulerState",
    "Scheduler",
    "AvailabilityProfile",
]


@dataclass(frozen=True)
class JobRequest:
    """What the scheduler knows about a job (plus the hidden actual runtime).

    Attributes
    ----------
    job:
        The underlying SWF record.
    processors:
        Processors the job needs (requested count, falling back to allocated).
    runtime:
        The *actual* runtime; used by the simulator to schedule the completion
        event, never exposed to policies through :class:`SchedulerState`.
    estimate:
        The user's runtime estimate (requested time); what policies may use.
    submit_time:
        Arrival time in the simulation (seconds).
    """

    job: SWFJob
    processors: int
    runtime: int
    estimate: int
    submit_time: int

    @property
    def job_id(self) -> int:
        return self.job.job_number

    @classmethod
    def from_swf(cls, job: SWFJob) -> "JobRequest":
        """Build a request from an SWF record, applying the standard fallbacks."""
        processors = job.processors
        if processors == MISSING or processors < 1:
            raise ValueError(f"job {job.job_number} has no usable processor count")
        runtime = job.run_time if job.run_time != MISSING else 0
        estimate = job.requested_time if job.requested_time != MISSING else runtime
        if estimate < runtime:
            # Production schedulers kill jobs that exceed their request; the
            # archive logs keep the recorded runtime, so treat the estimate as
            # a lower bound rather than modelling the kill here.
            estimate = runtime
        submit = job.submit_time if job.submit_time != MISSING else 0
        return cls(
            job=job,
            processors=int(processors),
            runtime=int(runtime),
            estimate=int(max(estimate, 0)),
            submit_time=int(submit),
        )


@dataclass(frozen=True)
class RunningJobInfo:
    """A job currently executing, as visible to the scheduler."""

    request: JobRequest
    start_time: float
    expected_end: float

    @property
    def processors(self) -> int:
        return self.request.processors


@dataclass
class SchedulerState:
    """Snapshot handed to a policy at each scheduling point."""

    now: float
    total_processors: int
    free_processors: int
    queue: List[JobRequest]
    running: List[RunningJobInfo]
    #: min available capacity over a future window, considering *announced*
    #: outages only; defaults to the constant total capacity.
    min_capacity: Callable[[float, float], int] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.min_capacity is None:
            total = self.total_processors
            self.min_capacity = lambda start, end: total

    def expected_completions(self) -> List[Tuple[float, int]]:
        """(expected end, processors) for running jobs, sorted by end time."""
        return sorted((r.expected_end, r.processors) for r in self.running)


class Scheduler(ABC):
    """Base class for machine-scheduling policies.

    Subclasses implement :meth:`select_jobs`, returning the queued jobs to
    start immediately.  The returned jobs must collectively fit in the free
    processors reported by the state; the driver enforces this and raises if
    a policy misbehaves, so policy bugs surface in tests rather than as
    silently wrong results.
    """

    #: human-readable policy name (used in experiment tables)
    name: str = "scheduler"
    #: simulator the policy plugs into: ``"space"`` policies implement
    #: :meth:`select_jobs` for the event-driven space-sharing driver; other
    #: registered policy classes declare ``"gang"`` or ``"grid"`` and are
    #: dispatched by :func:`repro.api.runner.run` to their own simulators.
    mode: str = "space"
    #: if True, the policy consults announced outages via ``state.min_capacity``
    outage_aware: bool = False

    @abstractmethod
    def select_jobs(self, state: SchedulerState) -> List[JobRequest]:
        """Return the queued jobs to start at ``state.now``."""

    # ------------------------------------------------------------------
    # helpers shared by concrete policies
    # ------------------------------------------------------------------
    def job_fits_now(self, state: SchedulerState, request: JobRequest, free: int) -> bool:
        """Whether ``request`` can start now given ``free`` processors.

        Outage-aware policies additionally require that the announced
        capacity stays sufficient for the whole estimated duration, i.e. the
        machine is drained ahead of known maintenance windows.
        """
        if request.processors > free:
            return False
        if self.outage_aware:
            horizon_capacity = state.min_capacity(state.now, state.now + request.estimate)
            used_by_others = state.total_processors - free
            if request.processors > horizon_capacity - used_by_others:
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class AvailabilityProfile:
    """Piecewise-constant future free-processor profile.

    Built from the currently-running jobs' expected end times (and, for
    advance reservations, from reserved windows), then queried/updated as
    candidate jobs are placed.  This is the core data structure of
    conservative backfilling: every queued job gets the earliest anchor point
    at which it fits, and placing it updates the profile so later jobs cannot
    push it back.
    """

    def __init__(self, total_processors: int, now: float) -> None:
        if total_processors < 1:
            raise ValueError("total_processors must be >= 1")
        self.total = total_processors
        self.now = float(now)
        # breakpoints: sorted list of (time, free_processors_from_this_time_on)
        self._times: List[float] = [float(now)]
        self._free: List[int] = [total_processors]

    @classmethod
    def from_running(
        cls,
        total_processors: int,
        now: float,
        running: Sequence[RunningJobInfo],
        capacity_fn: Optional[Callable[[float, float], int]] = None,
        horizon: float = float("inf"),
    ) -> "AvailabilityProfile":
        """Profile implied by the running jobs' expected completion times."""
        profile = cls(total_processors, now)
        for info in running:
            end = max(info.expected_end, now)
            profile.remove(now, end, info.processors)
        return profile

    # ------------------------------------------------------------------
    # internal helpers
    # ------------------------------------------------------------------
    def _ensure_breakpoint(self, time: float) -> int:
        """Ensure a breakpoint exists at ``time``; return its index."""
        time = max(float(time), self.now)
        lo, hi = 0, len(self._times)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._times[mid] < time:
                lo = mid + 1
            else:
                hi = mid
        index = lo
        if index < len(self._times) and self._times[index] == time:
            return index
        previous_free = self._free[index - 1] if index > 0 else self.total
        self._times.insert(index, time)
        self._free.insert(index, previous_free)
        return index

    def _index_at(self, time: float) -> int:
        """Index of the segment covering ``time``."""
        index = 0
        for i, t in enumerate(self._times):
            if t <= time:
                index = i
            else:
                break
        return index

    # ------------------------------------------------------------------
    # queries and updates
    # ------------------------------------------------------------------
    def free_at(self, time: float) -> int:
        """Free processors at ``time``."""
        return self._free[self._index_at(max(time, self.now))]

    def min_free(self, start: float, end: float) -> int:
        """Minimum free processors over [start, end)."""
        start = max(start, self.now)
        if end <= start:
            return self.free_at(start)
        minimum = self.free_at(start)
        for t, f in zip(self._times, self._free):
            if start < t < end:
                minimum = min(minimum, f)
        return minimum

    def remove(self, start: float, end: float, processors: int) -> None:
        """Subtract ``processors`` from the profile over [start, end)."""
        if processors < 0:
            raise ValueError("processors must be non-negative")
        if end <= start or processors == 0:
            return
        start = max(start, self.now)
        i0 = self._ensure_breakpoint(start)
        i1 = self._ensure_breakpoint(end)
        for i in range(i0, i1):
            self._free[i] -= processors

    def add_capacity_limit(self, capacity_fn: Callable[[float, float], int], horizon: float) -> None:
        """Clamp the profile to an external capacity function over [now, horizon).

        Used by outage-aware conservative backfilling: the free curve can
        never exceed the announced available capacity.
        """
        # Sample the capacity function at existing breakpoints; callers pass
        # an AvailabilityTimeline-backed function which is piecewise constant
        # on outage boundaries, so also sample those via min over segments.
        for i, t in enumerate(self._times):
            if t >= horizon:
                break
            next_t = self._times[i + 1] if i + 1 < len(self._times) else horizon
            cap = capacity_fn(t, min(next_t, horizon))
            busy = self.total - self._free[i]
            self._free[i] = min(self._free[i], max(0, cap - busy))

    def earliest_start(self, processors: int, duration: float, not_before: float = None) -> float:
        """Earliest time >= ``not_before`` at which ``processors`` are free for ``duration``.

        Scans profile breakpoints; because every segment ends at a breakpoint
        and the profile eventually returns to fully-free, a feasible anchor
        always exists for requests that fit the machine.
        """
        if processors > self.total:
            raise ValueError(
                f"a request for {processors} processors can never fit a "
                f"{self.total}-processor machine"
            )
        not_before = self.now if not_before is None else max(not_before, self.now)
        candidates = [t for t in self._times if t >= not_before]
        if not_before not in candidates:
            candidates.insert(0, not_before)
        for anchor in candidates:
            if self.min_free(anchor, anchor + duration) >= processors:
                return anchor
        # After the last breakpoint the machine is fully free.
        return max(self._times[-1], not_before)

    def segments(self) -> List[Tuple[float, int]]:
        """(time, free) breakpoints, for inspection and tests."""
        return list(zip(self._times, self._free))
