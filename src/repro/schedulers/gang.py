"""Gang scheduling with an Ousterhout matrix (fluid time-slicing model).

Gang scheduling is the time-slicing alternative the paper's background
discusses ("earlier work in the sigmetrics community compared space slicing
with time slicing"): all processes of a job are coscheduled in the same time
slot, and the machine cycles through the slots of the Ousterhout matrix.

The simulation here uses the standard *fluid* approximation of the matrix:
while ``R`` slots are populated, every running job receives a ``(1 -
overhead) / R`` share of the machine's time, so its remaining work drains at
that rate.  This captures the essential trade-off gang scheduling makes —
jobs start almost immediately (low wait) but run stretched (high runtime) —
without simulating every quantum, which is what matters for comparing it
against space-sharing policies on the standard metrics.

Slot packing follows the usual rules: a job is placed in the first slot with
enough free processors, a new slot is opened when allowed
(``max_slots``, the multiprogramming level), and otherwise the job waits in
an FCFS queue.  Emptied slots are removed so the remaining jobs speed up
("alternative scheduling" / slot unification is approximated by this
compaction).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.api.registry import register_scheduler
from repro.core.swf.workload import Workload
from repro.evaluation.results import JobResult, SimulationResult
from repro.schedulers.base import JobRequest

__all__ = ["GangPolicy", "GangSimulation", "simulate_gang"]


@register_scheduler("gang")
class GangPolicy:
    """Gang-scheduling configuration constructible from a spec string.

    Gang scheduling time-slices rather than space-shares, so it is not a
    :class:`~repro.schedulers.base.Scheduler`; registering this lightweight
    configuration under ``"gang"`` lets :func:`repro.api.runner.run` dispatch
    ``"gang:slots=3,overhead=0.1"`` to :func:`simulate_gang` through the same
    front door as every space-sharing policy.
    """

    mode = "gang"

    def __init__(self, slots: int = 5, overhead: float = 0.05) -> None:
        if slots < 1:
            raise ValueError("slots must be >= 1")
        if not 0.0 <= overhead < 1.0:
            raise ValueError("overhead must be in [0, 1)")
        self.slots = slots
        self.overhead = overhead

    @property
    def name(self) -> str:
        return f"gang-{self.slots}slots"


@dataclass
class _GangJob:
    request: JobRequest
    remaining: float
    slot: int
    start_time: float


class GangSimulation:
    """Fluid simulation of gang scheduling over an SWF workload.

    Parameters
    ----------
    workload:
        The workload to replay (summary jobs only).
    machine_size:
        Processors per time slot (defaults to the header's MaxNodes).
    max_slots:
        Multiprogramming level — the maximum number of rows of the
        Ousterhout matrix.
    context_switch_overhead:
        Fraction of machine time lost to slot switching when more than one
        slot is populated (0.05 = 5%).
    """

    def __init__(
        self,
        workload: Workload,
        machine_size: Optional[int] = None,
        max_slots: int = 5,
        context_switch_overhead: float = 0.05,
    ) -> None:
        if max_slots < 1:
            raise ValueError("max_slots must be >= 1")
        if not 0.0 <= context_switch_overhead < 1.0:
            raise ValueError("context_switch_overhead must be in [0, 1)")
        self.workload = workload
        size = machine_size or workload.header.max_nodes or workload.max_processors()
        if not size:
            raise ValueError("machine size is unknown: pass machine_size explicitly")
        self.machine_size = int(size)
        self.max_slots = max_slots
        self.overhead = context_switch_overhead

    # ------------------------------------------------------------------
    def _build_requests(self) -> List[JobRequest]:
        requests = []
        skipped = 0
        for job in self.workload.summary_jobs():
            try:
                request = JobRequest.from_swf(job)
            except ValueError:
                skipped += 1
                continue
            if request.processors > self.machine_size:
                skipped += 1
                continue
            requests.append(request)
        self._skipped = skipped
        return sorted(requests, key=lambda r: (r.submit_time, r.job_id))

    def run(self) -> SimulationResult:
        """Run the fluid simulation and return per-job results."""
        arrivals = self._build_requests()
        arrival_index = 0
        queue: List[JobRequest] = []
        running: Dict[int, _GangJob] = {}
        slot_usage: Dict[int, int] = {}  # slot -> processors in use
        results: List[JobResult] = []
        submit_times: Dict[int, float] = {}
        now = 0.0

        def rate() -> float:
            populated = len(slot_usage)
            if populated == 0:
                return 0.0
            share = 1.0 / populated
            return share if populated == 1 else share * (1.0 - self.overhead)

        def place_waiting() -> None:
            placed_any = True
            while placed_any:
                placed_any = False
                for request in list(queue):
                    slot = self._find_slot(slot_usage, request.processors)
                    if slot is None:
                        continue
                    queue.remove(request)
                    slot_usage[slot] = slot_usage.get(slot, 0) + request.processors
                    running[request.job_id] = _GangJob(
                        request=request,
                        remaining=float(max(request.runtime, 0)),
                        slot=slot,
                        start_time=now,
                    )
                    placed_any = True

        def advance(to_time: float) -> None:
            nonlocal now
            elapsed = to_time - now
            if elapsed > 0 and running:
                progress = elapsed * rate()
                for job in running.values():
                    job.remaining = max(0.0, job.remaining - progress)
            now = to_time

        while arrival_index < len(arrivals) or running or queue:
            # Time of the next arrival and of the next fluid completion.
            next_arrival = (
                arrivals[arrival_index].submit_time if arrival_index < len(arrivals) else None
            )
            next_completion = None
            if running and rate() > 0:
                min_remaining = min(job.remaining for job in running.values())
                next_completion = now + min_remaining / rate()

            if next_completion is None and next_arrival is None:
                break  # queue non-empty but nothing can ever run (cannot happen: sizes checked)
            if next_completion is None or (
                next_arrival is not None and next_arrival <= next_completion
            ):
                advance(float(next_arrival))
                request = arrivals[arrival_index]
                arrival_index += 1
                submit_times[request.job_id] = now
                queue.append(request)
                place_waiting()
            else:
                advance(next_completion)
                finished = [j for j in running.values() if j.remaining <= 1e-9]
                for job in finished:
                    del running[job.request.job_id]
                    slot_usage[job.slot] -= job.request.processors
                    if slot_usage[job.slot] <= 0:
                        del slot_usage[job.slot]
                    results.append(
                        JobResult(
                            job=job.request.job,
                            submit_time=submit_times[job.request.job_id],
                            start_time=job.start_time,
                            end_time=now,
                            processors=job.request.processors,
                        )
                    )
                place_waiting()

        return SimulationResult(
            scheduler_name=f"gang-{self.max_slots}slots",
            machine_size=self.machine_size,
            jobs=sorted(results, key=lambda j: j.job_id),
            metadata={
                "skipped_too_large": self._skipped,
                "max_slots": self.max_slots,
                "context_switch_overhead": self.overhead,
                "workload": self.workload.name,
            },
        )

    def _find_slot(self, slot_usage: Dict[int, int], processors: int) -> Optional[int]:
        """First slot with room for ``processors``, opening a new one if allowed."""
        for slot in sorted(slot_usage):
            if self.machine_size - slot_usage[slot] >= processors:
                return slot
        if len(slot_usage) < self.max_slots:
            new_slot = (max(slot_usage) + 1) if slot_usage else 0
            return new_slot
        return None


def simulate_gang(
    workload: Workload,
    machine_size: Optional[int] = None,
    max_slots: int = 5,
    context_switch_overhead: float = 0.05,
) -> SimulationResult:
    """Convenience wrapper around :class:`GangSimulation`."""
    return GangSimulation(
        workload=workload,
        machine_size=machine_size,
        max_slots=max_slots,
        context_switch_overhead=context_switch_overhead,
    ).run()
