"""Slot-set free-space core: the structure every space-sharing policy queries.

Conservative backfilling reasons about a piecewise-constant function
"free processors over future time".  The original ``AvailabilityProfile``
rebuilt that function from the running set on *every* scheduling pass and
linear-scanned every breakpoint per query, which is quadratic-to-cubic on
long traces.  This module replaces the representation with a slot set in
the style of OAR3's ``kamelot`` scheduler:

* :class:`FreeSpace` — a sorted slot list.  Slot ``i`` covers
  ``[times[i], times[i+1])`` (the last slot is open-ended) with a constant
  number of free processors.  Lookups bisect, reservations split at most
  two slots, adjacent slots with equal free counts merge away, and
  :meth:`FreeSpace.earliest_start` walks slots — jumping past the *end* of
  any slot that cannot host the request instead of retrying every
  breakpoint in between.

* :class:`FreeSpaceTracker` — maintains one :class:`FreeSpace` across
  scheduling events.  Instead of rebuilding from the running set each
  pass, it advances the slot origin to ``now`` and patches only the diff:
  jobs that started since the last pass reserve their window, jobs that
  finished (or were killed by an outage) release theirs.

Every query is value-equivalent to the original breakpoint scan — the
old ``AvailabilityProfile`` survives as a thin shim over this class, and
the equivalence is asserted bit-for-bit in
``tests/schedulers/test_freespace.py`` against a verbatim copy of the old
implementation.

The structure emits deterministic telemetry (``slots_split``,
``slots_merged``, ``profile_patches``) derived only from simulated facts,
so the counters ride in ``MetricsReport.counters`` bit-identically across
serial and parallel runs.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs.telemetry import count

__all__ = ["FreeSpace", "FreeSpaceTracker"]


class FreeSpace:
    """Free processors over future time, as a sorted slot set.

    Invariants: ``_times`` is strictly increasing with ``_times[0] == now``;
    slot ``i`` spans ``[_times[i], _times[i+1])`` (last slot open-ended)
    and offers ``_free[i]`` processors.  Adjacent slots never hold equal
    free counts (they are merged on the spot), which keeps the slot count
    proportional to the number of *distinct* reservation edges rather
    than the number of operations ever applied.
    """

    __slots__ = ("total", "now", "_times", "_free", "splits", "merges")

    def __init__(self, total_processors: int, now: float) -> None:
        if total_processors < 1:
            raise ValueError("total_processors must be >= 1")
        self.total = total_processors
        self.now = float(now)
        self._times: List[float] = [float(now)]
        self._free: List[int] = [total_processors]
        #: slot splits/merges performed since the last :meth:`take_stats`
        self.splits = 0
        self.merges = 0

    @classmethod
    def from_running(
        cls,
        total_processors: int,
        now: float,
        running: Sequence,
    ) -> "FreeSpace":
        """The slot set implied by the running jobs' expected completions."""
        fs = cls(total_processors, now)
        for info in running:
            end = max(info.expected_end, now)
            fs.reserve(now, end, info.processors)
        return fs

    def copy(self) -> "FreeSpace":
        """An independent snapshot; O(slots).  Stats start at zero."""
        fs = FreeSpace.__new__(FreeSpace)
        fs.total = self.total
        fs.now = self.now
        fs._times = self._times[:]
        fs._free = self._free[:]
        fs.splits = 0
        fs.merges = 0
        return fs

    def take_stats(self) -> Tuple[int, int]:
        """(splits, merges) since the last call; resets the counters."""
        stats = (self.splits, self.merges)
        self.splits = 0
        self.merges = 0
        return stats

    # ------------------------------------------------------------------
    # slot maintenance
    # ------------------------------------------------------------------
    def _split_at(self, time: float) -> int:
        """Ensure a slot boundary at ``time`` (clamped to now); return its index."""
        time = max(float(time), self.now)
        times = self._times
        index = bisect_right(times, time)
        if times[index - 1] == time:
            return index - 1
        times.insert(index, time)
        self._free.insert(index, self._free[index - 1])
        self.splits += 1
        return index

    def _merge_boundary(self, index: int) -> None:
        """Drop the boundary before slot ``index`` if it separates equal slots."""
        if 0 < index < len(self._times) and self._free[index - 1] == self._free[index]:
            del self._times[index]
            del self._free[index]
            self.merges += 1

    def advance(self, now: float) -> None:
        """Move the slot origin forward to ``now``, dropping past slots."""
        now = float(now)
        if now <= self.now:
            if now < self.now:
                raise ValueError("advance() cannot move time backwards")
            return
        times = self._times
        index = bisect_right(times, now) - 1
        if index > 0:
            del times[:index]
            del self._free[:index]
        times[0] = now
        self.now = now

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def free_at(self, time: float) -> int:
        """Free processors at ``time`` (clamped to now)."""
        time = max(time, self.now)
        return self._free[bisect_right(self._times, time) - 1]

    def min_free(self, start: float, end: float) -> int:
        """Minimum free processors over [start, end)."""
        start = max(start, self.now)
        times, free = self._times, self._free
        index = bisect_right(times, start) - 1
        minimum = free[index]
        if end <= start:
            return minimum
        n = len(times)
        index += 1
        while index < n and times[index] < end:
            if free[index] < minimum:
                minimum = free[index]
            index += 1
        return minimum

    def earliest_start(self, processors: int, duration: float, not_before: Optional[float] = None) -> float:
        """Earliest time >= ``not_before`` with ``processors`` free for ``duration``.

        Walks slots left to right.  When a slot inside the candidate window
        cannot host the request, every anchor before that slot's *end* is
        infeasible too (its window would still contain the slot), so the
        walk jumps straight there — each slot is visited at most once per
        call instead of once per candidate breakpoint.
        """
        if processors > self.total:
            raise ValueError(
                f"a request for {processors} processors can never fit a "
                f"{self.total}-processor machine"
            )
        anchor = self.now if not_before is None else max(not_before, self.now)
        times, free = self._times, self._free
        n = len(times)
        index = bisect_right(times, anchor) - 1
        while True:
            if free[index] < processors:
                blocker = index
            else:
                blocker = -1
                end = anchor + duration
                scan = index + 1
                while scan < n and times[scan] < end:
                    if free[scan] < processors:
                        blocker = scan
                        break
                    scan += 1
            if blocker < 0:
                return anchor
            if blocker + 1 >= n:
                # Matches the old breakpoint scan's fallback: past the last
                # boundary the machine is (in practice) fully free again.
                return max(times[-1], anchor)
            index = blocker + 1
            anchor = times[index]

    def slots(self) -> List[Tuple[float, float, int]]:
        """(start, end, free) triples; the last slot ends at +inf."""
        out = []
        times, free = self._times, self._free
        for i, start in enumerate(times):
            end = times[i + 1] if i + 1 < len(times) else float("inf")
            out.append((start, end, free[i]))
        return out

    def segments(self) -> List[Tuple[float, int]]:
        """(time, free) slot boundaries, for inspection and tests."""
        return list(zip(self._times, self._free))

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def reserve(self, start: float, end: float, processors: int) -> None:
        """Subtract ``processors`` over [start, end) (clamped to now)."""
        if processors < 0:
            raise ValueError("processors must be non-negative")
        if end <= start or processors == 0:
            return
        start = max(start, self.now)
        end = max(end, self.now)
        if end <= start:
            return
        i0 = self._split_at(start)
        i1 = self._split_at(end)
        free = self._free
        for i in range(i0, i1):
            free[i] -= processors
        # Only the window edges can become redundant: interior boundaries
        # shift uniformly, so unequal neighbours stay unequal.
        self._merge_boundary(i1)
        self._merge_boundary(i0)

    def release(self, start: float, end: float, processors: int) -> None:
        """Give back ``processors`` over [start, end) — the inverse of reserve."""
        if processors < 0:
            raise ValueError("processors must be non-negative")
        if end <= start or processors == 0:
            return
        start = max(start, self.now)
        end = max(end, self.now)
        if end <= start:
            return
        i0 = self._split_at(start)
        i1 = self._split_at(end)
        free = self._free
        for i in range(i0, i1):
            free[i] += processors
        self._merge_boundary(i1)
        self._merge_boundary(i0)

    def clamp_capacity(self, capacity_fn: Callable[[float, float], int], horizon: float) -> None:
        """Clamp free counts to an external capacity function over [now, horizon).

        Outage-aware backfilling: the free curve can never exceed the
        announced available capacity.  Samples the function per slot, like
        the old per-breakpoint loop — callers pass a piecewise-constant
        ``AvailabilityTimeline`` min, so per-slot sampling is exact.
        """
        times, free = self._times, self._free
        n = len(times)
        total = self.total
        for i in range(n):
            t = times[i]
            if t >= horizon:
                break
            next_t = times[i + 1] if i + 1 < n else horizon
            cap = capacity_fn(t, min(next_t, horizon))
            busy = total - free[i]
            limited = cap - busy
            if limited < 0:
                limited = 0
            if limited < free[i]:
                free[i] = limited
        # Clamping can flatten neighbouring slots to equal values; sweep
        # once so later walks skip them.  (Merging never changes any query
        # result — equal adjacent slots answer identically.)
        i = 1
        while i < len(self._times):
            if self._free[i - 1] == self._free[i]:
                del self._times[i]
                del self._free[i]
                self.merges += 1
            else:
                i += 1


class FreeSpaceTracker:
    """Maintain a :class:`FreeSpace` incrementally across scheduling passes.

    The simulator hands each pass a fresh running-set snapshot.  Rather
    than rebuilding the profile from it (O(running x slots) per pass), the
    tracker advances the previous slot set to ``state.now`` and patches
    the *diff*: newly started jobs reserve ``[now, expected_end)``,
    vanished jobs (completed, or killed by an outage) release the
    remainder of theirs.  The result is, slot for slot, the structure
    ``FreeSpace.from_running`` would have built — an invariant asserted
    by the property tests.

    Time must be monotone within one tracked simulation (the simulator
    guarantees this); a pass with an earlier ``now`` or a different
    machine size triggers a full rebuild, which also covers reusing one
    scheduler instance across simulations.
    """

    __slots__ = ("_fs", "_known")

    def __init__(self) -> None:
        self._fs: Optional[FreeSpace] = None
        #: job_id -> (processors, expected_end) as of the last sync
        self._known: Dict[int, Tuple[int, float]] = {}

    def reset(self) -> None:
        self._fs = None
        self._known = {}

    def sync(self, state) -> FreeSpace:
        """Bring the tracked slot set up to date with ``state``; return it."""
        now = state.now
        fs = self._fs
        if fs is None or now < fs.now or fs.total != state.total_processors:
            return self._rebuild(state)
        fs.advance(now)
        known = self._known
        current: Dict[int, Tuple[int, float]] = {}
        patches = 0
        for info in state.running:
            end = info.expected_end
            if end < now:
                end = now
            current[info.request.job_id] = (info.processors, end)
        for job_id, (procs, end) in known.items():
            if job_id not in current and end > now:
                fs.release(now, end, procs)
                patches += 1
        for job_id, entry in current.items():
            old = known.get(job_id)
            if old is None:
                procs, end = entry
                if end > now:
                    fs.reserve(now, end, procs)
                    patches += 1
            elif old != entry:
                # Same id, different window: an outage killed and
                # resubmitted the job between passes, or its clamped end
                # moved.  Swap the remaining contribution.
                old_procs, old_end = old
                procs, end = entry
                if old_end > now:
                    fs.release(now, old_end, old_procs)
                    patches += 1
                if end > now:
                    fs.reserve(now, end, procs)
                    patches += 1
        self._known = current
        if patches:
            count("profile_patches", patches)
        splits, merges = fs.take_stats()
        if splits:
            count("slots_split", splits)
        if merges:
            count("slots_merged", merges)
        return fs

    def _rebuild(self, state) -> FreeSpace:
        count("profile_builds")
        fs = FreeSpace(state.total_processors, state.now)
        known: Dict[int, Tuple[int, float]] = {}
        now = state.now
        for info in state.running:
            end = info.expected_end
            if end < now:
                end = now
            fs.reserve(now, end, info.processors)
            known[info.request.job_id] = (info.processors, end)
        splits, merges = fs.take_stats()
        if splits:
            count("slots_split", splits)
        if merges:
            count("slots_merged", merges)
        self._fs = fs
        self._known = known
        return fs
