"""Adaptive scheduling of moldable jobs (flexible-job support).

Rigid jobs force the scheduler to find exactly the requested number of free
processors; a *moldable* job lets the scheduler choose the allocation at
start time from the job's speedup curve.  :class:`MoldableScheduler`
implements the adaptive policy experiment E8 evaluates:

* jobs are considered in arrival order (FCFS fairness is preserved);
* for the job at the head of the queue the policy picks the allocation that
  minimizes its runtime among the allocations that (a) are currently free,
  (b) do not exceed the job's maximum, and (c) keep parallel efficiency at or
  above a threshold — the classic guard against wasting processors on flat
  regions of the speedup curve;
* if even a single processor is unavailable the head blocks (strict FCFS),
  so the comparison against rigid FCFS/EASY isolates the effect of
  adaptivity, not of queue reordering.

The policy returns *modified* :class:`~repro.schedulers.base.JobRequest`
objects (same job, different processor count and runtime); the evaluation
driver starts whatever request the policy hands back, which is exactly the
"application scheduler negotiates with the machine scheduler" interaction
the paper describes.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.api.registry import register_scheduler
from repro.schedulers.base import JobRequest, Scheduler, SchedulerState
from repro.workloads.speedup import MoldableJob

__all__ = ["MoldableScheduler"]


@register_scheduler("moldable", "moldable-adaptive")
class MoldableScheduler(Scheduler):
    """FCFS scheduling with per-job adaptive allocation from speedup curves."""

    name = "moldable-adaptive"

    def __init__(
        self,
        moldable_jobs: Dict[int, MoldableJob],
        efficiency_threshold: float = 0.5,
        estimate_factor: float = 2.0,
        outage_aware: bool = False,
    ) -> None:
        if not 0 < efficiency_threshold <= 1.0:
            raise ValueError("efficiency_threshold must be in (0, 1]")
        if estimate_factor < 1.0:
            raise ValueError("estimate_factor must be >= 1")
        self.moldable_jobs = dict(moldable_jobs)
        self.efficiency_threshold = efficiency_threshold
        self.estimate_factor = estimate_factor
        self.outage_aware = outage_aware

    # ------------------------------------------------------------------
    def _choose_allocation(self, moldable: MoldableJob, free: int) -> Optional[int]:
        """Best allocation for the job given ``free`` processors, or ``None``."""
        if free < 1:
            return None
        ceiling = min(free, moldable.max_processors)
        best_n: Optional[int] = None
        best_runtime = float("inf")
        n = 1
        while n <= ceiling:
            efficiency = moldable.speedup_model.speedup(n) / n
            if n == 1 or efficiency >= self.efficiency_threshold:
                runtime = moldable.runtime_on(n)
                if runtime < best_runtime:
                    best_runtime = runtime
                    best_n = n
            n *= 2  # power-of-two allocations, matching machine practice
        if best_n is None:
            best_n = 1
        return best_n

    def _resize(self, request: JobRequest, processors: int) -> JobRequest:
        moldable = self.moldable_jobs[request.job_id]
        runtime = max(1, int(round(moldable.runtime_on(processors))))
        return JobRequest(
            job=request.job,
            processors=processors,
            runtime=runtime,
            estimate=max(runtime, int(round(runtime * self.estimate_factor))),
            submit_time=request.submit_time,
        )

    def select_jobs(self, state: SchedulerState) -> List[JobRequest]:
        started: List[JobRequest] = []
        free = state.free_processors
        for request in state.queue:
            moldable = self.moldable_jobs.get(request.job_id)
            if moldable is None:
                # Jobs without a speedup description are treated as rigid.
                if self.job_fits_now(state, request, free):
                    started.append(request)
                    free -= request.processors
                else:
                    break
                continue
            allocation = self._choose_allocation(moldable, free)
            if allocation is None:
                break  # strict FCFS: the head blocks when nothing is free
            resized = self._resize(request, allocation)
            if not self.job_fits_now(state, resized, free):
                break
            started.append(resized)
            free -= resized.processors
        return started
