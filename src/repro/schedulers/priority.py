"""Priority-ordered scheduling policies (SJF, LJF, widest/narrowest first, WFP).

These policies re-order the wait queue by a priority key before applying the
same start rule as FCFS (strict: the highest-priority job blocks) or
first-fit (greedy).  They exist mainly as comparison points for the metric-
and objective-sensitivity experiments (E3/E4): re-ordering policies trade the
fairness of FCFS for better packing or better mean response time, and which
of them "wins" depends strongly on the metric — which is the paper's point.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.api.registry import register_scheduler
from repro.schedulers.base import JobRequest, Scheduler, SchedulerState

__all__ = [
    "PriorityScheduler",
    "ShortestJobFirstScheduler",
    "LongestJobFirstScheduler",
    "NarrowestFirstScheduler",
    "WidestFirstScheduler",
    "SmallestAreaFirstScheduler",
    "WFPScheduler",
]


class PriorityScheduler(Scheduler):
    """Order the queue by ``key`` (ascending) and start jobs greedily or strictly.

    Parameters
    ----------
    key:
        Priority function of a :class:`JobRequest` and the current state;
        smaller values start earlier.
    strict:
        If true, the highest-priority unstartable job blocks the rest of the
        queue (like FCFS); if false, later jobs that fit may start (greedy).
    name:
        Policy name for reports.
    """

    def __init__(
        self,
        key: Callable[[JobRequest, SchedulerState], float],
        strict: bool = False,
        name: str = "priority",
        outage_aware: bool = False,
    ) -> None:
        self._key = key
        self.strict = strict
        self.name = name
        self.outage_aware = outage_aware

    def ordered_queue(self, state: SchedulerState) -> List[JobRequest]:
        """The queue sorted by priority (ties broken by arrival order)."""
        return sorted(
            state.queue, key=lambda r: (self._key(r, state), r.submit_time, r.job_id)
        )

    def select_jobs(self, state: SchedulerState) -> List[JobRequest]:
        started: List[JobRequest] = []
        free = state.free_processors
        for request in self.ordered_queue(state):
            if self.job_fits_now(state, request, free):
                started.append(request)
                free -= request.processors
            elif self.strict:
                break
        return started


@register_scheduler("sjf")
class ShortestJobFirstScheduler(PriorityScheduler):
    """Shortest estimated runtime first (classic SJF on user estimates)."""

    def __init__(self, strict: bool = False, outage_aware: bool = False) -> None:
        super().__init__(
            key=lambda r, s: r.estimate,
            strict=strict,
            name="sjf",
            outage_aware=outage_aware,
        )


@register_scheduler("ljf")
class LongestJobFirstScheduler(PriorityScheduler):
    """Longest estimated runtime first (the adversarial counterpart of SJF)."""

    def __init__(self, strict: bool = False, outage_aware: bool = False) -> None:
        super().__init__(
            key=lambda r, s: -r.estimate,
            strict=strict,
            name="ljf",
            outage_aware=outage_aware,
        )


@register_scheduler("narrowest-first")
class NarrowestFirstScheduler(PriorityScheduler):
    """Fewest requested processors first (favours small jobs, packs well)."""

    def __init__(self, strict: bool = False, outage_aware: bool = False) -> None:
        super().__init__(
            key=lambda r, s: r.processors,
            strict=strict,
            name="narrowest-first",
            outage_aware=outage_aware,
        )


@register_scheduler("widest-first")
class WidestFirstScheduler(PriorityScheduler):
    """Most requested processors first (drains large jobs early)."""

    def __init__(self, strict: bool = False, outage_aware: bool = False) -> None:
        super().__init__(
            key=lambda r, s: -r.processors,
            strict=strict,
            name="widest-first",
            outage_aware=outage_aware,
        )


@register_scheduler("smallest-area-first")
class SmallestAreaFirstScheduler(PriorityScheduler):
    """Smallest processors x estimated-runtime product first."""

    def __init__(self, strict: bool = False, outage_aware: bool = False) -> None:
        super().__init__(
            key=lambda r, s: r.processors * max(r.estimate, 1),
            strict=strict,
            name="smallest-area-first",
            outage_aware=outage_aware,
        )


@register_scheduler("wfp")
class WFPScheduler(PriorityScheduler):
    """Waiting-time-weighted fair-share-like priority (WFP3-style).

    Priority grows with time spent waiting relative to the job's estimated
    runtime and shrinks with its size, so long-waiting short/narrow jobs jump
    the queue while fresh wide jobs yield.  The exponent 3 follows the WFP3
    policy studied in later scheduling literature; it is included as a
    representative "tunable composite priority" for experiment E4.
    """

    def __init__(self, exponent: float = 3.0, strict: bool = False, outage_aware: bool = False) -> None:
        self.exponent = exponent
        super().__init__(
            key=self._priority,
            strict=strict,
            name=f"wfp{exponent:g}",
            outage_aware=outage_aware,
        )

    def _priority(self, request: JobRequest, state: SchedulerState) -> float:
        waited = max(state.now - request.submit_time, 0.0)
        estimate = max(request.estimate, 1.0)
        score = ((waited / estimate) ** self.exponent) * (1.0 / max(request.processors, 1))
        return -score  # larger score = higher priority = earlier in ascending sort
