"""Command-line interface for the most common standalone tasks.

The library is primarily used as an API, but the workflows the standard is
meant to ease — validating a trace, summarizing it, converting a raw log,
generating model workloads and outage logs, running scenarios, running an
experiment — are all available from the shell::

    python -m repro.cli validate  trace.swf
    python -m repro.cli stats     trace.swf
    python -m repro.cli convert   accounting.csv converted.swf --computer "IBM SP2"
    python -m repro.cli generate  lublin99 out.swf --jobs 5000 --machine-size 128 --load 0.7
    python -m repro.cli outages   128 2592000 outages.log --seed 1
    python -m repro.cli simulate  trace.swf --policy easy
    python -m repro.cli simulate  lublin99:jobs=2000,seed=1 --policy gang:slots=3 --load 0.8
    python -m repro.cli simulate  trace:ctc-sp2,load=1.2,slice=0:7d --policy easy
    python -m repro.cli run       scenarios.json --workers 4
    python -m repro.cli experiment e03
    python -m repro.cli trace ls
    python -m repro.cli trace info ctc-sp2,load=1.2,slice=0:7d
    python -m repro.cli trace build ctc-sp2,load=1.2 --output week.swf
    python -m repro.cli bench run smoke --workers 2
    python -m repro.cli bench run smoke --timings --trace trace.json
    python -m repro.cli bench compare fcfs backfill --suite std-space
    python -m repro.cli bench report --timings
    python -m repro.cli bench trend --baseline BENCH_bench_smoke.json --suite smoke
    python -m repro.cli bench gc --max-age-days 30
    python -m repro.cli trace gc --dry-run
    python -m repro.cli dist enqueue std-space --queue /shared/queue
    python -m repro.cli dist worker --queue /shared/queue --store /shared/store
    python -m repro.cli dist status --queue /shared/queue
    python -m repro.cli dist gather std-space --queue /shared/queue
    python -m repro.cli serve --port 8765 --workers 2 --queue-limit 8
    python -m repro.cli profile "sjf:strict=true" --jobs 2000 --output profile.txt
    python -m repro.cli --log-level debug --log-format json bench run smoke

Policies and workload models are resolved through the registries in
:mod:`repro.api` — every registered name is reachable, and spec strings
(``sjf:strict=true``) pass constructor arguments straight from the shell.
Every command prints a short human-readable report and exits non-zero on
failure (e.g. an unclean trace), so the tools compose with shell scripts.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.api.registry import (
    RegistryError,
    metric_registry,
    model_names,
    scheduler_names,
)
from repro.api.runner import resolve_workload, run, run_many
from repro.api.scenario import Scenario
from repro.core.outage import OutageModel, generate_outages, write_outage_log
from repro.core.swf import (
    convert_accounting_csv,
    parse_swf,
    summarize,
    validate,
    write_swf,
)
from repro.data import archive_names
from repro.evaluation import format_table

__all__ = ["main", "build_parser"]

#: Experiments reachable from ``experiment``.
EXPERIMENTS = (
    "e01", "e02", "e03", "e04", "e05", "e06", "e07", "e08", "e09", "e10", "e11",
)


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser (exposed for testing and documentation)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Benchmarks and standards for the evaluation of parallel job schedulers",
    )
    parser.add_argument(
        "--log-level",
        default=None,
        choices=["debug", "info", "warning", "error"],
        help="structured-log verbosity on stderr (default: $REPRO_LOG, "
        "else info for serve and warning elsewhere)",
    )
    parser.add_argument(
        "--log-format",
        default=None,
        choices=["text", "json"],
        help="log line format: human key=value text (default) or one JSON "
        "object per line for log shippers (default: $REPRO_LOG_FORMAT)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_validate = sub.add_parser("validate", help="check an SWF file against the consistency rules")
    p_validate.add_argument("trace", help="path to the SWF file")
    p_validate.add_argument("--max-issues", type=int, default=20, help="issues to print")

    p_stats = sub.add_parser("stats", help="summarize an SWF file")
    p_stats.add_argument("trace", help="path to the SWF file")
    p_stats.add_argument("--machine-size", type=int, default=None)

    p_convert = sub.add_parser("convert", help="convert a PBS/NQS-style accounting CSV to SWF")
    p_convert.add_argument("raw", help="path to the accounting CSV")
    p_convert.add_argument("output", help="path of the SWF file to write")
    p_convert.add_argument("--computer", default="unknown parallel machine")
    p_convert.add_argument("--installation", default="unknown installation")
    p_convert.add_argument("--max-nodes", type=int, default=None)

    p_generate = sub.add_parser("generate", help="generate a synthetic workload (model or archive)")
    p_generate.add_argument(
        "source",
        help=f"model spec ({', '.join(model_names())}) or archive ({', '.join(archive_names())})",
    )
    p_generate.add_argument("output", help="path of the SWF file to write")
    p_generate.add_argument("--jobs", type=int, default=5000)
    p_generate.add_argument("--machine-size", type=int, default=128)
    p_generate.add_argument("--load", type=float, default=None, help="target offered load")
    p_generate.add_argument("--seed", type=int, default=None)

    p_outages = sub.add_parser("outages", help="generate a standard-format outage log")
    p_outages.add_argument("machine_size", type=int)
    p_outages.add_argument("horizon_seconds", type=int)
    p_outages.add_argument("output", help="path of the outage log to write")
    p_outages.add_argument("--mtbf-days", type=float, default=7.0)
    p_outages.add_argument("--seed", type=int, default=None)

    p_simulate = sub.add_parser(
        "simulate", help="replay a workload (SWF path or model spec) through a policy"
    )
    p_simulate.add_argument(
        "workload", help="path to an SWF file, or a workload spec like lublin99:jobs=2000"
    )
    p_simulate.add_argument(
        "--policy", "--scheduler", dest="policy", default="easy",
        help=f"policy spec; registered: {', '.join(scheduler_names())}",
    )
    p_simulate.add_argument("--machine-size", type=int, default=None)
    p_simulate.add_argument("--jobs", type=int, default=2000, help="jobs when generating from a model")
    p_simulate.add_argument("--load", type=float, default=None, help="rescale to this offered load")
    p_simulate.add_argument("--seed", type=int, default=None)
    p_simulate.add_argument("--outages", default=None, help="path to a standard outage log")
    p_simulate.add_argument(
        "--feedback", action="store_true",
        help="closed replay: honor the trace's job dependencies and think times",
    )
    p_simulate.add_argument("--max-restarts", type=int, default=10)
    p_simulate.add_argument("--tau", type=float, default=10.0, help="bounded-slowdown threshold")
    p_simulate.add_argument(
        "--metrics", default=None,
        help="comma-separated metric columns to print (default: the standard table)",
    )

    p_run = sub.add_parser(
        "run", help="run scenarios from a JSON file (one object or a list)"
    )
    p_run.add_argument("scenarios", help="path to a JSON scenario file")
    p_run.add_argument("--workers", type=int, default=None, help="fan out over N processes")

    p_experiment = sub.add_parser("experiment", help="run one of the E1..E11 experiment harnesses")
    p_experiment.add_argument("which", choices=EXPERIMENTS)

    p_trace = sub.add_parser(
        "trace",
        help="the trace catalog: content-addressed workload traces with transforms",
    )
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)

    t_ls = trace_sub.add_parser("ls", help="list registered catalog traces")
    t_ls.add_argument("--jobs", type=int, default=None, help="jobs for the shown digests")

    t_info = trace_sub.add_parser(
        "info", help="digest, pipeline, and cache status of a trace spec"
    )
    t_info.add_argument("spec", help="trace spec, with or without the trace: prefix")
    t_info.add_argument("--jobs", type=int, default=None)
    t_info.add_argument("--seed", type=int, default=None)

    t_build = trace_sub.add_parser(
        "build", help="materialize a trace through the cache (reports hit/miss)"
    )
    t_build.add_argument("spec", help="trace spec, with or without the trace: prefix")
    t_build.add_argument("--jobs", type=int, default=None)
    t_build.add_argument("--seed", type=int, default=None)
    t_build.add_argument("--output", default=None, help="also write the SWF here")
    t_build.add_argument(
        "--no-cache", action="store_true", help="build fresh; leave the cache untouched"
    )

    t_gc = trace_sub.add_parser(
        "gc", help="evict cached trace artifacts by age and stale format version"
    )
    t_gc.add_argument(
        "--max-age-days", type=float, default=None,
        help="also evict artifacts older than this many days",
    )
    t_gc.add_argument(
        "--keep-stale", action="store_true",
        help="keep artifacts from other TRACE_FORMAT versions",
    )
    t_gc.add_argument("--dry-run", action="store_true", help="report without deleting")
    t_gc.add_argument(
        "--cache", default=None,
        help="trace-cache directory (default: $REPRO_TRACE_CACHE or ~/.cache/repro-traces)",
    )

    p_bench = sub.add_parser(
        "bench",
        help="standardized benchmark suites: cached replications, CIs, verdicts",
    )
    bench_sub = p_bench.add_subparsers(dest="bench_command", required=True)

    def _bench_common(sub_parser) -> None:
        sub_parser.add_argument("--workers", type=int, default=None, help="fan out over N processes")
        sub_parser.add_argument(
            "--no-cache", action="store_true",
            help="ignore cached results (fresh runs still refresh the store)",
        )
        sub_parser.add_argument(
            "--store", default=None,
            help="result-store directory (default: $REPRO_BENCH_STORE or ~/.cache/repro-bench)",
        )
        sub_parser.add_argument("--confidence", type=float, default=0.95)
        sub_parser.add_argument("--json", dest="json_out", default=None, help="write the machine-readable result here")
        sub_parser.add_argument("--markdown", dest="markdown_out", default=None, help="write the markdown report here")

    from repro.bench.suite import suite_names

    b_run = bench_sub.add_parser("run", help="run a registered suite with cached replications")
    b_run.add_argument("suite", help=f"suite name; registered: {', '.join(suite_names())}")
    b_run.add_argument(
        "--timings", action="store_true",
        help="also print the wall-clock phase breakdown (cache lookup, "
        "materialize, simulate, metrics, store writes)",
    )
    b_run.add_argument(
        "--trace", dest="trace_out", default=None,
        help="write the run's span timeline here as Chrome trace-event JSON "
        "(opens in Perfetto / chrome://tracing)",
    )
    _bench_common(b_run)

    b_compare = bench_sub.add_parser(
        "compare", help="paired-difference comparison of two policies over a suite"
    )
    b_compare.add_argument("policy_a", help="first policy spec (e.g. fcfs)")
    b_compare.add_argument("policy_b", help="second policy spec (e.g. backfill)")
    b_compare.add_argument("--suite", required=True, help="suite whose contexts and seeds to use")
    _bench_common(b_compare)

    b_report = bench_sub.add_parser(
        "report", help="aggregate everything in the result store (no simulation)"
    )
    b_report.add_argument("--suite", default=None, help="restrict to one suite")
    b_report.add_argument(
        "--store", default=None,
        help="result-store directory (default: $REPRO_BENCH_STORE or ~/.cache/repro-bench)",
    )
    b_report.add_argument("--confidence", type=float, default=0.95)
    b_report.add_argument("--markdown", dest="markdown_out", default=None, help="write the markdown report here")
    b_report.add_argument(
        "--timings", action="store_true",
        help="add a wall-clock column (mean per-replication run seconds)",
    )

    b_trend = bench_sub.add_parser(
        "trend",
        help="compare phase timings against a committed baseline; "
        "exits 1 when a phase regressed beyond tolerance",
    )
    b_trend.add_argument(
        "--baseline", required=True,
        help="baseline JSON: a committed BENCH_*.json trajectory file, a "
        "bench run --json dump, or a bare {phase: seconds} object",
    )
    b_trend.add_argument(
        "--current", default=None,
        help="current-run JSON (same accepted shapes); "
        "alternatively use --suite to run one now",
    )
    b_trend.add_argument(
        "--suite", default=None,
        help="run this suite now and compare its timings (cold: implies --no-cache)",
    )
    b_trend.add_argument(
        "--tolerance", type=float, default=0.5,
        help="relative headroom: current may be up to baseline*(1+tolerance) "
        "(default 0.5, i.e. 50 percent slower)",
    )
    b_trend.add_argument(
        "--min-seconds", type=float, default=0.005,
        help="absolute noise floor: a phase must also be slower by more "
        "than this many seconds to count (default 0.005)",
    )
    _bench_common(b_trend)

    b_gc = bench_sub.add_parser(
        "gc", help="evict result-store entries by age and stale code version"
    )
    b_gc.add_argument(
        "--max-age-days", type=float, default=None,
        help="also evict entries older than this many days",
    )
    b_gc.add_argument(
        "--keep-stale", action="store_true",
        help="keep entries from other code/STORE_VERSION generations",
    )
    b_gc.add_argument("--dry-run", action="store_true", help="report without deleting")
    b_gc.add_argument(
        "--store", default=None,
        help="result-store directory (default: $REPRO_BENCH_STORE or ~/.cache/repro-bench)",
    )

    p_dist = sub.add_parser(
        "dist",
        help="distributed suite execution: a file-backed work queue sharded "
        "across processes/hosts sharing one result store",
    )
    dist_sub = p_dist.add_subparsers(dest="dist_command", required=True)

    def _dist_common(sub_parser) -> None:
        sub_parser.add_argument(
            "--queue", default=None,
            help="work-queue directory (default: $REPRO_DIST_QUEUE or ~/.cache/repro-dist)",
        )
        sub_parser.add_argument(
            "--store", default=None,
            help="result-store directory (default: $REPRO_BENCH_STORE or ~/.cache/repro-bench)",
        )

    d_enqueue = dist_sub.add_parser(
        "enqueue", help="expand a suite into per-key work units on the queue"
    )
    d_enqueue.add_argument("suite", help=f"suite name; registered: {', '.join(suite_names())}")
    _dist_common(d_enqueue)

    d_worker = dist_sub.add_parser(
        "worker", help="claim and simulate pending units until the queue drains"
    )
    _dist_common(d_worker)
    d_worker.add_argument(
        "--ttl", type=float, default=120.0,
        help="lease time-to-live in seconds; an unrefreshed lease older than "
        "this is reclaimable (default 120)",
    )
    d_worker.add_argument(
        "--once", action="store_true",
        help="one pass over the pending units, then exit (no waiting on "
        "units leased elsewhere)",
    )
    d_worker.add_argument(
        "--max-units", type=int, default=None,
        help="exit after simulating this many units",
    )
    d_worker.add_argument(
        "--worker-id", default=None,
        help="stable worker identity for leases/stats (default: host-pid)",
    )
    d_worker.add_argument(
        "--poll-interval", type=float, default=0.5,
        help="seconds to wait between scans when every pending unit is "
        "leased elsewhere (default 0.5)",
    )

    d_status = dist_sub.add_parser(
        "status", help="per-suite progress of the queue against the store"
    )
    _dist_common(d_status)
    d_status.add_argument("--ttl", type=float, default=120.0, help="lease TTL for expiry classification")
    d_status.add_argument("--json", dest="json_out", default=None, help="write the machine-readable status here")

    d_gather = dist_sub.add_parser(
        "gather", help="aggregate a completed suite into a normal suite report"
    )
    d_gather.add_argument("suite", help="enqueued suite name")
    _dist_common(d_gather)
    d_gather.add_argument("--confidence", type=float, default=0.95)
    d_gather.add_argument(
        "--allow-partial", action="store_true",
        help="skip the completeness gate and simulate any remainder locally",
    )
    d_gather.add_argument("--json", dest="json_out", default=None, help="write the machine-readable result here")
    d_gather.add_argument("--markdown", dest="markdown_out", default=None, help="write the markdown report here")

    p_serve = sub.add_parser(
        "serve",
        help="run the evaluation service daemon (coalescing, digest-keyed caching)",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8765, help="0 binds an ephemeral port")
    p_serve.add_argument(
        "--workers", type=int, default=2, help="concurrent evaluation jobs"
    )
    p_serve.add_argument(
        "--queue-limit", type=int, default=8,
        help="admitted-but-waiting jobs before submissions get HTTP 429",
    )
    p_serve.add_argument(
        "--run-workers", type=int, default=None,
        help="processes each job's run_many fan-out may use (default: serial)",
    )
    p_serve.add_argument(
        "--store", default=None,
        help="result-store directory (default: $REPRO_BENCH_STORE or ~/.cache/repro-bench)",
    )
    p_serve.add_argument(
        "--no-cache", action="store_true",
        help="ignore cached results (fresh runs still refresh the store)",
    )
    p_serve.add_argument(
        "--journal", default=None,
        help="job-journal path (default: <store>/journal.jsonl); replayed "
        "on start so finished digests survive restarts",
    )
    p_serve.add_argument(
        "--no-journal", action="store_true",
        help="don't persist or replay the job journal",
    )
    p_serve.add_argument(
        "--dist-queue", default=None,
        help="delegate suite jobs to this distributed work queue directory "
        "instead of running them in-process (external workers must drain it)",
    )

    p_profile = sub.add_parser(
        "profile",
        help="cProfile a suite or a single scenario and print the hotspot table",
    )
    p_profile.add_argument(
        "target",
        help="a registered suite name, or a policy spec (e.g. sjf:strict=true) "
        "to profile one scenario",
    )
    p_profile.add_argument(
        "--workload", default="lublin99",
        help="workload spec when profiling a policy spec (default: lublin99)",
    )
    p_profile.add_argument("--jobs", type=int, default=2000, help="jobs when generating from a model")
    p_profile.add_argument("--machine-size", type=int, default=128)
    p_profile.add_argument("--seed", type=int, default=1)
    p_profile.add_argument("--top", type=int, default=25, help="hotspot rows to print")
    p_profile.add_argument(
        "--output", default=None,
        help="also write the hotspot table (or raw pstats data with --raw) here",
    )
    p_profile.add_argument(
        "--raw", action="store_true",
        help="with --output: dump raw pstats data (for snakeviz et al.) "
        "instead of the text table",
    )

    return parser


# ----------------------------------------------------------------------
# command implementations
# ----------------------------------------------------------------------
def _cmd_validate(args) -> int:
    workload = parse_swf(args.trace)
    report = validate(workload)
    print(f"{args.trace}: {len(workload)} jobs, {report.summary()}")
    for issue in report.issues[: args.max_issues]:
        print(f"  {issue}")
    if len(report.issues) > args.max_issues:
        print(f"  ... and {len(report.issues) - args.max_issues} more")
    return 0 if report.is_clean else 1


def _cmd_stats(args) -> int:
    workload = parse_swf(args.trace)
    stats = summarize(workload, machine_size=args.machine_size)
    print(format_table([stats.as_dict()]))
    return 0


def _cmd_convert(args) -> int:
    with open(args.raw, "r", encoding="utf-8") as handle:
        text = handle.read()
    workload = convert_accounting_csv(
        text,
        computer=args.computer,
        installation=args.installation,
        max_nodes=args.max_nodes,
    )
    report = validate(workload)
    write_swf(workload, args.output)
    print(f"wrote {args.output}: {len(workload)} jobs, {report.summary()}")
    return 0 if report.is_clean else 1


def _cmd_generate(args) -> int:
    # The same resolution path `simulate` and `run` use: model specs
    # (including jobs=/seed= kwargs), archive names, and load rescaling.
    scenario = Scenario(
        workload=args.source,
        machine_size=args.machine_size,
        jobs=args.jobs,
        load=args.load,
        seed=args.seed,
    )
    try:
        workload = resolve_workload(scenario)
    except (RegistryError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    write_swf(workload, args.output)
    print(
        f"wrote {args.output}: {len(workload)} jobs, offered load "
        f"{workload.offered_load():.2f} on {workload.header.max_nodes} nodes"
    )
    return 0


def _cmd_outages(args) -> int:
    log = generate_outages(
        args.machine_size,
        args.horizon_seconds,
        model=OutageModel(mtbf_seconds=args.mtbf_days * 24 * 3600),
        seed=args.seed,
    )
    write_outage_log(log, args.output)
    print(
        f"wrote {args.output}: {len(log)} outages "
        f"({len(log.unscheduled())} failures, {len(log.scheduled())} maintenance windows)"
    )
    return 0


def _print_reports(results, metrics: Optional[str]) -> None:
    if metrics:
        names = [m.strip() for m in metrics.split(",") if m.strip()]
        extractors = [(name, metric_registry.get(name)) for name in names]
        rows = [
            {
                "scenario": sr.scenario.label,
                "scheduler": sr.result.scheduler_name,
                **{name: round(fn(sr.report), 4) for name, fn in extractors},
            }
            for sr in results
        ]
    else:
        rows = [sr.row() for sr in results]
    print(format_table(rows))


def _cmd_simulate(args) -> int:
    scenario = Scenario(
        workload=args.workload,
        policy=args.policy,
        machine_size=args.machine_size,
        jobs=args.jobs,
        load=args.load,
        seed=args.seed,
        outages=args.outages,
        honor_dependencies=args.feedback,
        max_restarts=args.max_restarts,
        tau=args.tau,
    )
    try:
        result = run(scenario)
        _print_reports([result], args.metrics)
    except (RegistryError, ValueError, OSError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    return 0


def _cmd_run(args) -> int:
    try:
        with open(args.scenarios, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        if isinstance(data, dict):
            data = [data]
        scenarios = [Scenario.from_dict(item) for item in data]
        results = run_many(scenarios, workers=args.workers)
    except (RegistryError, ValueError, OSError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    _print_reports(results, None)
    return 0


def _write_text(path: Optional[str], text: str) -> None:
    if path:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)


def _cmd_trace(args) -> int:
    from repro.traces import TraceCache, trace_from_spec, trace_names, trace_registry

    try:
        if args.trace_command == "gc":
            cache = TraceCache(args.cache)
            stats = cache.gc(
                max_age_days=args.max_age_days,
                drop_stale=not args.keep_stale,
                dry_run=args.dry_run,
            )
            print(f"trace cache {cache.root}: {stats.summary()}")
            return 0

        if args.trace_command == "ls":
            rows = []
            for name in trace_names():
                trace = trace_from_spec(name, jobs=args.jobs)
                factory = trace_registry.get(name)
                rows.append(
                    {
                        "trace": name,
                        "digest": trace.digest[:12],
                        "spec": trace.spec,
                        "description": (factory.__doc__ or "").strip(),
                    }
                )
            print(format_table(rows))
            return 0

        trace = trace_from_spec(args.spec, jobs=args.jobs, seed=args.seed)
        from repro.traces import SwfFileSource

        if isinstance(trace.source, SwfFileSource) and (
            args.jobs is not None or args.seed is not None
        ):
            # A file trace is fully determined by its content; dropping the
            # flags silently would let a user believe they bounded the build.
            print(
                f"{args.spec!r} is a file trace: --jobs/--seed do not apply "
                "(its content is the trace)",
                file=sys.stderr,
            )
            return 2
        cache = TraceCache()
        if args.trace_command == "info":
            cached = trace.digest in cache
            print(f"spec:    {trace.spec}")
            print(f"name:    {trace.name}")
            print(f"digest:  {trace.digest}")
            print(f"family:  {trace.family_digest}")
            print(f"source:  {trace.source.identity()}")
            for i, transform in enumerate(trace.transforms, start=1):
                print(f"step {i}:  {transform.identity()}")
            print(f"cache:   {cache.path_for(trace.digest)}"
                  f" ({'present' if cached else 'absent'})")
            return 0

        # build
        workload = trace.materialize(cache=None if args.no_cache else cache,
                                     use_cache=not args.no_cache)
        served = "built fresh" if args.no_cache else (
            "cache hit" if cache.hits else "built and cached"
        )
        if args.output:
            write_swf(workload, args.output)
        destination = f"; wrote {args.output}" if args.output else ""
        machine = workload.header.max_nodes
        print(
            f"{trace.spec}\ndigest {trace.digest} ({served}): "
            f"{len(workload)} jobs, offered load "
            f"{workload.offered_load(machine):.2f} on {machine} nodes"
            f"{destination}"
        )
        return 0
    except (RegistryError, KeyError, ValueError, OSError) as exc:
        print(str(exc), file=sys.stderr)
        return 2


def _cmd_bench(args) -> int:
    from repro.bench.report import (
        comparison_json,
        comparison_markdown,
        report_from_store,
        suite_json,
        suite_markdown,
        timings_markdown,
        to_json_text,
    )
    from repro.bench.runner import compare_policies, run_suite
    from repro.bench.store import ResultStore
    from repro.evaluation import format_table
    from repro.obs.log import get_logger

    log = get_logger("bench")
    store = ResultStore(args.store)

    def _progress(done: int, total: int, cached: bool) -> None:
        log.info(
            "progress", done=done, total=total,
            served="cache" if cached else "simulated",
        )

    try:
        if args.bench_command == "run":
            tracer = None
            if args.trace_out:
                from repro.obs.trace import Tracer, trace_scope

                tracer = Tracer()
                scope = trace_scope(tracer)
            else:
                from contextlib import nullcontext

                scope = nullcontext()
            with scope:
                result = run_suite(
                    args.suite,
                    workers=args.workers,
                    store=store,
                    use_cache=not args.no_cache,
                    confidence=args.confidence,
                    progress=_progress,
                )
            print(format_table(result.rows()))
            print(result.summary() + f"; store: {store.root}")
            if tracer is not None:
                from repro.obs.trace import write_chrome_trace

                write_chrome_trace(tracer, args.trace_out)
                print(
                    f"wrote Chrome trace ({len(tracer.spans)} spans) to "
                    f"{args.trace_out} — open in Perfetto or chrome://tracing"
                )
            if args.timings:
                print()
                print(timings_markdown(result.timings))
            _write_text(args.json_out, to_json_text(suite_json(result)))
            _write_text(args.markdown_out, suite_markdown(result))
        elif args.bench_command == "trend":
            from repro.bench.trend import (
                compare_timings,
                load_timings,
                trend_json,
                trend_markdown,
            )

            if bool(args.current) == bool(args.suite):
                print(
                    "bench trend needs exactly one of --current or --suite",
                    file=sys.stderr,
                )
                return 2
            baseline, baseline_label = load_timings(args.baseline)
            if args.current:
                current, current_label = load_timings(args.current)
            else:
                # A live comparison must run cold: cache-served phases
                # report ~0s and would mask any regression.
                result = run_suite(
                    args.suite,
                    workers=args.workers,
                    store=store,
                    use_cache=False,
                    confidence=args.confidence,
                    progress=_progress,
                )
                current = dict(result.timings)
                current_label = f"{args.suite} (live)"
            report = compare_timings(
                baseline,
                current,
                tolerance=args.tolerance,
                min_seconds=args.min_seconds,
                baseline_label=baseline_label,
                current_label=current_label,
            )
            text = trend_markdown(report)
            print(text)
            _write_text(args.markdown_out, text + "\n")
            _write_text(args.json_out, to_json_text(trend_json(report)))
            return report.exit_code()
        elif args.bench_command == "compare":
            result = compare_policies(
                args.suite,
                args.policy_a,
                args.policy_b,
                workers=args.workers,
                store=store,
                use_cache=not args.no_cache,
                confidence=args.confidence,
            )
            print(format_table(result.rows()))
            print(result.summary())
            _write_text(args.json_out, to_json_text(comparison_json(result)))
            _write_text(args.markdown_out, comparison_markdown(result))
        elif args.bench_command == "gc":
            stats = store.gc(
                max_age_days=args.max_age_days,
                drop_stale=not args.keep_stale,
                dry_run=args.dry_run,
            )
            print(f"bench store {store.root}: {stats.summary()}")
        else:  # report
            text = report_from_store(
                store,
                suite=args.suite,
                confidence=args.confidence,
                timings=args.timings,
            )
            print(text)
            _write_text(args.markdown_out, text)
    except (RegistryError, ValueError, OSError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    return 0


def _cmd_dist(args) -> int:
    from repro.bench.store import ResultStore
    from repro.dist import (
        QueueIncompleteError,
        WorkQueue,
        gather,
        run_worker,
    )
    from repro.obs.log import get_logger

    queue = WorkQueue(args.queue)
    store = ResultStore(args.store)
    try:
        if args.dist_command == "enqueue":
            result = queue.enqueue_suite(args.suite, store=store)
            print(result.summary())
            print(f"queue: {queue.root}; store: {store.root}")
        elif args.dist_command == "worker":
            log = get_logger("dist")

            def _progress(stats, unit) -> None:
                log.info(
                    "unit done", worker=stats.worker_id, case=unit.case,
                    simulated=stats.simulated,
                )

            stats = run_worker(
                queue,
                store,
                ttl=args.ttl,
                once=args.once,
                poll_interval=args.poll_interval,
                max_units=args.max_units,
                worker_id=args.worker_id,
                progress=_progress,
            )
            print(stats.summary())
        elif args.dist_command == "status":
            progress = queue.status(store, ttl=args.ttl)
            if not progress:
                print(f"queue {queue.root}: no suites enqueued")
            for suite_progress in progress:
                print(suite_progress.summary())
            workers = queue.worker_stats()
            for worker_id in sorted(workers):
                record = workers[worker_id]
                print(
                    f"  worker {worker_id}: {record.get('simulated', 0)} "
                    f"simulated, {record.get('events_processed', 0)} events"
                )
            if args.json_out:
                payload = {
                    "queue": str(queue.root),
                    "store": str(store.root),
                    "suites": [
                        {
                            "suite": p.suite,
                            "total": p.total,
                            "done": p.done,
                            "pending": p.pending,
                            "leased": p.leased,
                            "expired": p.expired,
                            "complete": p.complete,
                        }
                        for p in progress
                    ],
                    "workers": workers,
                }
                _write_text(args.json_out, json.dumps(payload, indent=2, sort_keys=True) + "\n")
        else:  # gather
            from repro.bench.report import suite_json, suite_markdown, to_json_text

            try:
                result = gather(
                    queue,
                    args.suite,
                    store,
                    confidence=args.confidence,
                    allow_partial=args.allow_partial,
                )
            except QueueIncompleteError as exc:
                print(str(exc), file=sys.stderr)
                return 3
            print(format_table(result.rows()))
            print(result.summary() + f"; store: {store.root}")
            _write_text(args.json_out, to_json_text(suite_json(result)))
            _write_text(args.markdown_out, suite_markdown(result))
    except (RegistryError, ValueError, OSError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    return 0


def _cmd_serve(args) -> int:
    from repro.serve.daemon import ServeConfig, serve

    try:
        return serve(
            ServeConfig(
                host=args.host,
                port=args.port,
                workers=args.workers,
                queue_limit=args.queue_limit,
                run_workers=args.run_workers,
                store=args.store,
                use_cache=not args.no_cache,
                journal=args.journal,
                use_journal=not args.no_journal,
                dist_queue=args.dist_queue,
            )
        )
    except (ValueError, OSError) as exc:
        print(str(exc), file=sys.stderr)
        return 2


def _cmd_profile(args) -> int:
    from repro.bench.suite import suite_names
    from repro.obs import hotspot_table, profile_call

    if args.raw and not args.output:
        print("--raw needs --output (a path for the pstats dump)", file=sys.stderr)
        return 2
    try:
        if args.target in suite_names():
            from repro.bench.runner import run_suite

            # No store: a cache-served suite profiles its lookups, not the
            # simulation, which is never what the caller is after.
            profiled = profile_call(
                lambda: run_suite(args.target, store=None, use_cache=False),
                top=args.top,
            )
            subject = f"suite {args.target!r}"
        else:
            scenario = Scenario(
                workload=args.workload,
                policy=args.target,
                machine_size=args.machine_size,
                jobs=args.jobs,
                seed=args.seed,
            )
            profiled = profile_call(lambda: run(scenario), top=args.top)
            subject = f"{args.target!r} on {scenario.label}"
    except (RegistryError, ValueError, OSError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    table = f"profile of {subject}:\n{hotspot_table(profiled)}"
    print(table)
    if args.output:
        if args.raw:
            profiled.dump_stats(args.output)
            print(f"wrote raw pstats dump to {args.output}")
        else:
            _write_text(args.output, table + "\n")
            print(f"wrote hotspot table to {args.output}")
    return 0


def _cmd_experiment(args) -> int:
    from repro import experiments as exp

    module = {
        "e01": exp.e01_entities,
        "e02": exp.e02_swf_roundtrip,
        "e03": exp.e03_metric_ranking,
        "e04": exp.e04_objective_weights,
        "e05": exp.e05_feedback,
        "e06": exp.e06_outages,
        "e07": exp.e07_models,
        "e08": exp.e08_moldable,
        "e09": exp.e09_grid,
        "e10": exp.e10_warmstones,
        "e11": exp.e11_traces,
    }[args.which]
    result = module.run()
    print(format_table(result.rows()))
    return 0


_COMMANDS = {
    "validate": _cmd_validate,
    "stats": _cmd_stats,
    "convert": _cmd_convert,
    "generate": _cmd_generate,
    "outages": _cmd_outages,
    "simulate": _cmd_simulate,
    "run": _cmd_run,
    "experiment": _cmd_experiment,
    "trace": _cmd_trace,
    "bench": _cmd_bench,
    "dist": _cmd_dist,
    "serve": _cmd_serve,
    "profile": _cmd_profile,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    from repro.obs.log import configure, resolve_format, resolve_level

    # serve is the one long-running command where the access log is the
    # point; everything else stays quiet unless asked (--log-level or
    # $REPRO_LOG).
    default_level = "info" if args.command == "serve" else "warning"
    try:
        configure(
            resolve_level(args.log_level, default=default_level),
            fmt=resolve_format(args.log_format),
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via main() in tests
    sys.exit(main())
