"""Command-line interface for the most common standalone tasks.

The library is primarily used as an API, but the workflows the standard is
meant to ease — validating a trace, summarizing it, converting a raw log,
generating model workloads and outage logs, running an experiment — are all
available from the shell::

    python -m repro.cli validate  trace.swf
    python -m repro.cli stats     trace.swf
    python -m repro.cli convert   accounting.csv converted.swf --computer "IBM SP2"
    python -m repro.cli generate  lublin99 out.swf --jobs 5000 --machine-size 128 --load 0.7
    python -m repro.cli outages   128 2592000 outages.log --seed 1
    python -m repro.cli simulate  trace.swf --scheduler easy --machine-size 128
    python -m repro.cli experiment e03

Every command prints a short human-readable report and exits non-zero on
failure (e.g. an unclean trace), so the tools compose with shell scripts.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.outage import OutageModel, generate_outages, write_outage_log
from repro.core.swf import (
    convert_accounting_csv,
    parse_swf,
    summarize,
    validate,
    write_swf,
)
from repro.data import ARCHIVES, archive_names, synthetic_archive
from repro.evaluation import format_table, simulate
from repro.metrics import compute_metrics
from repro.schedulers import (
    ConservativeBackfillScheduler,
    EasyBackfillScheduler,
    FCFSScheduler,
    FirstFitScheduler,
    ShortestJobFirstScheduler,
)
from repro.workloads import (
    Downey97Model,
    Feitelson96Model,
    Jann97Model,
    Lublin99Model,
    SessionModel,
    UniformModel,
)

__all__ = ["main", "build_parser"]

#: Workload models reachable from ``generate``.
MODELS = {
    "feitelson96": Feitelson96Model,
    "jann97": Jann97Model,
    "lublin99": Lublin99Model,
    "downey97": Downey97Model,
    "uniform": UniformModel,
    "sessions": SessionModel,
}

#: Scheduling policies reachable from ``simulate``.
SCHEDULERS = {
    "fcfs": FCFSScheduler,
    "first-fit": FirstFitScheduler,
    "sjf": ShortestJobFirstScheduler,
    "easy": EasyBackfillScheduler,
    "conservative": ConservativeBackfillScheduler,
}

#: Experiments reachable from ``experiment``.
EXPERIMENTS = (
    "e01", "e02", "e03", "e04", "e05", "e06", "e07", "e08", "e09", "e10",
)


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser (exposed for testing and documentation)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Benchmarks and standards for the evaluation of parallel job schedulers",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_validate = sub.add_parser("validate", help="check an SWF file against the consistency rules")
    p_validate.add_argument("trace", help="path to the SWF file")
    p_validate.add_argument("--max-issues", type=int, default=20, help="issues to print")

    p_stats = sub.add_parser("stats", help="summarize an SWF file")
    p_stats.add_argument("trace", help="path to the SWF file")
    p_stats.add_argument("--machine-size", type=int, default=None)

    p_convert = sub.add_parser("convert", help="convert a PBS/NQS-style accounting CSV to SWF")
    p_convert.add_argument("raw", help="path to the accounting CSV")
    p_convert.add_argument("output", help="path of the SWF file to write")
    p_convert.add_argument("--computer", default="unknown parallel machine")
    p_convert.add_argument("--installation", default="unknown installation")
    p_convert.add_argument("--max-nodes", type=int, default=None)

    p_generate = sub.add_parser("generate", help="generate a synthetic workload (model or archive)")
    p_generate.add_argument("source", help=f"model ({', '.join(MODELS)}) or archive ({', '.join(archive_names())})")
    p_generate.add_argument("output", help="path of the SWF file to write")
    p_generate.add_argument("--jobs", type=int, default=5000)
    p_generate.add_argument("--machine-size", type=int, default=128)
    p_generate.add_argument("--load", type=float, default=None, help="target offered load")
    p_generate.add_argument("--seed", type=int, default=None)

    p_outages = sub.add_parser("outages", help="generate a standard-format outage log")
    p_outages.add_argument("machine_size", type=int)
    p_outages.add_argument("horizon_seconds", type=int)
    p_outages.add_argument("output", help="path of the outage log to write")
    p_outages.add_argument("--mtbf-days", type=float, default=7.0)
    p_outages.add_argument("--seed", type=int, default=None)

    p_simulate = sub.add_parser("simulate", help="replay an SWF file through a scheduler")
    p_simulate.add_argument("trace", help="path to the SWF file")
    p_simulate.add_argument("--scheduler", choices=sorted(SCHEDULERS), default="easy")
    p_simulate.add_argument("--machine-size", type=int, default=None)
    p_simulate.add_argument("--tau", type=float, default=10.0, help="bounded-slowdown threshold")

    p_experiment = sub.add_parser("experiment", help="run one of the E1..E10 experiment harnesses")
    p_experiment.add_argument("which", choices=EXPERIMENTS)

    return parser


# ----------------------------------------------------------------------
# command implementations
# ----------------------------------------------------------------------
def _cmd_validate(args) -> int:
    workload = parse_swf(args.trace)
    report = validate(workload)
    print(f"{args.trace}: {len(workload)} jobs, {report.summary()}")
    for issue in report.issues[: args.max_issues]:
        print(f"  {issue}")
    if len(report.issues) > args.max_issues:
        print(f"  ... and {len(report.issues) - args.max_issues} more")
    return 0 if report.is_clean else 1


def _cmd_stats(args) -> int:
    workload = parse_swf(args.trace)
    stats = summarize(workload, machine_size=args.machine_size)
    print(format_table([stats.as_dict()]))
    return 0


def _cmd_convert(args) -> int:
    with open(args.raw, "r", encoding="utf-8") as handle:
        text = handle.read()
    workload = convert_accounting_csv(
        text,
        computer=args.computer,
        installation=args.installation,
        max_nodes=args.max_nodes,
    )
    report = validate(workload)
    write_swf(workload, args.output)
    print(f"wrote {args.output}: {len(workload)} jobs, {report.summary()}")
    return 0 if report.is_clean else 1


def _cmd_generate(args) -> int:
    if args.source in ARCHIVES:
        workload = synthetic_archive(args.source, jobs=args.jobs, seed=args.seed)
    elif args.source in MODELS:
        model = MODELS[args.source](machine_size=args.machine_size)
        if args.load is not None:
            workload = model.generate_with_load(args.jobs, args.load, seed=args.seed)
        else:
            workload = model.generate(args.jobs, seed=args.seed)
    else:
        print(f"unknown source {args.source!r}; models: {sorted(MODELS)}, archives: {archive_names()}",
              file=sys.stderr)
        return 2
    write_swf(workload, args.output)
    print(
        f"wrote {args.output}: {len(workload)} jobs, offered load "
        f"{workload.offered_load():.2f} on {workload.header.max_nodes} nodes"
    )
    return 0


def _cmd_outages(args) -> int:
    log = generate_outages(
        args.machine_size,
        args.horizon_seconds,
        model=OutageModel(mtbf_seconds=args.mtbf_days * 24 * 3600),
        seed=args.seed,
    )
    write_outage_log(log, args.output)
    print(
        f"wrote {args.output}: {len(log)} outages "
        f"({len(log.unscheduled())} failures, {len(log.scheduled())} maintenance windows)"
    )
    return 0


def _cmd_simulate(args) -> int:
    workload = parse_swf(args.trace)
    scheduler = SCHEDULERS[args.scheduler]()
    result = simulate(workload, scheduler, machine_size=args.machine_size)
    report = compute_metrics(result, tau=args.tau)
    print(format_table([report.as_dict()]))
    return 0


def _cmd_experiment(args) -> int:
    from repro import experiments as exp

    module = {
        "e01": exp.e01_entities,
        "e02": exp.e02_swf_roundtrip,
        "e03": exp.e03_metric_ranking,
        "e04": exp.e04_objective_weights,
        "e05": exp.e05_feedback,
        "e06": exp.e06_outages,
        "e07": exp.e07_models,
        "e08": exp.e08_moldable,
        "e09": exp.e09_grid,
        "e10": exp.e10_warmstones,
    }[args.which]
    result = module.run()
    print(format_table(result.rows()))
    return 0


_COMMANDS = {
    "validate": _cmd_validate,
    "stats": _cmd_stats,
    "convert": _cmd_convert,
    "generate": _cmd_generate,
    "outages": _cmd_outages,
    "simulate": _cmd_simulate,
    "experiment": _cmd_experiment,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via main() in tests
    sys.exit(main())
