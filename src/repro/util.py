"""Small shared utilities: atomic file writes, canonical hashing, path specs.

These used to be re-implemented privately by the benchmark store, the trace
cache, and the runner; one copy each means a future fix (fsync discipline, a
new trace extension) lands everywhere at once.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Union

__all__ = ["atomic_write", "canonical_hash", "looks_like_swf_path"]


def atomic_write(path: Union[str, Path], data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (same-dir temp + ``os.replace``).

    The temp name is unique per writer, not per target, so two processes
    racing on one path each publish a complete file — last replace wins —
    instead of interleaving writes; a failure cleans up the temp file and
    leaves any existing target untouched.
    """
    path = Path(path)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.stem[:8], suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def canonical_hash(material: Dict[str, Any]) -> str:
    """sha256 hex digest of the canonical JSON form of ``material``.

    Canonical means sorted keys and minimal separators, so the digest
    depends only on content — never on dict insertion order, whitespace, or
    ``PYTHONHASHSEED``.  Both the benchmark store keys and the trace digests
    are this hash over their respective identity material.
    """
    text = json.dumps(material, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def looks_like_swf_path(spec: str) -> bool:
    """Whether a workload spec token denotes an SWF file path.

    The one heuristic shared by the scenario runner and the trace catalog —
    they must always classify a spec the same way, or a workload could be
    content-addressed by one layer and name-resolved by the other.
    """
    return (
        "/" in spec
        or "\\" in spec
        or spec.endswith(".swf")
        or spec.endswith(".swf.gz")
    )
