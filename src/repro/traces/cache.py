"""On-disk cache of materialized traces, keyed by content digest.

Layout mirrors the benchmark result store: ``root/<digest[:2]>/<digest>.swf``
holding the canonical SWF bytes, plus a ``<digest>.json`` sidecar recording
the spec and name that produced the entry (documentation for humans; the
digest alone is the key).  Writes are atomic (same-directory temp file +
``os.replace``), so two processes materializing the same trace concurrently
— exactly what ``run_many(workers=N)`` over a cold cache does — each publish
a complete file and the last writer wins with identical bytes.

The root defaults to ``$REPRO_TRACE_CACHE`` or ``~/.cache/repro-traces``.
"""

from __future__ import annotations

import json
import mmap
import os
import time
from pathlib import Path
from typing import Optional, Union

from repro.core.swf.parser import parse_swf_text
from repro.core.swf.workload import Workload
from repro.core.swf.writer import canonical_swf_bytes
from repro.util import atomic_write

__all__ = ["TraceCache", "CACHE_ENV_VAR", "default_cache_root"]

#: Environment variable overriding the default cache location.
CACHE_ENV_VAR = "REPRO_TRACE_CACHE"


def default_cache_root() -> Path:
    """``$REPRO_TRACE_CACHE`` if set, else ``~/.cache/repro-traces``."""
    override = os.environ.get(CACHE_ENV_VAR)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-traces"


def _mapped_text(path: Path) -> str:
    """The file's bytes decoded via a read-only memory map.

    ``mmap`` cannot map an empty file, so zero bytes decode directly (the
    parser then rejects the contents the same way either path would).
    """
    with open(path, "rb") as handle:
        if os.fstat(handle.fileno()).st_size == 0:
            return ""
        with mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ) as view:
            return view[:].decode("utf-8")


class TraceCache:
    """Content-addressed store of materialized traces (canonical SWF files)."""

    def __init__(self, root: Union[str, Path, None] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_root()
        #: materializations served from disk by this instance
        self.hits = 0
        #: materializations that had to build and write
        self.misses = 0

    def path_for(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest}.swf"

    def meta_path_for(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest}.json"

    def __contains__(self, digest: str) -> bool:
        return self.path_for(digest).is_file()

    def get(self, digest: str, name: Optional[str] = None) -> Optional[Workload]:
        """The cached workload under ``digest``, or None on miss.

        A cache file that fails to parse is treated as a miss (the caller
        rebuilds and overwrites it), never as an error: a torn or truncated
        entry must not be able to wedge every later run.

        The file is read through ``mmap``: canonical SWF bytes enter the OS
        page cache once per digest and are shared by every process on the
        host that maps them — a fleet of distributed workers replaying the
        same trace pays for one resident copy, not one per worker.
        """
        path = self.path_for(digest)
        try:
            workload = parse_swf_text(_mapped_text(path), name=path.stem)
        except (OSError, ValueError):
            return None
        workload.name = name if name is not None else self._cached_name(digest)
        self.hits += 1
        return workload

    def _cached_name(self, digest: str) -> str:
        try:
            with open(self.meta_path_for(digest), "r", encoding="utf-8") as handle:
                return str(json.load(handle).get("name", digest[:12]))
        except (OSError, ValueError):
            return digest[:12]

    def put(self, digest: str, workload: Workload, spec: str = "") -> Path:
        """Persist ``workload`` in canonical form under ``digest``."""
        from repro.traces.trace import TRACE_FORMAT

        path = self.path_for(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write(path, canonical_swf_bytes(workload))
        meta = {
            "digest": digest,
            "name": workload.name,
            "spec": spec,
            "format": TRACE_FORMAT,
        }
        atomic_write(
            self.meta_path_for(digest),
            (json.dumps(meta, sort_keys=True, indent=2) + "\n").encode("utf-8"),
        )
        self.misses += 1
        return path

    # ------------------------------------------------------------------
    # garbage collection
    # ------------------------------------------------------------------
    def gc(
        self,
        max_age_days: Optional[float] = None,
        drop_stale: bool = True,
        dry_run: bool = False,
    ):
        """Evict materialized traces by age and by stale ``TRACE_FORMAT``.

        A digest embeds the format version, so an artifact recorded under an
        older format (or with no readable sidecar at all — e.g. a crash
        between the SWF and sidecar writes) can never be looked up again;
        ``drop_stale`` reclaims those.  ``max_age_days`` additionally evicts
        artifacts whose SWF file is older.  Returns
        :class:`~repro.bench.store.GCStats`; ``dry_run`` only reports.
        """
        from repro.bench.store import GCStats
        from repro.traces.trace import TRACE_FORMAT

        stats = GCStats(dry_run=dry_run)
        if not self.root.is_dir():
            return stats
        cutoff = (
            time.time() - max_age_days * 86400.0
            if max_age_days is not None
            else None
        )
        for path in sorted(self.root.glob("*/*.swf")):
            stats.scanned += 1
            digest = path.stem
            reason = None
            try:
                with open(self.meta_path_for(digest), "r", encoding="utf-8") as handle:
                    meta = json.load(handle)
                if not isinstance(meta, dict):
                    raise ValueError("sidecar is not an object")
            except (OSError, ValueError):
                if drop_stale:
                    reason = "corrupt"
            else:
                if drop_stale and meta.get("format") != TRACE_FORMAT:
                    reason = "stale"
            if reason is None and cutoff is not None:
                try:
                    if path.stat().st_mtime < cutoff:
                        reason = "expired"
                except OSError:
                    reason = "corrupt"
            if reason is None:
                stats.kept += 1
                continue
            stats.removed[digest] = reason
            for victim in (path, self.meta_path_for(digest)):
                try:
                    stats.freed_bytes += victim.stat().st_size
                except OSError:
                    continue
                if not dry_run:
                    try:
                        victim.unlink()
                    except OSError:
                        pass
            if not dry_run:
                try:
                    path.parent.rmdir()  # only succeeds when the shard emptied
                except OSError:
                    pass
        return stats
