"""The trace catalog: named traces, and the ``trace:`` spec grammar.

The catalog makes traces first-class citizens of the scenario API: anything
a :class:`~repro.api.scenario.Scenario` (or the CLI, or a benchmark suite)
can name is reproducible from its one-line spec.

Grammar::

    trace:<source>[,key=value]...

``<source>`` is, in resolution order,

1. a **registered catalog name** — the four synthetic archives register
   themselves (``trace:ctc-sp2``), and plugins add entries with
   :func:`register_trace`;
2. an **SWF file path** (contains a path separator or ends in ``.swf``) —
   ``trace:traces/kth-sp2.swf,load=1.3``; the digest hashes the file's
   canonical *content*, never the path string;
3. a **registered workload model** — ``trace:lublin99,jobs=500,seed=7``
   pins a model draw as a reusable artifact (unseeded model specs
   canonicalize to seed 0: a trace is always content-stable).

Keys split into source parameters (``jobs``, ``seed``, ``machine_size`` —
defaulted from the enclosing Scenario when present) and the transform
roster of :mod:`repro.traces.transforms` (``load``, ``scale``, ``slice``,
``min_size``/``max_size``/``min_runtime``/``max_runtime``/``queue``,
``sample`` with optional ``sample_seed``, ``nodes``, ``head``), applied in
spec order.  For model sources, keys the grammar does not know are passed
through as model-constructor keywords (``trace:sessions,users=40``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.api.registry import Registry, SpecError, UnknownNameError, _coerce
from repro.util import looks_like_swf_path
from repro.traces.sources import (
    ArchiveSource,
    ModelSource,
    SwfFileSource,
    TraceSource,
)
from repro.traces.trace import Trace
from repro.traces.transforms import (
    FILTER_FIELDS,
    FieldFilter,
    Head,
    Resample,
    RescaleMachine,
    ScaleRate,
    ScaleToLoad,
    TimeSlice,
)

__all__ = [
    "trace_registry",
    "register_trace",
    "trace_names",
    "split_trace_spec",
    "trace_from_spec",
    "trace_for_scenario",
    "TRACE_SPEC_PREFIX",
]

TRACE_SPEC_PREFIX = "trace:"

#: Keys that parameterize the source rather than the pipeline.
SOURCE_KEYS = ("jobs", "seed", "machine_size")

#: Transform keys in the grammar (plus the filter-field keys).
TRANSFORM_KEYS = ("load", "scale", "slice", "sample", "sample_seed", "nodes", "head")

#: Named traces: factories ``(jobs, seed, machine_size) -> TraceSource``.
trace_registry = Registry("trace")


def register_trace(*names: str):
    """Register a named trace-source factory (decorator, like other registries)."""
    return trace_registry.register(*names)


def trace_names() -> List[str]:
    return trace_registry.names()


def _register_archives() -> None:
    from repro.data.archives import ARCHIVES, DEFAULT_ARCHIVE_SEED

    def factory_for(key: str):
        def factory(
            jobs: Optional[int] = None,
            seed: Optional[int] = None,
            machine_size: Optional[int] = None,
        ) -> TraceSource:
            # machine_size is accepted and ignored: an archive's machine is
            # part of what the trace *is*; the Scenario field sizes the
            # simulated machine, not the workload.
            return ArchiveSource(
                key,
                jobs=jobs if jobs is not None else 5000,
                seed=seed if seed is not None else DEFAULT_ARCHIVE_SEED,
            )

        factory.__name__ = f"trace_{key.replace('-', '_')}"
        factory.__doc__ = ARCHIVES[key].description
        return factory

    for key in ARCHIVES:
        trace_registry.register(key)(factory_for(key))


_register_archives()


# ----------------------------------------------------------------------
# spec parsing
# ----------------------------------------------------------------------
_looks_like_path = looks_like_swf_path


def split_trace_spec(spec: str) -> Tuple[str, List[Tuple[str, str]]]:
    """Split a ``trace:`` spec into ``(source_token, ordered (key, value) pairs)``.

    The ``trace:`` prefix is optional (the CLI accepts bare bodies).  Pair
    order is preserved — transforms apply in spec order, and the order is
    part of the digest.
    """
    if not isinstance(spec, str) or not spec.strip():
        raise SpecError(f"empty or non-string trace spec: {spec!r}")
    body = spec.strip()
    if body.startswith(TRACE_SPEC_PREFIX):
        body = body[len(TRACE_SPEC_PREFIX):]
    parts = [part.strip() for part in body.split(",")]
    token = parts[0]
    if not token:
        raise SpecError(f"trace spec {spec!r} names no source before the first comma")
    if "=" in token and not _looks_like_path(token):
        raise SpecError(
            f"trace spec {spec!r}: the first comma-field must name a source "
            "(catalog entry, SWF path, or model), not a key=value pair"
        )
    pairs: List[Tuple[str, str]] = []
    for part in parts[1:]:
        if not part:
            continue
        key, eq, value = part.partition("=")
        key = key.strip().replace("-", "_")
        if not eq or not key:
            raise SpecError(
                f"trace spec {spec!r}: expected 'key=value' but got {part!r}"
            )
        pairs.append((key, value.strip()))
    return token, pairs


def _int_param(spec: str, key: str, value: str) -> int:
    try:
        return int(value)
    except ValueError:
        raise SpecError(
            f"trace spec {spec!r}: {key} must be an integer, got {value!r}"
        ) from None


def _build_transform(spec: str, key: str, value: str, sample_seed: int):
    if key == "load":
        try:
            return ScaleToLoad(target=float(value))
        except ValueError as exc:
            raise SpecError(f"trace spec {spec!r}: bad load {value!r}: {exc}") from None
    if key == "scale":
        try:
            return ScaleRate(factor=float(value))
        except ValueError as exc:
            raise SpecError(f"trace spec {spec!r}: bad scale {value!r}: {exc}") from None
    if key == "slice":
        try:
            return TimeSlice.from_text(value)
        except ValueError as exc:
            raise SpecError(f"trace spec {spec!r}: {exc}") from None
    if key == "sample":
        return Resample(jobs=_int_param(spec, key, value), seed=sample_seed)
    if key == "nodes":
        return RescaleMachine(nodes=_int_param(spec, key, value))
    if key == "head":
        return Head(jobs=_int_param(spec, key, value))
    if key in FILTER_FIELDS:
        return FieldFilter(key=key, value=_int_param(spec, key, value))
    raise SpecError(f"trace spec {spec!r}: unhandled transform key {key!r}")


def trace_from_spec(
    spec: str,
    jobs: Optional[int] = None,
    seed: Optional[int] = None,
    machine_size: Optional[int] = None,
) -> Trace:
    """Build a :class:`Trace` from a spec string.

    ``jobs``/``seed``/``machine_size`` are *defaults* (typically the
    enclosing Scenario's fields); the same keys inside the spec win, and
    pin the trace regardless of scenario context.
    """
    token, pairs = split_trace_spec(spec)

    spec_source: Dict[str, int] = {}
    transform_pairs: List[Tuple[str, str]] = []
    extra_params: Dict[str, Any] = {}
    sample_seed: Optional[int] = None
    for key, value in pairs:
        if key in SOURCE_KEYS:
            spec_source[key] = _int_param(spec, key, value)
        elif key == "sample_seed":
            sample_seed = _int_param(spec, key, value)
        elif key in TRANSFORM_KEYS or key in FILTER_FIELDS:
            transform_pairs.append((key, value))
        else:
            # Not grammar: a model-constructor keyword (validated at source
            # resolution; a typo on a non-model source raises there).
            extra_params[key] = _coerce(value)
    if sample_seed is not None and all(key != "sample" for key, _ in transform_pairs):
        raise SpecError(f"trace spec {spec!r}: sample_seed without sample")

    source = _resolve_source(
        spec,
        token,
        jobs=spec_source.get("jobs", jobs),
        seed=spec_source.get("seed", seed),
        machine_size=spec_source.get("machine_size", machine_size),
        spec_set=frozenset(spec_source),
        extra_params=extra_params,
    )
    transforms = tuple(
        _build_transform(spec, key, value, sample_seed or 0)
        for key, value in transform_pairs
    )
    return Trace(source=source, transforms=transforms)


def _resolve_source(
    spec: str,
    token: str,
    jobs: Optional[int],
    seed: Optional[int],
    machine_size: Optional[int],
    spec_set: frozenset,
    extra_params: Dict[str, Any],
) -> TraceSource:
    if token in trace_registry:
        if extra_params:
            raise SpecError(
                f"trace spec {spec!r}: catalog trace {token!r} does not accept "
                f"{sorted(extra_params)} (source keys are {', '.join(SOURCE_KEYS)}; "
                f"transforms are {', '.join(TRANSFORM_KEYS + tuple(FILTER_FIELDS))})"
            )
        return trace_registry.get(token)(
            jobs=jobs, seed=seed, machine_size=machine_size
        )

    if _looks_like_path(token):
        explicit = spec_set | frozenset(extra_params)
        if explicit:
            raise SpecError(
                f"trace spec {spec!r}: a file trace is fully determined by its "
                f"content; {sorted(explicit)} do not apply"
            )
        return SwfFileSource(token)

    from repro.api.registry import model_registry

    if token in model_registry:
        return ModelSource(
            name=token,
            jobs=jobs if jobs is not None else 2000,
            seed=seed if seed is not None else 0,
            machine_size=machine_size,
            params=tuple(sorted(extra_params.items())),
        )

    raise UnknownNameError(
        "trace source",
        token,
        list(trace_registry.names()) + list(model_registry.names()),
    )


def trace_for_scenario(scenario, seed: Optional[int] = None) -> Optional[Trace]:
    """The :class:`Trace` a scenario's workload spec refers to, if any.

    Returns a handle for ``trace:`` specs (with the scenario's ``jobs``,
    ``seed``, and ``machine_size`` as source defaults) and for plain SWF
    path specs (content-addressed, no parameters); ``None`` for model and
    archive specs, which are not trace-catalog workloads.  ``seed``
    overrides the scenario seed (the grid runner re-seeds per site).
    """
    spec = scenario.workload
    if spec.startswith(TRACE_SPEC_PREFIX):
        return trace_from_spec(
            spec,
            jobs=scenario.jobs,
            seed=seed if seed is not None else scenario.seed,
            machine_size=scenario.machine_size,
        )
    if spec.startswith("swf:"):
        return Trace(source=SwfFileSource(spec[len("swf:"):]))
    if _looks_like_path(spec):
        return Trace(source=SwfFileSource(spec))
    return None
