"""First-class traces: content-addressed handles, transforms, catalog, cache.

The paper's methodology (Section 2.1) anchors evaluation to production
workload logs; this package gives those logs — and their synthetic stand-ins
— the same standing as registered models:

* :mod:`repro.traces.trace`      — the :class:`Trace` handle: source +
  transformation pipeline, sha256 content digest, lazy materialization;
* :mod:`repro.traces.sources`    — archive / SWF-file / model sources, each
  content-stable so digests are true content addresses;
* :mod:`repro.traces.transforms` — the seed-deterministic pipeline: load
  scaling, time-window slicing, field filters, bootstrap resampling,
  machine rescaling;
* :mod:`repro.traces.catalog`    — the trace registry and the one-line
  ``trace:ctc-sp2,load=1.2,slice=0:7d`` spec grammar used by Scenario,
  ``run()``, benchmark suites, and the CLI;
* :mod:`repro.traces.cache`      — the on-disk materialization cache
  (``$REPRO_TRACE_CACHE``), keyed by digest, canonical SWF bytes.

Attributes load lazily (PEP 562, same idiom as :mod:`repro.api`).
"""

from __future__ import annotations

from typing import Any

__all__ = [
    # handle
    "Trace",
    "TRACE_FORMAT",
    # sources
    "TraceSource",
    "ArchiveSource",
    "SwfFileSource",
    "ModelSource",
    "file_content_digest",
    # transforms
    "TraceTransform",
    "ScaleToLoad",
    "ScaleRate",
    "TimeSlice",
    "FieldFilter",
    "Resample",
    "RescaleMachine",
    "Head",
    "parse_duration",
    "format_duration",
    # catalog + spec grammar
    "trace_registry",
    "register_trace",
    "trace_names",
    "split_trace_spec",
    "trace_from_spec",
    "trace_for_scenario",
    "TRACE_SPEC_PREFIX",
    # cache
    "TraceCache",
    "CACHE_ENV_VAR",
    "default_cache_root",
]

_TRACE_NAMES = {"Trace", "TRACE_FORMAT"}
_SOURCE_NAMES = {
    "TraceSource",
    "ArchiveSource",
    "SwfFileSource",
    "ModelSource",
    "file_content_digest",
}
_TRANSFORM_NAMES = {
    "TraceTransform",
    "ScaleToLoad",
    "ScaleRate",
    "TimeSlice",
    "FieldFilter",
    "Resample",
    "RescaleMachine",
    "Head",
    "parse_duration",
    "format_duration",
}
_CATALOG_NAMES = {
    "trace_registry",
    "register_trace",
    "trace_names",
    "split_trace_spec",
    "trace_from_spec",
    "trace_for_scenario",
    "TRACE_SPEC_PREFIX",
}
_CACHE_NAMES = {"TraceCache", "CACHE_ENV_VAR", "default_cache_root"}


def __getattr__(name: str) -> Any:
    if name in _TRACE_NAMES:
        from repro.traces import trace as module
    elif name in _SOURCE_NAMES:
        from repro.traces import sources as module
    elif name in _TRANSFORM_NAMES:
        from repro.traces import transforms as module
    elif name in _CATALOG_NAMES:
        from repro.traces import catalog as module
    elif name in _CACHE_NAMES:
        from repro.traces import cache as module
    else:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    return getattr(module, name)


def __dir__() -> list:
    return sorted(__all__)
