"""Where a trace's bytes come from: archives, SWF files, workload models.

A :class:`TraceSource` is the base of a :class:`~repro.traces.trace.Trace`
pipeline.  Every source must be *content-stable*: the same source identity
must always materialize to the same canonical SWF bytes, because the trace
digest — the key of the on-disk cache and of benchmark-store entries — is
derived from that identity.

* :class:`ArchiveSource` — a synthetic Parallel-Workloads-Archive stand-in
  (:mod:`repro.data.archives`); deterministic per ``(key, jobs, seed)``.
* :class:`SwfFileSource` — an SWF file on disk.  Its identity embeds the
  sha256 of the file's **canonical** bytes (parse → canonical serialization),
  so the digest tracks trace *content*: editing the file changes the digest
  (and forces benchmark cache misses), while alignment whitespace and
  newline conventions do not.
* :class:`ModelSource` — a registered workload model.  A ``None`` seed is
  canonicalized to 0 rather than drawing entropy: a trace is a pinned
  artifact, which is exactly what distinguishes ``trace:lublin99`` from the
  plain ``lublin99`` model spec.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.core.swf.workload import Workload

__all__ = [
    "TraceSource",
    "ArchiveSource",
    "SwfFileSource",
    "ModelSource",
    "file_content_digest",
]

#: In-process memo of file content digests, keyed by (realpath, mtime_ns,
#: size) so an edited file is always re-hashed but repeated digest lookups
#: (benchmark suites compute one per replication) parse the file only once.
_FILE_DIGEST_MEMO: Dict[Tuple[str, int, int], str] = {}


def file_content_digest(path: str) -> str:
    """sha256 hex digest of the canonical bytes of the SWF file at ``path``."""
    from repro.core.swf.parser import parse_swf
    from repro.core.swf.writer import canonical_swf_bytes

    real = os.path.realpath(path)
    stat = os.stat(real)
    memo_key = (real, stat.st_mtime_ns, stat.st_size)
    cached = _FILE_DIGEST_MEMO.get(memo_key)
    if cached is not None:
        return cached
    digest = hashlib.sha256(canonical_swf_bytes(parse_swf(path))).hexdigest()
    _FILE_DIGEST_MEMO[memo_key] = digest
    return digest


class TraceSource:
    """Base class of trace sources (frozen dataclasses)."""

    #: source kind tag used in identities
    kind: str = "source"

    @property
    def label(self) -> str:  # pragma: no cover - abstract
        """Short human name used as the workload/trace name."""
        raise NotImplementedError

    def identity(self, include_seed: bool = True) -> Dict[str, Any]:  # pragma: no cover
        """Canonical JSON-serializable identity hashed into the digest.

        ``include_seed=False`` drops seed-valued parameters; the trace layer
        uses that reduced identity to group *replication families* — traces
        that differ only in generation seed — for benchmark aggregation.
        """
        raise NotImplementedError

    def materialize(self) -> Workload:  # pragma: no cover - abstract
        """Generate or load the base workload."""
        raise NotImplementedError

    def spec_token(self) -> Tuple[str, Dict[str, str]]:  # pragma: no cover - abstract
        """``(name_token, params)`` rendering for the spec grammar."""
        raise NotImplementedError


@dataclass(frozen=True)
class ArchiveSource(TraceSource):
    """One of the synthetic archive traces, content-pinned by (key, jobs, seed)."""

    key: str
    jobs: int = 5000
    seed: int = 0
    kind = "archive"

    def __post_init__(self) -> None:
        from repro.data.archives import ARCHIVES

        if self.key not in ARCHIVES:
            raise KeyError(
                f"unknown archive {self.key!r}; available: {sorted(ARCHIVES)}"
            )
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")

    @property
    def label(self) -> str:
        return self.key

    def identity(self, include_seed: bool = True) -> Dict[str, Any]:
        identity: Dict[str, Any] = {
            "kind": self.kind,
            "key": self.key,
            "jobs": self.jobs,
        }
        if include_seed:
            identity["seed"] = self.seed
        return identity

    def materialize(self) -> Workload:
        from repro.data.archives import synthetic_archive

        return synthetic_archive(self.key, jobs=self.jobs, seed=self.seed)

    def spec_token(self) -> Tuple[str, Dict[str, str]]:
        return self.key, {"jobs": str(self.jobs), "seed": str(self.seed)}


@dataclass(frozen=True)
class SwfFileSource(TraceSource):
    """An SWF trace on disk, content-addressed by its canonical bytes.

    The digest is computed from the parsed-and-canonicalized file, captured
    at construction: a :class:`~repro.traces.trace.Trace` handle therefore
    pins the content it was built against, and rebuilding the handle after
    the file changed yields a different digest (never a stale cache hit).
    """

    path: str
    #: sha256 of the canonical file bytes; computed at construction when not
    #: provided, so equal handles imply equal content.
    content: str = ""

    kind = "swf"

    def __post_init__(self) -> None:
        if not self.content:
            object.__setattr__(self, "content", file_content_digest(self.path))

    @property
    def label(self) -> str:
        base = os.path.basename(self.path)
        return base[: -len(".swf")] if base.endswith(".swf") else base

    def identity(self, include_seed: bool = True) -> Dict[str, Any]:
        # Deliberately path-free: two copies of one trace share a digest,
        # and renaming a file cannot poison the cache.
        return {"kind": self.kind, "content": self.content}

    def materialize(self) -> Workload:
        from repro.core.swf.parser import parse_swf

        current = file_content_digest(self.path)
        if current != self.content:
            raise ValueError(
                f"trace file {self.path!r} changed since this handle was "
                f"built (content {current[:12]} != pinned {self.content[:12]}); "
                "rebuild the Trace to adopt the new content"
            )
        workload = parse_swf(self.path)
        workload.name = self.label
        return workload

    def spec_token(self) -> Tuple[str, Dict[str, str]]:
        return self.path, {}


@dataclass(frozen=True)
class ModelSource(TraceSource):
    """A registered workload model, content-pinned by (name, kwargs, jobs, seed)."""

    name: str
    jobs: int = 2000
    seed: int = 0
    machine_size: Optional[int] = None
    #: extra model-constructor kwargs, sorted for canonical identity
    params: Tuple[Tuple[str, Any], ...] = field(default_factory=tuple)

    kind = "model"

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        object.__setattr__(self, "params", tuple(sorted(self.params)))

    @property
    def label(self) -> str:
        return self.name

    def identity(self, include_seed: bool = True) -> Dict[str, Any]:
        identity: Dict[str, Any] = {
            "kind": self.kind,
            "name": self.name,
            "jobs": self.jobs,
            "machine_size": self.machine_size,
            "params": [list(pair) for pair in self.params],
        }
        if include_seed:
            identity["seed"] = self.seed
        return identity

    def materialize(self) -> Workload:
        from repro.api.registry import model_registry

        kwargs = dict(self.params)
        if self.machine_size is not None:
            kwargs.setdefault("machine_size", self.machine_size)
        model = model_registry.get(self.name)(**kwargs)
        return model.generate(self.jobs, seed=self.seed)

    def spec_token(self) -> Tuple[str, Dict[str, str]]:
        params = {"jobs": str(self.jobs), "seed": str(self.seed)}
        if self.machine_size is not None:
            params["machine_size"] = str(self.machine_size)
        params.update({key: str(value) for key, value in self.params})
        return self.name, params
