"""Composable, seed-deterministic trace transformations.

Each transform is a small frozen dataclass with three responsibilities:

* ``apply(workload)`` — produce the transformed :class:`Workload`;
* ``identity()`` — the canonical JSON-serializable description hashed into
  the owning trace's content digest, so a transformed trace is cacheable and
  two pipelines are interchangeable iff their identities match;
* ``spec_items()`` — the ``key=value`` fragments the spec grammar renders,
  so every pipeline round-trips through the one-line ``trace:`` syntax.

The roster implements the trace manipulations the paper's methodology and
the workload-modelling literature actually use:

==============  ========================================================
``load=L``      rescale to an absolute offered load (interarrival
                compression — the paper's load-variation methodology)
``scale=F``     multiply the arrival rate by a factor (relative form)
``slice=A:B``   keep jobs submitted in ``[A, B)``; bounds accept duration
                suffixes (``0:7d``, ``12h:2d``, ``30d:``)
``min_size=``   field filters on job size, runtime, and queue
``max_size=``
``min_runtime=``
``max_runtime=``
``queue=``
``sample=N``    bootstrap-resample N jobs with replacement (private
                ``random.Random``, seed in the digest)
``nodes=N``     rescale job sizes onto an N-node machine
``head=N``      keep the first N jobs
==============  ========================================================

Transforms apply **in spec order** — ``slice=0:7d,load=1.2`` rescales the
first week, ``load=1.2,slice=0:7d`` slices the rescaled trace — and the
order is part of the digest.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.core.swf.fields import FIELD_NAMES, MISSING
from repro.core.swf.records import SWFJob
from repro.core.swf.workload import Workload

_ALLOC_IDX = FIELD_NAMES.index("allocated_processors")
_REQ_PROCS_IDX = FIELD_NAMES.index("requested_processors")
_PRECEDING_IDX = FIELD_NAMES.index("preceding_job")
_THINK_IDX = FIELD_NAMES.index("think_time")

__all__ = [
    "TraceTransform",
    "ScaleToLoad",
    "ScaleRate",
    "TimeSlice",
    "FieldFilter",
    "Resample",
    "RescaleMachine",
    "Head",
    "parse_duration",
    "format_duration",
    "FILTER_FIELDS",
]

#: Duration-literal suffixes accepted by ``slice=`` bounds.
_DURATION_UNITS = {"s": 1, "m": 60, "h": 3600, "d": 86400, "w": 7 * 86400}

_DURATION_RE = re.compile(r"^(\d+(?:\.\d+)?)([smhdw]?)$")


def parse_duration(text: str) -> int:
    """``"7d"`` → 604800; bare numbers are seconds; result is whole seconds."""
    match = _DURATION_RE.match(str(text).strip())
    if not match:
        raise ValueError(
            f"bad duration {text!r}: expected <number>[s|m|h|d|w], e.g. '7d' or '3600'"
        )
    value, unit = match.groups()
    return int(round(float(value) * _DURATION_UNITS[unit or "s"]))


def format_duration(seconds: int) -> str:
    """Render whole seconds with the largest exact unit (inverse of parse)."""
    seconds = int(seconds)
    for unit in ("w", "d", "h", "m"):
        size = _DURATION_UNITS[unit]
        if seconds and seconds % size == 0:
            return f"{seconds // size}{unit}"
    return str(seconds)


class TraceTransform:
    """Base class; subclasses are frozen dataclasses with apply/identity."""

    #: short operation name used in identities and error messages
    op: str = "transform"

    def apply(self, workload: Workload) -> Workload:  # pragma: no cover - abstract
        raise NotImplementedError

    def identity(self) -> Dict[str, Any]:  # pragma: no cover - abstract
        raise NotImplementedError

    def spec_items(self) -> List[Tuple[str, str]]:  # pragma: no cover - abstract
        """The ``(key, value)`` spec fragments this transform renders to."""
        raise NotImplementedError


@dataclass(frozen=True)
class ScaleToLoad(TraceTransform):
    """Rescale interarrivals so the trace's offered load becomes ``target``.

    This is the absolute form of the paper's load-variation methodology:
    the machine size is read from the trace header (falling back to the
    largest job), and arrivals are compressed or stretched so total work
    divided by capacity × span equals ``target``.
    """

    target: float
    op = "load"

    def __post_init__(self) -> None:
        if self.target <= 0:
            raise ValueError("load target must be positive")

    def apply(self, workload: Workload) -> Workload:
        machine = workload.header.max_nodes or workload.max_processors()
        base = workload.offered_load(machine)
        if base <= 0:
            raise ValueError(
                f"cannot rescale {workload.name!r} to load {self.target}: the "
                "trace has no measurable offered load (too few jobs, or no "
                "known machine size)"
            )
        return workload.scale_load(
            self.target / base, name=f"{workload.name}@{self.target:g}"
        )

    def identity(self) -> Dict[str, Any]:
        return {"op": self.op, "target": self.target}

    def spec_items(self) -> List[Tuple[str, str]]:
        return [("load", f"{self.target:g}")]


@dataclass(frozen=True)
class ScaleRate(TraceTransform):
    """Multiply the arrival rate by ``factor`` (relative load scaling)."""

    factor: float
    op = "scale"

    def __post_init__(self) -> None:
        if self.factor <= 0:
            raise ValueError("scale factor must be positive")

    def apply(self, workload: Workload) -> Workload:
        return workload.scale_load(self.factor)

    def identity(self) -> Dict[str, Any]:
        return {"op": self.op, "factor": self.factor}

    def spec_items(self) -> List[Tuple[str, str]]:
        return [("scale", f"{self.factor:g}")]


@dataclass(frozen=True)
class TimeSlice(TraceTransform):
    """Keep jobs submitted in ``[start, end)`` seconds, then re-origin.

    The interval is half-open — a job submitted exactly at ``end`` belongs
    to the *next* slice, so ``0:7d`` and ``7d:14d`` partition a trace with
    no job counted twice.  ``end=None`` leaves the window open.  Slicing an
    interval that contains no jobs yields an empty workload (a legitimate
    result the caller may want to detect), not an error.
    """

    start: int
    end: Optional[int]
    op = "slice"

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError("slice start must be >= 0")
        if self.end is not None and self.end < self.start:
            raise ValueError(f"slice end {self.end} precedes start {self.start}")

    @classmethod
    def from_text(cls, text: str) -> "TimeSlice":
        """Parse ``"A:B"`` with duration suffixes; ``"A:"`` leaves B open."""
        raw = str(text).strip()
        if ":" not in raw:
            raise ValueError(
                f"bad slice {raw!r}: expected start:end, e.g. '0:7d' or '7d:'"
            )
        start_text, _, end_text = raw.partition(":")
        start = parse_duration(start_text) if start_text.strip() else 0
        end = parse_duration(end_text) if end_text.strip() else None
        return cls(start=start, end=end)

    def apply(self, workload: Workload) -> Workload:
        submit = workload.columns().np("submit")
        keep = (submit != MISSING) & (submit >= self.start)
        if self.end is not None:
            keep &= submit < self.end

        label = f"{self.start}:{'' if self.end is None else self.end}"
        sliced = Workload(
            [job for job, kept in zip(workload.jobs, keep.tolist()) if kept],
            header=type(workload.header)(workload.header.entries),
            name=f"{workload.name}[{label}]",
        )
        return sliced.shift_origin().renumbered()

    def identity(self) -> Dict[str, Any]:
        return {"op": self.op, "start": self.start, "end": self.end}

    def spec_items(self) -> List[Tuple[str, str]]:
        end = "" if self.end is None else format_duration(self.end)
        return [("slice", f"{format_duration(self.start)}:{end}")]


#: Filter spec keys -> (job attribute, comparison); ``queue`` is equality.
FILTER_FIELDS: Dict[str, Tuple[str, str]] = {
    "min_size": ("processors", "ge"),
    "max_size": ("processors", "le"),
    "min_runtime": ("run_time", "ge"),
    "max_runtime": ("run_time", "le"),
    "queue": ("queue_number", "eq"),
}

#: job attribute -> JobColumns column carrying the same values
_FILTER_COLUMNS: Dict[str, str] = {
    "processors": "procs",
    "run_time": "run",
    "queue_number": "queue",
}


@dataclass(frozen=True)
class FieldFilter(TraceTransform):
    """Keep jobs whose field satisfies one bound (``min_size=32`` etc.).

    Jobs whose field is unknown (``-1`` in the SWF line) are dropped — a
    filtered trace must only contain jobs the predicate provably accepts.
    """

    key: str
    value: int
    op = "filter"

    def __post_init__(self) -> None:
        if self.key not in FILTER_FIELDS:
            raise ValueError(
                f"unknown filter {self.key!r} (known: {', '.join(sorted(FILTER_FIELDS))})"
            )
        if self.key != "queue" and self.value < 0:
            raise ValueError(f"{self.key} bound must be >= 0, got {self.value}")

    def apply(self, workload: Workload) -> Workload:
        attribute, comparison = FILTER_FIELDS[self.key]
        actual = workload.columns().np(_FILTER_COLUMNS[attribute])
        if comparison == "ge":
            keep = actual >= self.value
        elif comparison == "le":
            keep = actual <= self.value
        else:
            keep = actual == self.value
        keep &= actual != MISSING
        kept = Workload(
            [job for job, k in zip(workload.jobs, keep.tolist()) if k],
            header=type(workload.header)(workload.header.entries),
            name=f"{workload.name}[{self.key}={self.value}]",
        )
        return kept.renumbered()

    def identity(self) -> Dict[str, Any]:
        return {"op": self.op, "key": self.key, "value": self.value}

    def spec_items(self) -> List[Tuple[str, str]]:
        return [(self.key, str(self.value))]


@dataclass(frozen=True)
class Resample(TraceTransform):
    """Bootstrap ``jobs`` jobs with replacement (seed-deterministic).

    Sampling uses a private ``random.Random(seed)`` — platform-independent
    and insulated from numpy and the global generator — so the same
    ``(trace, jobs, seed)`` triple is byte-stable everywhere.  Sampled
    indices are sorted, keeping the arrival order of the source trace, and
    dependency fields (preceding job / think time) are cleared: resampling
    with replacement has no coherent session structure to preserve.
    """

    jobs: int
    seed: int = 0
    op = "sample"

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError("sample size must be >= 1")

    def apply(self, workload: Workload) -> Workload:
        if len(workload) == 0:
            raise ValueError(f"cannot resample empty trace {workload.name!r}")
        rng = random.Random(self.seed)
        count = len(workload)
        indices = sorted(rng.randrange(count) for _ in range(self.jobs))
        sampled = []
        for i in indices:
            job = workload[i]
            if job.preceding_job == MISSING and job.think_time == MISSING:
                sampled.append(job)
            else:
                fields = job.to_fields()
                fields[_PRECEDING_IDX] = MISSING
                fields[_THINK_IDX] = MISSING
                sampled.append(SWFJob._from_trusted_fields(fields))
        resampled = Workload(
            sampled,
            header=type(workload.header)(workload.header.entries),
            name=f"{workload.name}~{self.jobs}",
        )
        return resampled.sorted_by_submit().renumbered()

    def identity(self) -> Dict[str, Any]:
        return {"op": self.op, "jobs": self.jobs, "seed": self.seed}

    def spec_items(self) -> List[Tuple[str, str]]:
        items = [("sample", str(self.jobs))]
        if self.seed != 0:
            items.append(("sample_seed", str(self.seed)))
        return items


@dataclass(frozen=True)
class RescaleMachine(TraceTransform):
    """Rescale job sizes proportionally onto an ``nodes``-node machine.

    Sizes are multiplied by ``nodes / current machine size``, rounded, and
    clamped to ``[1, nodes]``; the header's MaxNodes is rewritten so the
    rescaled trace is self-describing.  Runtimes are untouched (the rescale
    models the same work placed on a machine of different width, which is
    how cross-machine trace comparisons are normalized in the literature).
    """

    nodes: int
    op = "nodes"

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError("machine size must be >= 1")

    def apply(self, workload: Workload) -> Workload:
        current = workload.header.max_nodes or workload.max_processors()
        if not current:
            raise ValueError(
                f"cannot rescale {workload.name!r}: no machine size in the "
                "header and no job declares a size"
            )
        factor = self.nodes / current

        def rescale(value: int) -> int:
            if value == MISSING:
                return value
            return max(1, min(self.nodes, int(round(value * factor))))

        jobs = []
        for job in workload:
            fields = job.to_fields()
            fields[_ALLOC_IDX] = rescale(job.allocated_processors)
            fields[_REQ_PROCS_IDX] = rescale(job.requested_processors)
            jobs.append(SWFJob._from_trusted_fields(fields))
        header = type(workload.header)(workload.header.entries)
        header.set("MaxNodes", self.nodes)
        return Workload(jobs, header, name=f"{workload.name}/{self.nodes}n")

    def identity(self) -> Dict[str, Any]:
        return {"op": self.op, "nodes": self.nodes}

    def spec_items(self) -> List[Tuple[str, str]]:
        return [("nodes", str(self.nodes))]


@dataclass(frozen=True)
class Head(TraceTransform):
    """Keep the first ``jobs`` jobs in submit order."""

    jobs: int
    op = "head"

    def __post_init__(self) -> None:
        if self.jobs < 0:
            raise ValueError("head count must be >= 0")

    def apply(self, workload: Workload) -> Workload:
        return workload.truncate(self.jobs).renumbered()

    def identity(self) -> Dict[str, Any]:
        return {"op": self.op, "jobs": self.jobs}

    def spec_items(self) -> List[Tuple[str, str]]:
        return [("head", str(self.jobs))]
