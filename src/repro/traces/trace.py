"""The :class:`Trace` handle: a content-addressed, lazily materialized workload.

A trace is ``source + transformation pipeline``, both canonical and
JSON-serializable, hashed into one sha256 **digest**:

    digest = sha256({"format": TRACE_FORMAT,
                     "source": source.identity(),
                     "transforms": [t.identity(), ...]})

Because every source is content-stable (see :mod:`repro.traces.sources`) and
every transform is deterministic (see :mod:`repro.traces.transforms`), the
digest is a true content address for the materialized SWF bytes: equal
digests ⇒ byte-identical canonical traces, across processes and machines.
That is what lets

* :meth:`Trace.materialize` cache built traces on disk
  (``$REPRO_TRACE_CACHE``) and reuse them safely,
* the benchmark store key replications by trace *content* rather than by a
  path string that may point at changed bytes,
* experiments name a workload as a one-line ``trace:`` spec and trust that
  two runs of the spec saw the same jobs.

The ``family_digest`` drops seed-valued source parameters: traces that
differ only in generation seed are *replications of one family*, which is
the grouping benchmark aggregation needs (mean ± CI over seeds is
meaningful inside a family and meaningless across families).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Optional, Tuple

from repro.core.swf.workload import Workload
from repro.traces.cache import TraceCache
from repro.traces.sources import TraceSource
from repro.util import canonical_hash
from repro.traces.transforms import (
    FieldFilter,
    Head,
    Resample,
    RescaleMachine,
    ScaleRate,
    ScaleToLoad,
    TimeSlice,
    TraceTransform,
)

__all__ = ["Trace", "TRACE_FORMAT"]

#: Digest-format version: bump when source/transform semantics change in a
#: way that invalidates previously cached materializations.
TRACE_FORMAT = "trace-v1"


@dataclass(frozen=True)
class Trace:
    """A workload source plus an ordered transformation pipeline."""

    source: TraceSource
    transforms: Tuple[TraceTransform, ...] = ()

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    def identity(self, include_seed: bool = True) -> Dict[str, Any]:
        """The canonical digest material (JSON-serializable)."""
        return {
            "format": TRACE_FORMAT,
            "source": self.source.identity(include_seed=include_seed),
            "transforms": [t.identity() for t in self.transforms],
        }

    @property
    def digest(self) -> str:
        """sha256 content address of the materialized canonical trace."""
        return canonical_hash(self.identity())

    @property
    def family_digest(self) -> str:
        """Digest of the replication family: identity minus source seeds."""
        return canonical_hash(self.identity(include_seed=False))

    @property
    def name(self) -> str:
        """Readable label: the source plus the pipeline's spec fragments."""
        suffix = "".join(
            f",{key}={value}" for t in self.transforms for key, value in t.spec_items()
        )
        return f"{self.source.label}{suffix}"

    @property
    def spec(self) -> str:
        """The exact ``trace:`` spec string this handle round-trips through."""
        token, params = self.source.spec_token()
        parts = [token]
        parts.extend(f"{key}={value}" for key, value in params.items())
        for t in self.transforms:
            parts.extend(f"{key}={value}" for key, value in t.spec_items())
        return "trace:" + ",".join(parts)

    def __str__(self) -> str:
        return self.spec

    # ------------------------------------------------------------------
    # pipeline construction
    # ------------------------------------------------------------------
    def with_transform(self, transform: TraceTransform) -> "Trace":
        """A new handle with ``transform`` appended to the pipeline."""
        return replace(self, transforms=self.transforms + (transform,))

    def scale_to_load(self, target: float) -> "Trace":
        """Rescale interarrivals to an absolute offered load (``load=``)."""
        return self.with_transform(ScaleToLoad(target=float(target)))

    def scale(self, factor: float) -> "Trace":
        """Multiply the arrival rate by ``factor`` (``scale=``)."""
        return self.with_transform(ScaleRate(factor=float(factor)))

    def slice_window(self, start: int = 0, end: Optional[int] = None) -> "Trace":
        """Keep jobs submitted in ``[start, end)`` seconds (``slice=``)."""
        return self.with_transform(TimeSlice(start=int(start), end=end))

    def filter_field(self, key: str, value: int) -> "Trace":
        """Apply one field filter (``min_size=``, ``max_runtime=``, ...)."""
        return self.with_transform(FieldFilter(key=key, value=int(value)))

    def sample(self, jobs: int, seed: int = 0) -> "Trace":
        """Bootstrap-resample ``jobs`` jobs with replacement (``sample=``)."""
        return self.with_transform(Resample(jobs=int(jobs), seed=int(seed)))

    def rescale_machine(self, nodes: int) -> "Trace":
        """Rescale job sizes onto an ``nodes``-node machine (``nodes=``)."""
        return self.with_transform(RescaleMachine(nodes=int(nodes)))

    def head(self, jobs: int) -> "Trace":
        """Keep the first ``jobs`` jobs (``head=``)."""
        return self.with_transform(Head(jobs=int(jobs)))

    # ------------------------------------------------------------------
    # materialization
    # ------------------------------------------------------------------
    def build(self) -> Workload:
        """Materialize without touching any cache: source, then pipeline."""
        workload = self.source.materialize()
        for transform in self.transforms:
            workload = transform.apply(workload)
        workload.name = self.name
        return workload

    def materialize(
        self,
        cache: Optional[TraceCache] = None,
        use_cache: bool = True,
    ) -> Workload:
        """The materialized workload, served from the on-disk cache when possible.

        ``cache=None`` uses the default cache (``$REPRO_TRACE_CACHE`` or
        ``~/.cache/repro-traces``); ``use_cache=False`` builds fresh and
        leaves the cache untouched.  A hit parses the cached canonical SWF
        file, which the round-trip property guarantees equals the freshly
        built workload job-for-job — so cached and uncached runs simulate
        identically.
        """
        if not use_cache:
            return self.build()
        if cache is None:
            cache = TraceCache()
        hit = cache.get(self.digest, name=self.name)
        if hit is not None:
            return hit
        workload = self.build()
        cache.put(self.digest, workload, spec=self.spec)
        return workload
