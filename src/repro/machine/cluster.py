"""Nodes, partitions, allocations, and the :class:`Machine` allocator.

The model is deliberately at the granularity the SWF records: a job asks for
a number of processors (nodes) and, optionally, memory per processor; the
machine either has that many free, non-failed nodes in one partition or it
does not.  Node identity matters only for outage handling (a failure takes
down *specific* nodes, killing whatever ran there), so the allocator tracks
individual nodes but exposes count-based convenience methods.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = ["Node", "Partition", "Allocation", "Machine", "AllocationError"]


class AllocationError(RuntimeError):
    """Raised when an allocation or release request cannot be honoured."""


@dataclass
class Node:
    """One node of the machine."""

    node_id: int
    memory_kb: int = 0
    partition: int = 1
    up: bool = True
    busy_job: Optional[int] = None

    @property
    def is_free(self) -> bool:
        """True when the node is up and not allocated to any job."""
        return self.up and self.busy_job is None


@dataclass(frozen=True)
class Partition:
    """A named group of nodes (e.g. batch vs interactive sub-machines)."""

    number: int
    node_ids: Tuple[int, ...]

    @property
    def size(self) -> int:
        return len(self.node_ids)


@dataclass(frozen=True)
class Allocation:
    """The set of nodes granted to one job."""

    job_id: int
    node_ids: Tuple[int, ...]
    start_time: float

    @property
    def size(self) -> int:
        return len(self.node_ids)


class Machine:
    """A space-shared parallel machine with failable nodes.

    Parameters
    ----------
    size:
        Number of nodes.
    memory_per_node_kb:
        Memory capacity of each node, in kilobytes (0 = memory not modelled).
    partitions:
        Optional sizes of partitions; must sum to ``size``.  When omitted the
        whole machine is a single partition (number 1).
    """

    def __init__(
        self,
        size: int,
        memory_per_node_kb: int = 0,
        partitions: Optional[Sequence[int]] = None,
        name: str = "machine",
    ) -> None:
        if size < 1:
            raise ValueError("a machine needs at least one node")
        if memory_per_node_kb < 0:
            raise ValueError("memory_per_node_kb must be non-negative")
        self.name = name
        self.size = size
        self.memory_per_node_kb = memory_per_node_kb

        partition_sizes = list(partitions) if partitions else [size]
        if any(p < 1 for p in partition_sizes):
            raise ValueError("partition sizes must be positive")
        if sum(partition_sizes) != size:
            raise ValueError("partition sizes must sum to the machine size")

        self._nodes: Dict[int, Node] = {}
        self._partitions: List[Partition] = []
        next_id = 0
        for number, psize in enumerate(partition_sizes, start=1):
            ids = tuple(range(next_id, next_id + psize))
            for node_id in ids:
                self._nodes[node_id] = Node(
                    node_id=node_id, memory_kb=memory_per_node_kb, partition=number
                )
            self._partitions.append(Partition(number=number, node_ids=ids))
            next_id += psize

        self._allocations: Dict[int, Allocation] = {}

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> List[Node]:
        """All nodes (shared references; mutate only through Machine methods)."""
        return [self._nodes[i] for i in sorted(self._nodes)]

    @property
    def partitions(self) -> List[Partition]:
        return list(self._partitions)

    @property
    def allocations(self) -> Dict[int, Allocation]:
        """Current allocations, keyed by job id."""
        return dict(self._allocations)

    def node(self, node_id: int) -> Node:
        return self._nodes[node_id]

    def free_count(self, partition: Optional[int] = None) -> int:
        """Number of free (up and unallocated) nodes, optionally per partition."""
        return len(self._free_node_ids(partition))

    def up_count(self, partition: Optional[int] = None) -> int:
        """Number of up nodes (free or busy), optionally per partition."""
        return sum(
            1
            for n in self._nodes.values()
            if n.up and (partition is None or n.partition == partition)
        )

    def busy_count(self) -> int:
        """Number of nodes currently allocated to jobs."""
        return sum(1 for n in self._nodes.values() if n.busy_job is not None)

    def down_count(self) -> int:
        """Number of failed / drained nodes."""
        return sum(1 for n in self._nodes.values() if not n.up)

    def utilized_fraction(self) -> float:
        """Busy nodes as a fraction of the nominal machine size."""
        return self.busy_count() / self.size

    def can_allocate(
        self,
        processors: int,
        memory_per_node_kb: int = 0,
        partition: Optional[int] = None,
    ) -> bool:
        """Whether a request could be satisfied right now."""
        if processors < 1:
            return False
        if memory_per_node_kb > 0 and self.memory_per_node_kb > 0:
            if memory_per_node_kb > self.memory_per_node_kb:
                return False
        return self.free_count(partition) >= processors

    def _free_node_ids(self, partition: Optional[int] = None) -> List[int]:
        return [
            node_id
            for node_id, node in sorted(self._nodes.items())
            if node.is_free and (partition is None or node.partition == partition)
        ]

    # ------------------------------------------------------------------
    # allocation / release
    # ------------------------------------------------------------------
    def allocate(
        self,
        job_id: int,
        processors: int,
        start_time: float = 0.0,
        memory_per_node_kb: int = 0,
        partition: Optional[int] = None,
    ) -> Allocation:
        """Allocate ``processors`` free nodes to ``job_id``.

        Raises :class:`AllocationError` when the request cannot be satisfied
        or the job already holds an allocation.
        """
        if job_id in self._allocations:
            raise AllocationError(f"job {job_id} already holds an allocation")
        if processors < 1:
            raise AllocationError("a job must request at least one processor")
        if memory_per_node_kb > 0 and self.memory_per_node_kb > 0:
            if memory_per_node_kb > self.memory_per_node_kb:
                raise AllocationError(
                    f"job {job_id} requests {memory_per_node_kb} kB per node but nodes "
                    f"have only {self.memory_per_node_kb} kB"
                )
        free = self._free_node_ids(partition)
        if len(free) < processors:
            raise AllocationError(
                f"job {job_id} requests {processors} nodes but only {len(free)} are free"
            )
        chosen = tuple(free[:processors])
        for node_id in chosen:
            self._nodes[node_id].busy_job = job_id
        allocation = Allocation(job_id=job_id, node_ids=chosen, start_time=start_time)
        self._allocations[job_id] = allocation
        return allocation

    def release(self, job_id: int) -> Allocation:
        """Release the allocation held by ``job_id`` and return it."""
        allocation = self._allocations.pop(job_id, None)
        if allocation is None:
            raise AllocationError(f"job {job_id} holds no allocation")
        for node_id in allocation.node_ids:
            node = self._nodes[node_id]
            if node.busy_job == job_id:
                node.busy_job = None
        return allocation

    # ------------------------------------------------------------------
    # failures and repairs (outage support)
    # ------------------------------------------------------------------
    def fail_nodes(self, node_ids: Iterable[int]) -> List[int]:
        """Mark nodes as down; returns the ids of jobs that were running on them.

        The affected jobs keep their allocations (the caller — the evaluation
        driver — decides whether to kill and resubmit them); the failed nodes
        are excluded from future allocations until :meth:`restore_nodes`.
        """
        victims: Set[int] = set()
        for node_id in node_ids:
            node = self._nodes.get(node_id)
            if node is None:
                raise AllocationError(f"node {node_id} does not exist")
            node.up = False
            if node.busy_job is not None:
                victims.add(node.busy_job)
        return sorted(victims)

    def fail_any(self, count: int) -> Tuple[List[int], List[int]]:
        """Fail ``count`` nodes, preferring free ones (returns (node_ids, victim_jobs)).

        Preferring free nodes models the common case that a failure is noticed
        on an idle node; if not enough free nodes exist, busy nodes fail too
        and their jobs are reported as victims.
        """
        free = [n for n in self._free_node_ids() if self._nodes[n].up]
        busy = [
            node_id
            for node_id, node in sorted(self._nodes.items())
            if node.up and node.busy_job is not None
        ]
        chosen = (free + busy)[:count]
        victims = self.fail_nodes(chosen)
        return chosen, victims

    def restore_nodes(self, node_ids: Iterable[int]) -> None:
        """Bring failed nodes back into service."""
        for node_id in node_ids:
            node = self._nodes.get(node_id)
            if node is None:
                raise AllocationError(f"node {node_id} does not exist")
            node.up = True

    def down_node_ids(self) -> List[int]:
        """Ids of all currently-failed nodes."""
        return [node_id for node_id, node in sorted(self._nodes.items()) if not node.up]
