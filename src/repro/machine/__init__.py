"""Model of a space-shared parallel machine.

The machine schedulers in :mod:`repro.schedulers` allocate whole nodes of a
distributed-memory machine (the IBM SP / Paragon / CM-5 class the paper's
workloads come from).  This package provides:

* :class:`Node` — one node with a memory capacity and an up/down flag,
* :class:`Allocation` — a set of nodes held by a running job,
* :class:`Machine` — the allocator: tracks free / busy / down nodes,
  partitions, and per-node memory, and supports the failure / repair
  transitions the outage experiments need.
"""

from repro.machine.cluster import Allocation, Machine, Node, Partition

__all__ = ["Allocation", "Machine", "Node", "Partition"]
