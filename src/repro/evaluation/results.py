"""Results of a scheduler simulation: per-job records and run-level containers.

Every evaluation driver (the space-sharing simulator, the gang-scheduling
simulator, the grid simulator) produces a :class:`SimulationResult`, so the
metrics in :mod:`repro.metrics` and the experiment harnesses can treat them
uniformly.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.swf.records import SWFJob

__all__ = ["JobResult", "ResultColumns", "SimulationResult"]


@dataclass(frozen=True)
class JobResult:
    """Outcome of one job in a simulation.

    Times are absolute simulation seconds.  ``killed`` marks jobs that were
    terminated by an outage and not successfully re-run; ``restarts`` counts
    how many times the job was restarted after a node failure.
    """

    job: SWFJob
    submit_time: float
    start_time: float
    end_time: float
    processors: int
    killed: bool = False
    restarts: int = 0
    site: Optional[str] = None

    @property
    def job_id(self) -> int:
        return self.job.job_number

    @property
    def wait_time(self) -> float:
        """Seconds between submittal and the (final) start of execution."""
        return self.start_time - self.submit_time

    @property
    def run_time(self) -> float:
        """Seconds of the final (successful or killed) execution."""
        return self.end_time - self.start_time

    @property
    def response_time(self) -> float:
        """Seconds between submittal and termination."""
        return self.end_time - self.submit_time

    def slowdown(self) -> float:
        """Response time over runtime; infinite for zero-runtime jobs."""
        if self.run_time <= 0:
            return float("inf")
        return self.response_time / self.run_time

    def bounded_slowdown(self, tau: float = 10.0) -> float:
        """max(1, response / max(runtime, tau)) — the standard bounded slowdown."""
        if tau <= 0:
            raise ValueError("tau must be positive")
        return max(1.0, self.response_time / max(self.run_time, tau))

    @property
    def area(self) -> float:
        """Processor-seconds consumed by the final execution."""
        return self.processors * self.run_time


class ResultColumns:
    """Float64/int64 column view of a job-result list.

    Metric aggregation over 100k+ jobs is dominated by per-object property
    calls; these columns extract the raw times once (``array('d')`` for the
    float simulation times, ``array('q')`` for processor counts) so the
    derived quantities (wait, response, slowdown) become whole-array
    expressions with bit-identical float semantics — each is the same
    float64 subtraction/division the per-job properties perform.
    """

    __slots__ = ("n", "submit", "start", "end", "procs", "killed")

    def __init__(self, jobs: List["JobResult"]) -> None:
        self.n = len(jobs)
        self.submit = array("d", (j.submit_time for j in jobs))
        self.start = array("d", (j.start_time for j in jobs))
        self.end = array("d", (j.end_time for j in jobs))
        self.procs = array("q", (j.processors for j in jobs))
        self.killed = np.fromiter((j.killed for j in jobs), dtype=bool, count=self.n)

    def np(self, name: str) -> np.ndarray:
        """Zero-copy numpy view of a column (``submit``, ``start``, ...)."""
        if name == "killed":
            return self.killed
        column = getattr(self, name)
        dtype = np.int64 if column.typecode == "q" else np.float64
        if self.n == 0:
            return np.empty(0, dtype=dtype)
        view = np.frombuffer(column, dtype=dtype)
        view.flags.writeable = False
        return view


@dataclass
class SimulationResult:
    """All per-job results of one simulation run, plus run-level context."""

    scheduler_name: str
    machine_size: int
    jobs: List[JobResult] = field(default_factory=list)
    #: node-seconds actually available during the run (accounts for outages);
    #: ``None`` means the machine was fully available throughout.
    available_node_seconds: Optional[float] = None
    #: number of job executions aborted by outages (including successful restarts)
    outage_kills: int = 0
    metadata: Dict[str, object] = field(default_factory=dict)
    #: deterministic per-run telemetry counters (events processed, scheduling
    #: passes, backfill decisions, queue depth high-water marks).  Derived
    #: only from simulated facts — never wall-clock time — so serial and
    #: parallel runs of the same scenario report bit-identical values.
    counters: Dict[str, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self):
        return iter(self.jobs)

    def columns(self) -> ResultColumns:
        """Column view of the per-job results (cached until jobs change)."""
        cached = self.__dict__.get("_columns")
        if cached is None or cached.n != len(self.jobs):
            cached = ResultColumns(self.jobs)
            self.__dict__["_columns"] = cached
        return cached

    def completed_jobs(self) -> List[JobResult]:
        """Jobs that terminated normally (not killed)."""
        return [j for j in self.jobs if not j.killed]

    def killed_jobs(self) -> List[JobResult]:
        """Jobs that were killed by an outage and never completed."""
        return [j for j in self.jobs if j.killed]

    @property
    def makespan(self) -> float:
        """Seconds from the first submittal to the last completion."""
        if not self.jobs:
            return 0.0
        cols = self.columns()
        return float(cols.np("end").max()) - float(cols.np("submit").min())

    @property
    def span(self) -> float:
        """Alias of :attr:`makespan` (workload-archive terminology)."""
        return self.makespan

    def total_area(self) -> float:
        """Processor-seconds consumed by completed jobs."""
        cols = self.columns()
        completed = ~cols.killed
        run = cols.np("end")[completed] - cols.np("start")[completed]
        return float((cols.np("procs")[completed] * run).sum())

    def by_job_id(self) -> Dict[int, JobResult]:
        """Results keyed by SWF job number."""
        return {j.job_id: j for j in self.jobs}
