"""Scheduler-evaluation drivers: the simulation loop, comparisons, sweeps."""

from repro.evaluation.results import JobResult, SimulationResult
from repro.evaluation.simulator import MachineSimulation, simulate
from repro.evaluation.sweep import ComparisonRow, compare_schedulers, format_table, load_sweep

__all__ = [
    "JobResult",
    "SimulationResult",
    "MachineSimulation",
    "simulate",
    "ComparisonRow",
    "compare_schedulers",
    "format_table",
    "load_sweep",
]
