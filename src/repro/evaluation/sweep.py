"""Higher-level evaluation drivers: scheduler comparisons and load sweeps.

These are the loops every experiment and example repeats: run the same
workload through several policies, or the same policy through the same
workload re-scaled to several offered loads, and tabulate the metric reports.

Both drivers are thin wrappers over the unified scenario runner
(:func:`repro.api.runner.run_many`): each cell of a comparison is one
:class:`~repro.api.scenario.Scenario`, policies are named by spec strings
(``"easy"``, ``"sjf:strict=true"``, ``"gang:slots=3"``), and passing
``workers=N`` fans the cells out over processes.  Policy *instances* are
still accepted for objects that cannot be built from a spec (a moldable-jobs
table, a hand-constructed PriorityScheduler); those cells run in-process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Mapping, Optional, Sequence, Union

from repro.core.outage.log import OutageLog
from repro.core.swf.workload import Workload
from repro.evaluation.results import SimulationResult
from repro.metrics.basic import MetricsReport

__all__ = ["ComparisonRow", "compare_schedulers", "load_sweep", "format_table"]


@dataclass(frozen=True)
class ComparisonRow:
    """One (scheduler, workload/load) cell of a comparison: result plus metrics."""

    scheduler: str
    label: str
    result: SimulationResult
    report: MetricsReport


def _scenarios_and_overrides(
    policies: Sequence[Union[str, object]],
    workload: Workload,
    machine_size: Optional[int],
    outages: Optional[OutageLog],
    honor_dependencies: bool,
    tau: float,
    load: Optional[float] = None,
):
    """Build one scenario per policy, with instance policies kept as overrides."""
    from repro.api.scenario import Scenario

    scenarios, instances = [], []
    for policy in policies:
        if isinstance(policy, str):
            spec, instance = policy, None
        else:
            spec, instance = getattr(policy, "name", "custom"), policy
        scenarios.append(
            Scenario(
                workload=workload.name or "workload",
                policy=spec,
                machine_size=machine_size,
                load=load,
                honor_dependencies=honor_dependencies,
                tau=tau,
            )
        )
        instances.append(instance)
    return scenarios, instances


def _run_cells(scenarios, instances, workloads, outages, workers):
    """Run every cell, fanning out the spec-string cells when workers are given.

    Policy instances may carry unpicklable state (priority lambdas,
    moldable-job tables), so instance cells always run in-process — but only
    those cells: spec-string cells in the same sweep still go through
    ``run_many`` and keep their parallelism.
    """
    from repro.api.runner import run, run_many

    results = [None] * len(scenarios)
    spec_cells = [i for i, instance in enumerate(instances) if instance is None]
    if spec_cells:
        spec_results = run_many(
            [scenarios[i] for i in spec_cells],
            workers=workers,
            workloads=[workloads[i] for i in spec_cells],
            outages=[outages[i] for i in spec_cells],
        )
        for i, scenario_result in zip(spec_cells, spec_results):
            results[i] = scenario_result
    for i, instance in enumerate(instances):
        if instance is not None:
            results[i] = run(
                scenarios[i], workload=workloads[i], policy=instance, outages=outages[i]
            )
    return results


def compare_schedulers(
    workload: Workload,
    schedulers: Sequence[Union[str, object]],
    machine_size: Optional[int] = None,
    outages: Optional[OutageLog] = None,
    honor_dependencies: bool = False,
    tau: float = 10.0,
    workers: Optional[int] = None,
) -> List[ComparisonRow]:
    """Run the same workload through each policy and collect metric reports.

    ``schedulers`` may mix policy spec strings and policy instances.
    """
    scenarios, instances = _scenarios_and_overrides(
        schedulers, workload, machine_size, outages, honor_dependencies, tau
    )
    count = len(scenarios)
    results = _run_cells(scenarios, instances, [workload] * count, [outages] * count, workers)
    return [
        ComparisonRow(
            scheduler=sr.result.scheduler_name,
            label=workload.name,
            result=sr.result,
            report=sr.report,
        )
        for sr in results
    ]


def load_sweep(
    workload: Workload,
    policy: Union[str, object],
    loads: Sequence[float],
    machine_size: Optional[int] = None,
    tau: float = 10.0,
    outages: Optional[OutageLog] = None,
    honor_dependencies: bool = False,
    workers: Optional[int] = None,
) -> List[ComparisonRow]:
    """Evaluate a policy across offered loads by re-scaling the workload.

    Parameters
    ----------
    workload:
        Base workload; its own offered load is used as the reference point.
    policy:
        Policy spec string (``"easy"``), or — for policies a spec cannot
        express — a zero-argument factory producing a fresh instance per run.
    loads:
        Target offered loads (e.g. ``[0.5, 0.6, ..., 0.9]``).
    outages, honor_dependencies:
        Forwarded to every run, so a sweep can reproduce the paper's outage
        and closed-feedback conditions.
    """
    base_load = workload.offered_load(machine_size)
    if base_load <= 0:
        raise ValueError("the base workload has no measurable offered load")
    policies = [policy if isinstance(policy, str) else policy() for _ in loads]
    scenarios, instances = [], []
    for target, cell_policy in zip(loads, policies):
        cell_scenarios, cell_instances = _scenarios_and_overrides(
            [cell_policy], workload, machine_size, outages,
            honor_dependencies, tau, load=float(target),
        )
        scenarios.extend(cell_scenarios)
        instances.extend(cell_instances)
    count = len(scenarios)
    results = _run_cells(scenarios, instances, [workload] * count, [outages] * count, workers)
    return [
        ComparisonRow(
            scheduler=sr.result.scheduler_name,
            label=f"load={target:.2f}",
            result=sr.result,
            report=sr.report,
        )
        for target, sr in zip(loads, results)
    ]


def format_table(rows: Iterable[Mapping[str, object]], columns: Optional[Sequence[str]] = None) -> str:
    """Render a list of flat dictionaries as an aligned text table.

    Used by the experiment harnesses to print the series each benchmark
    regenerates; keeping it here avoids every experiment re-implementing the
    same formatting.
    """
    rows = [dict(r) for r in rows]
    if not rows:
        return "(empty table)"
    if columns is None:
        columns = list(rows[0].keys())
    widths = {c: len(str(c)) for c in columns}
    for row in rows:
        for c in columns:
            widths[c] = max(widths[c], len(str(row.get(c, ""))))
    header = "  ".join(str(c).ljust(widths[c]) for c in columns)
    separator = "  ".join("-" * widths[c] for c in columns)
    body = [
        "  ".join(str(row.get(c, "")).ljust(widths[c]) for c in columns) for row in rows
    ]
    return "\n".join([header, separator] + body)
