"""Higher-level evaluation drivers: scheduler comparisons and load sweeps.

These are the loops every experiment and example repeats: run the same
workload through several policies, or the same policy through the same
workload re-scaled to several offered loads, and tabulate the metric reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.core.outage.log import OutageLog
from repro.core.swf.workload import Workload
from repro.evaluation.results import SimulationResult
from repro.evaluation.simulator import simulate
from repro.metrics.basic import MetricsReport, compute_metrics
from repro.schedulers.base import Scheduler

__all__ = ["ComparisonRow", "compare_schedulers", "load_sweep", "format_table"]


@dataclass(frozen=True)
class ComparisonRow:
    """One (scheduler, workload/load) cell of a comparison: result plus metrics."""

    scheduler: str
    label: str
    result: SimulationResult
    report: MetricsReport


def compare_schedulers(
    workload: Workload,
    schedulers: Sequence[Scheduler],
    machine_size: Optional[int] = None,
    outages: Optional[OutageLog] = None,
    honor_dependencies: bool = False,
    tau: float = 10.0,
) -> List[ComparisonRow]:
    """Run the same workload through each policy and collect metric reports."""
    rows: List[ComparisonRow] = []
    for scheduler in schedulers:
        result = simulate(
            workload,
            scheduler,
            machine_size=machine_size,
            outages=outages,
            honor_dependencies=honor_dependencies,
        )
        rows.append(
            ComparisonRow(
                scheduler=scheduler.name,
                label=workload.name,
                result=result,
                report=compute_metrics(result, tau=tau),
            )
        )
    return rows


def load_sweep(
    workload: Workload,
    scheduler_factory,
    loads: Sequence[float],
    machine_size: Optional[int] = None,
    tau: float = 10.0,
) -> List[ComparisonRow]:
    """Evaluate a policy across offered loads by re-scaling the workload.

    Parameters
    ----------
    workload:
        Base workload; its own offered load is used as the reference point.
    scheduler_factory:
        Zero-argument callable producing a fresh policy instance per run
        (policies may carry per-run state).
    loads:
        Target offered loads (e.g. ``[0.5, 0.6, ..., 0.9]``).
    """
    base_load = workload.offered_load(machine_size)
    if base_load <= 0:
        raise ValueError("the base workload has no measurable offered load")
    rows: List[ComparisonRow] = []
    for target in loads:
        factor = target / base_load
        scaled = workload.scale_load(factor, name=f"{workload.name}@{target:.2f}")
        scheduler = scheduler_factory()
        result = simulate(scaled, scheduler, machine_size=machine_size)
        rows.append(
            ComparisonRow(
                scheduler=scheduler.name,
                label=f"load={target:.2f}",
                result=result,
                report=compute_metrics(result, tau=tau),
            )
        )
    return rows


def format_table(rows: Iterable[Mapping[str, object]], columns: Optional[Sequence[str]] = None) -> str:
    """Render a list of flat dictionaries as an aligned text table.

    Used by the experiment harnesses to print the series each benchmark
    regenerates; keeping it here avoids every experiment re-implementing the
    same formatting.
    """
    rows = [dict(r) for r in rows]
    if not rows:
        return "(empty table)"
    if columns is None:
        columns = list(rows[0].keys())
    widths = {c: len(str(c)) for c in columns}
    for row in rows:
        for c in columns:
            widths[c] = max(widths[c], len(str(row.get(c, ""))))
    header = "  ".join(str(c).ljust(widths[c]) for c in columns)
    separator = "  ".join("-" * widths[c] for c in columns)
    body = [
        "  ".join(str(row.get(c, "")).ljust(widths[c]) for c in columns) for row in rows
    ]
    return "\n".join([header, separator] + body)
