"""Event-driven simulation of a machine scheduler replaying a workload.

This is the evaluation driver the paper's methodology centres on: take a
workload (an SWF trace or the output of a workload model), a machine, and a
scheduling policy, replay the workload through the policy, and report per-job
outcomes from which the standard metrics are computed.

Features required by the paper's extensions are built in:

* **feedback replay** (``honor_dependencies=True``): jobs carrying the
  preceding-job / think-time fields are submitted relative to the completion
  of their predecessor instead of at their absolute submit time — the closed
  user-session behaviour of Section 2.2;
* **outages** (``outages=OutageLog(...)``): nodes fail and recover according
  to the outage log; jobs running on failed nodes are killed and (optionally)
  restarted, and outage-aware policies see announced outages through the
  state's capacity function — Section 2.2's "Including outage information";
* **user estimates**: policies only ever see requested times, never actual
  runtimes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.outage.log import OutageLog
from repro.core.swf.fields import MISSING
from repro.core.swf.workload import Workload
from repro.evaluation.results import JobResult, SimulationResult
from repro.machine.cluster import Machine
from repro.obs.telemetry import Telemetry, telemetry_scope
from repro.schedulers.base import JobRequest, RunningJobInfo, Scheduler, SchedulerState
from repro.simulation.engine import Simulator

__all__ = ["MachineSimulation", "simulate"]

# Event priorities: completions are processed before outage transitions,
# which are processed before arrivals at the same instant, so that freed or
# failed capacity is visible to the scheduling pass triggered by an arrival.
_PRIORITY_COMPLETION = 0
_PRIORITY_OUTAGE = 1
_PRIORITY_ARRIVAL = 2


@dataclass
class _Running:
    request: JobRequest
    start_time: float
    expected_end: float
    completion_handle: object
    restarts: int = 0
    first_submit: float = 0.0


class MachineSimulation:
    """One scheduler + one machine + one workload, simulated to completion."""

    def __init__(
        self,
        workload: Workload,
        scheduler: Scheduler,
        machine_size: Optional[int] = None,
        outages: Optional[OutageLog] = None,
        honor_dependencies: bool = False,
        restart_failed_jobs: bool = True,
        max_restarts: int = 10,
    ) -> None:
        self.workload = workload
        self.scheduler = scheduler
        size = machine_size or workload.header.max_nodes or workload.max_processors()
        if not size:
            raise ValueError("machine size is unknown: pass machine_size explicitly")
        self.machine = Machine(size=int(size), name="simulated-machine")
        self.outages = outages if outages is not None else OutageLog([])
        self.honor_dependencies = honor_dependencies
        self.restart_failed_jobs = restart_failed_jobs
        self.max_restarts = max_restarts

        self.sim = Simulator()
        #: per-run registry for deterministic scheduling counters; installed
        #: as the contextvar scope during :meth:`run` so schedulers' module-
        #: level ``count()`` calls land here.
        self._telemetry = Telemetry()
        self._queue: List[JobRequest] = []
        self._running: Dict[int, _Running] = {}
        self._results: List[JobResult] = []
        self._outage_kills = 0
        self._skipped_too_large = 0
        self._submit_times: Dict[int, float] = {}
        #: dependent jobs waiting for a predecessor to finish: pred id -> [(request, think)]
        self._waiting_on: Dict[int, List[Tuple[JobRequest, int]]] = {}
        self._released: set = set()
        self._restart_counts: Dict[int, int] = {}
        # Announced-outage cache for _capacity_fn: simulation time only moves
        # forward, so records are consumed from an announce-time-sorted list
        # exactly once instead of rescanning the whole log every pass.
        self._by_announce = sorted(self.outages, key=lambda r: r.announced_time)
        self._announced: List = []
        self._announce_index = 0

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------
    def _build_requests(self) -> List[JobRequest]:
        requests = []
        for job in self.workload.summary_jobs():
            try:
                request = JobRequest.from_swf(job)
            except ValueError:
                self._skipped_too_large += 1
                continue
            if request.processors > self.machine.size:
                self._skipped_too_large += 1
                continue
            requests.append(request)
        return requests

    def _seed_events(self) -> None:
        requests = self._build_requests()
        present = {r.job_id for r in requests}
        for request in requests:
            job = request.job
            if (
                self.honor_dependencies
                and job.has_dependency
                and job.preceding_job in present
            ):
                think = job.think_time if job.think_time != MISSING else 0
                self._waiting_on.setdefault(job.preceding_job, []).append((request, think))
            else:
                self.sim.schedule_at(
                    request.submit_time,
                    self._on_arrival,
                    request,
                    priority=_PRIORITY_ARRIVAL,
                    label=f"arrival:{request.job_id}",
                )
        for record in self.outages:
            node_ids = self._outage_nodes(record)
            self.sim.schedule_at(
                record.start_time,
                self._on_outage_start,
                record,
                node_ids,
                priority=_PRIORITY_OUTAGE,
                label="outage-start",
            )
            self.sim.schedule_at(
                record.end_time,
                self._on_outage_end,
                node_ids,
                priority=_PRIORITY_OUTAGE,
                label="outage-end",
            )

    def _outage_nodes(self, record) -> List[int]:
        if record.components:
            return [c for c in record.components if 0 <= c < self.machine.size]
        # Unspecified components: take the highest-numbered nodes, a stable
        # deterministic choice that keeps results reproducible.
        count = min(record.nodes_affected, self.machine.size)
        return list(range(self.machine.size - count, self.machine.size))

    # ------------------------------------------------------------------
    # event handlers
    # ------------------------------------------------------------------
    def _on_arrival(self, request: JobRequest) -> None:
        self._queue.append(request)
        self._submit_times.setdefault(request.job_id, self.sim.now)
        self._schedule_pass()

    def _on_completion(self, job_id: int) -> None:
        running = self._running.pop(job_id, None)
        if running is None:  # completion of a job killed by an outage
            return
        self.machine.release(job_id)
        self._results.append(
            JobResult(
                job=running.request.job,
                submit_time=self._submit_times[job_id],
                start_time=running.start_time,
                end_time=self.sim.now,
                processors=running.request.processors,
                killed=False,
                restarts=running.restarts,
            )
        )
        self._release_dependents(job_id)
        self._schedule_pass()

    def _release_dependents(self, job_id: int) -> None:
        if job_id in self._released:
            return
        self._released.add(job_id)
        for request, think in self._waiting_on.pop(job_id, []):
            self.sim.schedule(
                max(0, think),
                self._on_arrival,
                request,
                priority=_PRIORITY_ARRIVAL,
                label=f"dependent-arrival:{request.job_id}",
            )

    def _on_outage_start(self, record, node_ids: List[int]) -> None:
        victims = self.machine.fail_nodes(node_ids)
        for job_id in victims:
            running = self._running.pop(job_id, None)
            if running is None:
                continue
            running.completion_handle.cancel()
            self.machine.release(job_id)
            self._outage_kills += 1
            if self.restart_failed_jobs and running.restarts < self.max_restarts:
                request = running.request
                # Restart from scratch: back into the queue at the current time.
                restarted = JobRequest(
                    job=request.job,
                    processors=request.processors,
                    runtime=request.runtime,
                    estimate=request.estimate,
                    submit_time=int(self.sim.now),
                )
                self._queue.append(restarted)
                self._restart_counts[request.job_id] = running.restarts + 1
            else:
                self._results.append(
                    JobResult(
                        job=running.request.job,
                        submit_time=self._submit_times[job_id],
                        start_time=running.start_time,
                        end_time=self.sim.now,
                        processors=running.request.processors,
                        killed=True,
                        restarts=running.restarts,
                    )
                )
                self._release_dependents(job_id)
        self._schedule_pass()

    def _on_outage_end(self, node_ids: List[int]) -> None:
        self.machine.restore_nodes(node_ids)
        self._schedule_pass()

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def _capacity_fn(self):
        """Announced-capacity function for outage-aware policies."""
        now = self.sim.now
        while (
            self._announce_index < len(self._by_announce)
            and self._by_announce[self._announce_index].announced_time <= now
        ):
            self._announced.append(self._by_announce[self._announce_index])
            self._announce_index += 1
        announced = self._announced
        machine_size = self.machine.size

        def min_capacity(start: float, end: float) -> int:
            if not announced:
                return machine_size
            boundaries = {start}
            for record in announced:
                if record.overlaps(int(start), int(max(end, start + 1))):
                    boundaries.add(max(start, record.start_time))
            minimum = machine_size
            for t in boundaries:
                down = sum(
                    r.nodes_affected
                    for r in announced
                    if r.start_time <= t < r.end_time
                )
                minimum = min(minimum, max(0, machine_size - down))
            return minimum

        return min_capacity

    def _state(self) -> SchedulerState:
        running_infos = [
            RunningJobInfo(
                request=r.request,
                start_time=r.start_time,
                expected_end=max(r.expected_end, self.sim.now),
            )
            for r in self._running.values()
        ]
        return SchedulerState(
            now=self.sim.now,
            total_processors=self.machine.size,
            free_processors=self.machine.free_count(),
            queue=list(self._queue),
            running=running_infos,
            min_capacity=self._capacity_fn(),
        )

    def _schedule_pass(self) -> None:
        if not self._queue:
            return
        self._telemetry.counter("sched_passes").inc()
        self._telemetry.gauge("max_queue_depth").set_max(len(self._queue))
        state = self._state()
        selected = self.scheduler.select_jobs(state)
        if not selected:
            return
        selected_ids = set()
        total_requested = 0
        queued_ids = {r.job_id for r in self._queue}
        for request in selected:
            if request.job_id not in queued_ids or request.job_id in selected_ids:
                raise RuntimeError(
                    f"scheduler {self.scheduler.name!r} selected job {request.job_id} "
                    "which is not in the wait queue"
                )
            selected_ids.add(request.job_id)
            total_requested += request.processors
        if total_requested > state.free_processors:
            raise RuntimeError(
                f"scheduler {self.scheduler.name!r} over-committed the machine: "
                f"selected {total_requested} processors with {state.free_processors} free"
            )
        for request in selected:
            self._start_job(request)
        self._queue = [r for r in self._queue if r.job_id not in selected_ids]

    def _start_job(self, request: JobRequest) -> None:
        self._telemetry.counter("jobs_started").inc()
        self.machine.allocate(request.job_id, request.processors, start_time=self.sim.now)
        handle = self.sim.schedule(
            request.runtime,
            self._on_completion,
            request.job_id,
            priority=_PRIORITY_COMPLETION,
            label=f"completion:{request.job_id}",
        )
        self._running[request.job_id] = _Running(
            request=request,
            start_time=self.sim.now,
            expected_end=self.sim.now + request.estimate,
            completion_handle=handle,
            restarts=self._restart_counts.get(request.job_id, 0),
            first_submit=self._submit_times.get(request.job_id, self.sim.now),
        )

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Run the simulation to completion and return the results."""
        with telemetry_scope(self._telemetry):
            self._seed_events()
            self.sim.run()
        counters = self._telemetry.as_counters()
        counters["events_processed"] = self.sim.processed_events
        counters["peak_event_queue"] = self.sim.peak_queue
        result = SimulationResult(
            scheduler_name=self.scheduler.name,
            machine_size=self.machine.size,
            jobs=sorted(self._results, key=lambda j: j.job_id),
            outage_kills=self._outage_kills,
            metadata={
                "skipped_too_large": self._skipped_too_large,
                "workload": self.workload.name,
                "honor_dependencies": self.honor_dependencies,
            },
            counters={k: int(v) for k, v in sorted(counters.items())},
        )
        if len(self.outages) > 0:
            from repro.core.outage.availability import AvailabilityTimeline

            timeline = AvailabilityTimeline(self.machine.size, self.outages)
            result.available_node_seconds = float(
                timeline.available_node_seconds(0, int(result.makespan) + 1)
            )
        return result


def simulate(
    workload: Workload,
    scheduler: Scheduler,
    machine_size: Optional[int] = None,
    outages: Optional[OutageLog] = None,
    honor_dependencies: bool = False,
    restart_failed_jobs: bool = True,
    max_restarts: int = 10,
) -> SimulationResult:
    """Convenience wrapper: build a :class:`MachineSimulation` and run it."""
    return MachineSimulation(
        workload=workload,
        scheduler=scheduler,
        machine_size=machine_size,
        outages=outages,
        honor_dependencies=honor_dependencies,
        restart_failed_jobs=restart_failed_jobs,
        max_restarts=max_restarts,
    ).run()
