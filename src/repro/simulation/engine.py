"""A small deterministic discrete-event simulation engine.

The engine maintains a priority queue of :class:`Event` objects ordered by
``(time, priority, sequence)``.  The sequence number guarantees a stable,
deterministic order for events scheduled at the same instant with the same
priority, which is essential for reproducible scheduler evaluations: two runs
of the same workload with the same seed must produce bit-identical schedules.

The API is intentionally minimal — scheduler simulators in
:mod:`repro.evaluation` and :mod:`repro.grid` drive it through three calls:

``schedule(delay, callback, ...)``
    enqueue an event relative to the current time,

``schedule_at(time, callback, ...)``
    enqueue an event at an absolute time,

``run(until=None)``
    process events in order until the queue drains or ``until`` is reached.

Events may be cancelled through the :class:`EventHandle` returned by the
``schedule*`` calls; cancellation is O(1) (the event is flagged and skipped
when popped), matching the usual "lazy deletion" technique for binary-heap
event queues.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

__all__ = ["Event", "EventHandle", "Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised when the simulation is driven incorrectly.

    Examples: scheduling an event in the past, or running a simulator that
    has already been stopped.
    """


@dataclass(order=True)
class Event:
    """A single scheduled occurrence inside the simulation.

    Events compare by ``(time, priority, sequence)`` so that

    * earlier events run first,
    * among simultaneous events, lower ``priority`` runs first,
    * among equal-priority simultaneous events, insertion order wins.
    """

    time: float
    priority: int
    sequence: int
    callback: Callable[..., Any] = field(compare=False)
    args: tuple = field(compare=False, default=())
    kwargs: dict = field(compare=False, default_factory=dict)
    cancelled: bool = field(compare=False, default=False)
    label: str = field(compare=False, default="")


class EventHandle:
    """A cancellable reference to a scheduled :class:`Event`."""

    __slots__ = ("_event",)

    def __init__(self, event: Event) -> None:
        self._event = event

    @property
    def time(self) -> float:
        """Absolute simulation time the event is scheduled for."""
        return self._event.time

    @property
    def label(self) -> str:
        """Human-readable label attached at scheduling time."""
        return self._event.label

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self._event.cancelled = True


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    start_time:
        Initial value of the simulation clock (seconds).  Workload replay
        typically starts at 0, matching the SWF convention that the first
        submit time is the time origin.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(10.0, fired.append, 'a')
    >>> _ = sim.schedule(5.0, fired.append, 'b')
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.now
    10.0
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: list[Event] = []
        self._counter = itertools.count()
        self._running = False
        self._stopped = False
        self._processed = 0
        self._peak_queue = 0

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including lazily-cancelled ones)."""
        return sum(1 for e in self._queue if not e.cancelled)

    @property
    def peak_queue(self) -> int:
        """High-water mark of the event queue length.

        Counts raw heap entries (lazily-cancelled events included), so the
        value is a deterministic function of the event sequence alone.
        """
        return self._peak_queue

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        label: str = "",
        **kwargs: Any,
    ) -> EventHandle:
        """Schedule ``callback(*args, **kwargs)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event {delay} s in the past")
        return self.schedule_at(
            self._now + delay, callback, *args, priority=priority, label=label, **kwargs
        )

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        label: str = "",
        **kwargs: Any,
    ) -> EventHandle:
        """Schedule ``callback(*args, **kwargs)`` at absolute simulation time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event at t={time} before current time t={self._now}"
            )
        event = Event(
            time=float(time),
            priority=priority,
            sequence=next(self._counter),
            callback=callback,
            args=args,
            kwargs=kwargs,
            label=label,
        )
        heapq.heappush(self._queue, event)
        if len(self._queue) > self._peak_queue:
            self._peak_queue = len(self._queue)
        return EventHandle(event)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> Optional[Event]:
        """Execute the single next non-cancelled event.

        Returns the executed event, or ``None`` if the queue is empty.
        """
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self._processed += 1
            event.callback(*event.args, **event.kwargs)
            return event
        return None

    def peek(self) -> Optional[float]:
        """Time of the next non-cancelled event, or ``None`` if the queue is empty."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        if not self._queue:
            return None
        return self._queue[0].time

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run the simulation.

        Parameters
        ----------
        until:
            Stop once the next event would occur strictly after ``until``;
            the clock is advanced to ``until``.  ``None`` runs to queue
            exhaustion.
        max_events:
            Safety valve: stop after this many events.

        Returns
        -------
        int
            The number of events executed by this call.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        self._stopped = False
        executed = 0
        try:
            while True:
                if self._stopped:
                    break
                if max_events is not None and executed >= max_events:
                    break
                next_time = self.peek()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self._now = max(self._now, float(until))
                    break
                self.step()
                executed += 1
        finally:
            self._running = False
        return executed

    def stop(self) -> None:
        """Request the current :meth:`run` loop to stop after the current event."""
        self._stopped = True

    def advance_to(self, time: float) -> None:
        """Advance the clock without executing events (only forward, only when idle)."""
        if time < self._now:
            raise SimulationError("cannot move the simulation clock backwards")
        if self.peek() is not None and self.peek() < time:
            raise SimulationError("cannot skip over pending events with advance_to()")
        self._now = float(time)
