"""Discrete-event simulation kernel and statistical distributions.

This package provides the substrate every simulator in :mod:`repro` is built
on:

* :class:`~repro.simulation.engine.Simulator` — a deterministic
  discrete-event engine (priority queue of timestamped events with stable
  tie-breaking).
* :mod:`~repro.simulation.distributions` — the random distributions the
  published workload models require (log-uniform, hyper-exponential,
  hyper-Erlang, two-stage hyper-gamma, Zipf, Weibull), all driven by
  :class:`numpy.random.Generator` for reproducibility.

The paper's evaluation methodology assumes an event-driven scheduler
simulator; ``simpy`` is not available in this environment, so the kernel is
implemented from scratch (see DESIGN.md, substitution table).
"""

from repro.simulation.engine import Event, EventHandle, Simulator
from repro.simulation.distributions import (
    DiscreteSampler,
    HyperExponential,
    HyperErlang,
    HyperGamma,
    LogUniform,
    TruncatedNormal,
    Weibull,
    Zipf,
    make_rng,
)

__all__ = [
    "Event",
    "EventHandle",
    "Simulator",
    "DiscreteSampler",
    "HyperExponential",
    "HyperErlang",
    "HyperGamma",
    "LogUniform",
    "TruncatedNormal",
    "Weibull",
    "Zipf",
    "make_rng",
]
