"""Statistical distributions used by the published workload models.

The rigid-job workload models the paper cites (Feitelson '96, Jann '97,
Lublin '99, Downey '97) are built from a small set of distributions that are
not all available directly from :mod:`numpy.random`:

* **log-uniform** — Downey's model for total work and for the cumulative
  runtime distribution,
* **hyper-exponential** — Feitelson's runtime model (two-branch) and many
  interarrival models,
* **hyper-Erlang** — Jann et al. fit interarrival and service times with
  hyper-Erlang distributions of common order,
* **hyper-Gamma** — Lublin & Feitelson model runtimes with a two-stage
  hyper-Gamma whose mixing probability depends on the job size,
* **Zipf** — popularity of users / executables,
* **Weibull** — time-between-failures for the outage generator.

Every class exposes ``sample(rng)`` / ``sample_many(rng, n)`` and ``mean()``
where a closed form exists, and carries its parameters as read-only
attributes so the workload models can be introspected and tested.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

__all__ = [
    "make_rng",
    "LogUniform",
    "HyperExponential",
    "HyperErlang",
    "HyperGamma",
    "Zipf",
    "Weibull",
    "TruncatedNormal",
    "DiscreteSampler",
]


def make_rng(seed: Optional[int] = None) -> np.random.Generator:
    """Create a :class:`numpy.random.Generator` from an optional integer seed.

    Passing ``None`` produces a non-deterministic generator; every benchmark
    and experiment in this repository passes an explicit seed so results are
    reproducible run to run.
    """
    return np.random.default_rng(seed)


def _as_rng(rng: Optional[np.random.Generator]) -> np.random.Generator:
    return rng if rng is not None else make_rng()


@dataclass(frozen=True)
class LogUniform:
    """Log-uniform distribution on ``[low, high]``.

    ``ln(X)`` is uniform on ``[ln(low), ln(high)]``.  Used by Downey's model
    for cumulative runtime and total allocated work.
    """

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.low <= 0 or self.high <= 0:
            raise ValueError("log-uniform bounds must be positive")
        if self.low > self.high:
            raise ValueError("low must not exceed high")

    def sample(self, rng: Optional[np.random.Generator] = None) -> float:
        rng = _as_rng(rng)
        return float(np.exp(rng.uniform(math.log(self.low), math.log(self.high))))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return np.exp(rng.uniform(math.log(self.low), math.log(self.high), size=n))

    def mean(self) -> float:
        if self.low == self.high:
            return self.low
        return (self.high - self.low) / (math.log(self.high) - math.log(self.low))


@dataclass(frozen=True)
class HyperExponential:
    """Mixture of exponentials: branch ``i`` with probability ``probs[i]`` and rate ``rates[i]``."""

    probs: tuple
    rates: tuple

    def __post_init__(self) -> None:
        if len(self.probs) != len(self.rates):
            raise ValueError("probs and rates must have the same length")
        if not self.probs:
            raise ValueError("at least one branch is required")
        if any(p < 0 for p in self.probs):
            raise ValueError("probabilities must be non-negative")
        total = sum(self.probs)
        if not math.isclose(total, 1.0, rel_tol=1e-9, abs_tol=1e-9):
            raise ValueError(f"branch probabilities must sum to 1 (got {total})")
        if any(r <= 0 for r in self.rates):
            raise ValueError("rates must be positive")

    @staticmethod
    def two_branch(p: float, rate1: float, rate2: float) -> "HyperExponential":
        """Convenience constructor for the common two-branch form."""
        return HyperExponential(probs=(p, 1.0 - p), rates=(rate1, rate2))

    def sample(self, rng: Optional[np.random.Generator] = None) -> float:
        rng = _as_rng(rng)
        branch = rng.choice(len(self.probs), p=self.probs)
        return float(rng.exponential(1.0 / self.rates[branch]))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        branches = rng.choice(len(self.probs), size=n, p=self.probs)
        scales = np.asarray([1.0 / r for r in self.rates])[branches]
        return rng.exponential(scales)

    def mean(self) -> float:
        return sum(p / r for p, r in zip(self.probs, self.rates))

    def variance(self) -> float:
        second_moment = sum(2.0 * p / (r * r) for p, r in zip(self.probs, self.rates))
        return second_moment - self.mean() ** 2

    def cv2(self) -> float:
        """Squared coefficient of variation (>= 1 for any hyper-exponential)."""
        m = self.mean()
        return self.variance() / (m * m)


@dataclass(frozen=True)
class HyperErlang:
    """Mixture of Erlang distributions of common order (Jann et al. 1997).

    Branch ``i`` is chosen with probability ``probs[i]`` and contributes an
    Erlang(``order``, ``rates[i]``) variate, i.e. the sum of ``order``
    exponentials of rate ``rates[i]``.
    """

    probs: tuple
    rates: tuple
    order: int

    def __post_init__(self) -> None:
        if len(self.probs) != len(self.rates):
            raise ValueError("probs and rates must have the same length")
        if self.order < 1:
            raise ValueError("Erlang order must be >= 1")
        total = sum(self.probs)
        if not math.isclose(total, 1.0, rel_tol=1e-9, abs_tol=1e-9):
            raise ValueError(f"branch probabilities must sum to 1 (got {total})")
        if any(r <= 0 for r in self.rates):
            raise ValueError("rates must be positive")

    def sample(self, rng: Optional[np.random.Generator] = None) -> float:
        rng = _as_rng(rng)
        branch = rng.choice(len(self.probs), p=self.probs)
        return float(rng.gamma(shape=self.order, scale=1.0 / self.rates[branch]))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        branches = rng.choice(len(self.probs), size=n, p=self.probs)
        scales = np.asarray([1.0 / r for r in self.rates])[branches]
        return rng.gamma(shape=self.order, scale=scales)

    def mean(self) -> float:
        return sum(p * self.order / r for p, r in zip(self.probs, self.rates))


@dataclass(frozen=True)
class HyperGamma:
    """Two-stage hyper-Gamma distribution (Lublin & Feitelson 1999/2003).

    With probability ``p`` the variate is Gamma(``shape1``, ``scale1``),
    otherwise Gamma(``shape2``, ``scale2``).  Lublin's runtime model makes
    ``p`` a linear function of the job size; that coupling lives in
    :mod:`repro.workloads.lublin99`, this class is the plain mixture.
    """

    p: float
    shape1: float
    scale1: float
    shape2: float
    scale2: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.p <= 1.0:
            raise ValueError("mixing probability must be in [0, 1]")
        for name in ("shape1", "scale1", "shape2", "scale2"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    def sample(self, rng: Optional[np.random.Generator] = None) -> float:
        rng = _as_rng(rng)
        if rng.random() < self.p:
            return float(rng.gamma(self.shape1, self.scale1))
        return float(rng.gamma(self.shape2, self.scale2))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        use_first = rng.random(n) < self.p
        out = np.where(
            use_first,
            rng.gamma(self.shape1, self.scale1, size=n),
            rng.gamma(self.shape2, self.scale2, size=n),
        )
        return out

    def mean(self) -> float:
        return self.p * self.shape1 * self.scale1 + (1.0 - self.p) * self.shape2 * self.scale2


@dataclass(frozen=True)
class Zipf:
    """Bounded Zipf distribution over ``{1, ..., n}`` with exponent ``alpha``.

    Used for the popularity of users, groups, and executables when
    synthesizing SWF traces: a few users submit most of the jobs.
    """

    n: int
    alpha: float = 1.0

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError("support size must be >= 1")
        if self.alpha < 0:
            raise ValueError("alpha must be non-negative")

    def _pmf(self) -> np.ndarray:
        ranks = np.arange(1, self.n + 1, dtype=float)
        weights = ranks ** (-self.alpha)
        return weights / weights.sum()

    def sample(self, rng: Optional[np.random.Generator] = None) -> int:
        rng = _as_rng(rng)
        return int(rng.choice(np.arange(1, self.n + 1), p=self._pmf()))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.choice(np.arange(1, self.n + 1), size=n, p=self._pmf())

    def mean(self) -> float:
        pmf = self._pmf()
        return float(np.sum(pmf * np.arange(1, self.n + 1)))


@dataclass(frozen=True)
class Weibull:
    """Weibull distribution with ``shape`` k and ``scale`` lambda.

    ``shape < 1`` gives a decreasing hazard rate (infant-mortality-like
    failures), ``shape > 1`` an increasing one (wear-out); the outage
    generator defaults to ``shape < 1`` which matches observed supercomputer
    failure data.
    """

    shape: float
    scale: float

    def __post_init__(self) -> None:
        if self.shape <= 0 or self.scale <= 0:
            raise ValueError("shape and scale must be positive")

    def sample(self, rng: Optional[np.random.Generator] = None) -> float:
        rng = _as_rng(rng)
        return float(self.scale * rng.weibull(self.shape))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return self.scale * rng.weibull(self.shape, size=n)

    def mean(self) -> float:
        return self.scale * math.gamma(1.0 + 1.0 / self.shape)


@dataclass(frozen=True)
class TruncatedNormal:
    """Normal distribution truncated (by resampling) to ``[low, high]``."""

    mu: float
    sigma: float
    low: float
    high: float

    def __post_init__(self) -> None:
        if self.sigma <= 0:
            raise ValueError("sigma must be positive")
        if self.low >= self.high:
            raise ValueError("low must be strictly below high")

    def sample(self, rng: Optional[np.random.Generator] = None) -> float:
        rng = _as_rng(rng)
        # Rejection sampling is fine here: callers use mild truncation.
        for _ in range(10_000):
            x = rng.normal(self.mu, self.sigma)
            if self.low <= x <= self.high:
                return float(x)
        # Pathological truncation: fall back to clipping.
        return float(min(max(rng.normal(self.mu, self.sigma), self.low), self.high))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return np.asarray([self.sample(rng) for _ in range(n)])


class DiscreteSampler:
    """Weighted sampler over an arbitrary finite set of values.

    Parameters
    ----------
    values:
        The support.
    weights:
        Non-negative weights; normalized internally.
    """

    def __init__(self, values: Sequence, weights: Sequence[float]) -> None:
        if len(values) != len(weights):
            raise ValueError("values and weights must have the same length")
        if len(values) == 0:
            raise ValueError("support must be non-empty")
        w = np.asarray(weights, dtype=float)
        if np.any(w < 0):
            raise ValueError("weights must be non-negative")
        total = w.sum()
        if total <= 0:
            raise ValueError("at least one weight must be positive")
        self._values = list(values)
        self._probs = w / total

    @property
    def values(self) -> list:
        return list(self._values)

    @property
    def probabilities(self) -> np.ndarray:
        return self._probs.copy()

    def sample(self, rng: Optional[np.random.Generator] = None):
        rng = _as_rng(rng)
        idx = rng.choice(len(self._values), p=self._probs)
        return self._values[idx]

    def sample_many(self, rng: np.random.Generator, n: int) -> list:
        idx = rng.choice(len(self._values), size=n, p=self._probs)
        return [self._values[i] for i in idx]
