"""The evaluation service: submissions, coalescing, the admission queue.

This is the scheduler-evaluation economics the paper's shared-benchmark
argument implies, made operational: every submission is reduced to a
**content digest** before any work happens — a suite digests to the sorted
set of its replications' result keys, a single scenario to its
:func:`~repro.bench.store.result_key` — and that digest is the job id.  Two
users asking the same question therefore *cannot* cause two computations:

* a submission whose digest matches an in-flight or finished job joins it
  (**request coalescing** — the second HTTP response carries the same id);
* cases a previous run already answered are served straight from the
  content-addressed :class:`~repro.bench.store.ResultStore`, and only the
  misses fan out through ``run_many`` (exactly :func:`repro.bench.runner.
  run_suite`, whose per-unit ``progress`` callback feeds live job status);
* completed payloads are immutable — the digest names the bytes — which is
  what makes the HTTP layer's ``ETag``/304 handling trivially correct.

Admission is explicit: at most ``queue_limit`` jobs may wait, beyond which
submissions are rejected with HTTP 429 (the daemon adds ``Retry-After``);
``workers`` bounds concurrent evaluations (a thread pool — the simulators
release work to ``run_many`` worker *processes*, so threads only wait).
Draining stops admission (503) and lets everything already admitted finish.

The class is transport-agnostic: :meth:`EvaluationService.handle_request`
maps (method, path, headers, body) to a :class:`Response`, and the asyncio
daemon in :mod:`repro.serve.daemon` is one thin adapter over it.
"""

from __future__ import annotations

import asyncio
import json
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, AsyncIterator, Dict, List, Optional, Tuple

from repro.api.registry import RegistryError, parse_spec, scheduler_registry
from repro.api.scenario import Scenario
from repro.bench.runner import _expand, _trace_extra, run_suite
from repro.bench.store import ResultStore, StoredResult, code_version, result_key
from repro.obs.journal import JobJournal, replay as replay_journal
from repro.bench.suite import BenchmarkSuite, get_suite
from repro.obs.prometheus import CONTENT_TYPE as _PROMETHEUS_CONTENT_TYPE
from repro.obs.prometheus import render as _render_prometheus
from repro.obs.telemetry import Telemetry
from repro.obs.trace import Tracer, chrome_trace
from repro.serve.html import render_report
from repro.util import canonical_hash

__all__ = [
    "EvaluationService",
    "Evaluation",
    "Job",
    "Response",
    "SubmissionError",
    "QueueFull",
    "ServiceDraining",
    "resolve_submission",
    "json_response",
]

#: Job lifecycle states.
QUEUED, RUNNING, DONE, FAILED = "queued", "running", "done", "failed"


class SubmissionError(ValueError):
    """The submission body does not describe a runnable evaluation (HTTP 400)."""


class QueueFull(RuntimeError):
    """The admission queue is at ``queue_limit`` (HTTP 429)."""


class ServiceDraining(RuntimeError):
    """The service is shutting down and admits nothing new (HTTP 503)."""


# ----------------------------------------------------------------------
# HTTP-shaped response (transport-agnostic)
# ----------------------------------------------------------------------
@dataclass
class Response:
    """One HTTP response: status, body, and any extra headers.

    A response may instead carry ``stream`` — an async iterator of body
    chunks (the events endpoint).  The daemon then writes chunked transfer
    encoding and ``body`` is ignored.
    """

    status: int
    body: bytes = b""
    content_type: str = "application/json"
    headers: Dict[str, str] = field(default_factory=dict)
    stream: Optional[AsyncIterator[bytes]] = None


def json_response(status: int, payload: Any, **headers: str) -> Response:
    body = (json.dumps(payload, sort_keys=True, indent=2) + "\n").encode("utf-8")
    return Response(status=status, body=body, headers=dict(headers))


def html_response(status: int, text: str, **headers: str) -> Response:
    return Response(
        status=status,
        body=text.encode("utf-8"),
        content_type="text/html; charset=utf-8",
        headers=dict(headers),
    )


# ----------------------------------------------------------------------
# submissions → evaluations
# ----------------------------------------------------------------------
@dataclass
class Evaluation:
    """A resolved submission: what to run, and the digest that names it."""

    kind: str  # "suite" | "scenario"
    label: str
    digest: str
    #: distinct work units (unique result keys) the run resolves
    total: int
    suite: Optional[BenchmarkSuite] = None
    scenario: Optional[Scenario] = None
    #: non-scenario key material (trace digests) for the scenario kind
    extra: Dict[str, Any] = field(default_factory=dict)
    #: the normalized submission body — journaled so a restarted daemon can
    #: re-resolve (and re-validate) the job without trusting stale state
    submission: Dict[str, Any] = field(default_factory=dict)


def resolve_submission(payload: Any) -> Evaluation:
    """Validate a submission body and reduce it to its content digest.

    ``{"suite": "smoke"}`` names a registered suite; ``{"scenario": {...}}``
    carries one Scenario JSON object.  Validation is eager — unknown suites,
    unknown policies, and malformed trace specs are rejected here, at
    submission time, not minutes later inside a worker.
    """
    if not isinstance(payload, dict):
        raise SubmissionError("submission body must be a JSON object")
    if "suite" in payload:
        name = payload["suite"]
        if not isinstance(name, str):
            raise SubmissionError("'suite' must be a suite name string")
        try:
            suite = get_suite(name)
            keys = sorted({entry[4] for entry in _expand(suite)})
        except (RegistryError, KeyError, ValueError) as exc:
            raise SubmissionError(str(exc)) from exc
        digest = canonical_hash(
            {"kind": "suite", "suite": suite.name, "keys": keys}
        )
        return Evaluation(
            kind="suite",
            label=f"suite:{suite.name}",
            digest=digest,
            total=len(keys),
            suite=suite,
            submission={"suite": suite.name},
        )
    if "scenario" in payload:
        if not isinstance(payload["scenario"], dict):
            raise SubmissionError("'scenario' must be a Scenario JSON object")
        try:
            scenario = Scenario.from_dict(payload["scenario"])
            # Resolve the policy spec now: a typo'd policy must 400, not
            # fail the job later.
            scheduler_registry.get(parse_spec(scenario.policy)[0])
            extra = _trace_extra(scenario)
        except (RegistryError, KeyError, TypeError, ValueError) as exc:
            raise SubmissionError(str(exc)) from exc
        digest = result_key(scenario, extra)
        return Evaluation(
            kind="scenario",
            label=scenario.label,
            digest=digest,
            total=1,
            scenario=scenario,
            extra=extra,
            submission={"scenario": scenario.to_dict()},
        )
    raise SubmissionError("submission must contain 'suite' or 'scenario'")


# ----------------------------------------------------------------------
# jobs
# ----------------------------------------------------------------------
@dataclass
class Job:
    """One admitted evaluation, identified by its content digest."""

    evaluation: Evaluation
    state: str = QUEUED
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    done_units: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    error: Optional[str] = None
    #: lifecycle/progress events in arrival order (what /events streams);
    #: appended from the event loop and executor threads, read by streamers
    events: List[Dict[str, Any]] = field(default_factory=list)
    #: True when the job was reconstructed from the journal at boot
    replayed: bool = False

    @property
    def digest(self) -> str:
        return self.evaluation.digest

    def to_dict(self) -> Dict[str, Any]:
        info: Dict[str, Any] = {
            "id": self.digest,
            "kind": self.evaluation.kind,
            "label": self.evaluation.label,
            "state": self.state,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "progress": {
                "done": self.done_units,
                "total": self.evaluation.total,
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
            },
            "links": {
                "self": f"/v1/runs/{self.digest}",
                "events": f"/v1/runs/{self.digest}/events",
            },
        }
        if self.replayed:
            info["replayed"] = True
        if self.error is not None:
            info["error"] = self.error
        if self.state == DONE:
            info["links"]["result"] = f"/v1/results/{self.digest}"
            info["links"]["report"] = f"/v1/reports/{self.digest}"
        return info


# ----------------------------------------------------------------------
# the service
# ----------------------------------------------------------------------
class EvaluationService:
    """Digest-keyed evaluation jobs over the content-addressed bench store."""

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        workers: int = 2,
        queue_limit: int = 8,
        run_workers: Optional[int] = None,
        use_cache: bool = True,
        retry_after_seconds: int = 5,
        journal: Optional[JobJournal] = None,
        max_trace_spans: int = 4096,
        dist_queue: Optional[Any] = None,
        dist_poll_interval: float = 0.25,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        self.store = store if store is not None else ResultStore()
        self.workers = workers
        self.queue_limit = queue_limit
        self.run_workers = run_workers
        self.use_cache = use_cache
        #: when set (a :class:`repro.dist.WorkQueue`), suite jobs are
        #: *delegated*: enqueued onto the distributed work queue and watched
        #: until external workers drain them into the shared store, instead
        #: of simulating in-process.  Scenario jobs always run locally.
        self.dist_queue = dist_queue
        self.dist_poll_interval = dist_poll_interval
        self.retry_after_seconds = retry_after_seconds
        self.draining = False
        self.started_at = time.time()
        #: every admitted job, by digest (the coalescing map)
        self.jobs: Dict[str, Job] = {}
        #: finished report payloads, by digest (immutable once present)
        self.results: Dict[str, Dict[str, Any]] = {}
        self.stats = {"submitted": 0, "coalesced": 0, "rejected": 0, "executed": 0}
        #: service-lifetime metrics registry behind ``GET /v1/metrics``.
        #: Only ever touched from the event-loop thread (request routing and
        #: post-await job accounting), so no locking is needed.
        self.telemetry = Telemetry()
        #: bounded service-lifetime timeline behind ``GET /v1/trace`` —
        #: retroactive spans for requests and job lifecycles
        self.tracer = Tracer(max_spans=max_trace_spans)
        #: append-only lifecycle journal (None = don't persist)
        self.journal = journal
        #: what replaying the journal at boot found (always present so
        #: healthz/metrics report zeros rather than omitting the fields)
        self.replay_stats: Dict[str, int] = {
            "events": 0,
            "malformed": 0,
            "bytes_read": 0,
            "jobs_restored": 0,
            "jobs_skipped": 0,
        }
        self._queue: Optional[asyncio.Queue] = None
        self._worker_tasks: List[asyncio.Task] = []
        self._executor: Optional[ThreadPoolExecutor] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        #: rotated on every new event; streamers await the current one
        self._event_waiter: Optional[asyncio.Event] = None
        if self.journal is not None:
            self._replay_journal()

    # ------------------------------------------------------------------
    # the job journal: recording and boot-time replay
    # ------------------------------------------------------------------
    def _record_event(self, job: Job, event: str, durable: bool = False, **fields: Any) -> None:
        """Append one lifecycle event: journal (if any), job, stream waiters.

        Called from the event loop *and* from executor threads (progress);
        the journal locks internally, list appends are atomic, and waiter
        wake-ups are marshalled onto the loop.
        """
        record: Dict[str, Any] = {"event": event, "digest": job.digest, **fields}
        if self.journal is not None:
            record = self.journal.append(record, durable=durable)
        else:
            record.setdefault("ts", round(time.time(), 6))
        job.events.append(record)
        if self._loop is not None:
            try:
                self._loop.call_soon_threadsafe(self._notify_event)
            except RuntimeError:  # loop already closed (late progress)
                pass

    def _notify_event(self) -> None:
        """Wake every event streamer: rotate the shared waiter."""
        if self._event_waiter is not None:
            waiter, self._event_waiter = self._event_waiter, asyncio.Event()
            waiter.set()

    def _replay_journal(self) -> None:
        """Rebuild finished jobs from the journal (crash/restart recovery).

        Only digests whose *last* lifecycle state is ``done`` come back: a
        job interrupted mid-run was never answered, so a resubmission must
        run it again rather than coalesce onto a ghost.  Each candidate is
        re-resolved from its journaled submission and kept only when the
        digest still matches — entries minted by an older code version are
        stale and skipped.  Result payloads are rebuilt lazily from the
        content-addressed store on first request (zero simulation while the
        store is intact).
        """
        replayed = replay_journal(self.journal.path)
        self.replay_stats.update(
            events=len(replayed.events),
            malformed=replayed.malformed,
            bytes_read=replayed.bytes_read,
        )
        for digest, events in replayed.by_digest().items():
            lifecycle = [e for e in events if e.get("event") in (QUEUED, RUNNING, DONE, FAILED)]
            if not lifecycle or lifecycle[-1].get("event") != DONE:
                continue
            submission = next(
                (e.get("submission") for e in reversed(events)
                 if e.get("event") == QUEUED and isinstance(e.get("submission"), dict)),
                None,
            )
            if submission is None:
                self.replay_stats["jobs_skipped"] += 1
                continue
            try:
                evaluation = resolve_submission(submission)
            except SubmissionError:
                self.replay_stats["jobs_skipped"] += 1
                continue
            if evaluation.digest != digest:
                # same submission, different digest: the code moved on
                self.replay_stats["jobs_skipped"] += 1
                continue
            done = lifecycle[-1]
            job = Job(evaluation=evaluation, state=DONE, replayed=True)
            job.submitted_at = float(lifecycle[0].get("ts") or job.submitted_at)
            started = next(
                (e.get("ts") for e in lifecycle if e.get("event") == RUNNING), None
            )
            job.started_at = float(started) if started is not None else None
            job.finished_at = float(done.get("ts") or job.submitted_at)
            job.done_units = evaluation.total
            job.cache_hits = int(done.get("cache_hits") or 0)
            job.cache_misses = int(done.get("cache_misses") or 0)
            job.events = list(events)
            self.jobs[digest] = job
            self.replay_stats["jobs_restored"] += 1

    def _rebuild_payload(self, job: Job) -> Dict[str, Any]:
        """Re-derive a replayed job's payload from the warm store.

        With the store intact this is pure cache lookups; if entries were
        evicted in between, the affected cases re-run — correctness over
        speed, and the journal never lies about what finished.
        """
        payload = self._execute(job, record_progress=False)
        self.results[job.digest] = payload
        return payload

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Create the admission queue and the worker tasks (idempotent)."""
        if self._queue is not None:
            return
        self._loop = asyncio.get_running_loop()
        self._event_waiter = asyncio.Event()
        self._queue = asyncio.Queue()
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-serve"
        )
        self._worker_tasks = [
            asyncio.create_task(self._worker(), name=f"serve-worker-{i}")
            for i in range(self.workers)
        ]

    async def drain(self) -> None:
        """Stop admission, run everything already admitted, stop workers.

        Graceful by construction: ``queue.join()`` returns only after every
        admitted job reached a terminal state, so a SIGTERM never discards
        an accepted submission.
        """
        self.draining = True
        if self._queue is None:
            if self.journal is not None:
                self.journal.close()
            return
        await self._queue.join()
        for task in self._worker_tasks:
            task.cancel()
        await asyncio.gather(*self._worker_tasks, return_exceptions=True)
        self._worker_tasks = []
        if self._executor is not None:
            self._executor.shutdown(wait=True)
        # One last wake-up so event streamers observe the terminal states.
        self._notify_event()
        if self.journal is not None:
            self.journal.close()

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def queued_count(self) -> int:
        return sum(1 for job in self.jobs.values() if job.state == QUEUED)

    def submit(self, payload: Any) -> Tuple[Job, bool]:
        """Admit a submission; returns ``(job, created)``.

        Coalescing comes first: a digest already known — queued, running,
        or finished — returns the existing job without consuming queue
        capacity, so identical submissions are immune to backpressure.
        """
        evaluation = resolve_submission(payload)
        existing = self.jobs.get(evaluation.digest)
        if existing is not None:
            self.stats["coalesced"] += 1
            return existing, False
        if self.draining or self._queue is None:
            raise ServiceDraining("service is draining; not accepting new runs")
        if self.queued_count() >= self.queue_limit:
            self.stats["rejected"] += 1
            raise QueueFull(
                f"admission queue is full ({self.queue_limit} waiting)"
            )
        job = Job(evaluation=evaluation)
        self.jobs[evaluation.digest] = job
        self.stats["submitted"] += 1
        self._record_event(
            job,
            QUEUED,
            kind=evaluation.kind,
            label=evaluation.label,
            total=evaluation.total,
            submission=evaluation.submission,
        )
        self._queue.put_nowait(job)
        return job, True

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    async def _worker(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            job = await self._queue.get()
            try:
                job.state = RUNNING
                job.started_at = time.time()
                self.stats["executed"] += 1
                self._record_event(job, RUNNING)
                payload = await loop.run_in_executor(
                    self._executor, self._execute, job
                )
                self.results[job.digest] = payload
                job.state = DONE
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # a failed job must not kill the worker
                job.error = f"{type(exc).__name__}: {exc}"
                job.state = FAILED
            finally:
                job.finished_at = time.time()
                self._finish_job(job)
                self._queue.task_done()

    def _finish_job(self, job: Job) -> None:
        """Terminal accounting: durable journal event, metrics, timeline."""
        finished = job.finished_at or time.time()
        terminal: Dict[str, Any] = {
            "cache_hits": job.cache_hits,
            "cache_misses": job.cache_misses,
            "seconds": round(finished - (job.started_at or finished), 6),
        }
        if job.error is not None:
            terminal["error"] = job.error
        # Terminal states fsync immediately: a crash right after must not
        # forget that the job finished.
        self._record_event(job, job.state, durable=True, **terminal)
        self.telemetry.counter(
            "repro_jobs_total", "Jobs finished, by kind and final state."
        ).inc(kind=job.evaluation.kind, state=job.state)
        self.telemetry.histogram(
            "repro_job_seconds",
            help_text="Wall-clock job execution latency (queue wait excluded).",
        ).observe(
            finished - (job.started_at or finished),
            kind=job.evaluation.kind,
        )
        # The job's lifecycle, retroactively, onto the service timeline:
        # one parent span submitted→finished with queued/run phases inside.
        parent = self.tracer.add_span(
            "serve.job",
            job.submitted_at,
            finished,
            digest=job.digest,
            kind=job.evaluation.kind,
            label=job.evaluation.label,
            state=job.state,
        )
        started = job.started_at or finished
        self.tracer.add_span(
            "serve.job.queued", job.submitted_at, started, parent_id=parent
        )
        self.tracer.add_span("serve.job.run", started, finished, parent_id=parent)

    def _execute(self, job: Job, record_progress: bool = True) -> Dict[str, Any]:
        """Run one job in the executor thread; returns the result payload.

        ``record_progress=False`` is the payload-rebuild path for replayed
        jobs: their counters and events are already final, so the re-derive
        must not touch them.
        """
        evaluation = job.evaluation

        def progress(done: int, total: int, cached: bool) -> None:
            if not record_progress:
                return
            # Plain attribute writes: read by the event-loop thread for
            # status responses, which tolerates slight staleness.
            job.done_units = done
            if cached:
                job.cache_hits += 1
            else:
                job.cache_misses += 1
            self._record_event(
                job,
                "progress",
                done=done,
                total=total,
                cached=cached,
                cache_hits=job.cache_hits,
                cache_misses=job.cache_misses,
            )

        if evaluation.kind == "suite":
            from repro.bench.report import suite_json

            if self.dist_queue is not None and record_progress:
                payload = self._execute_delegated_suite(evaluation, progress)
            else:
                result = run_suite(
                    evaluation.suite,
                    workers=self.run_workers,
                    store=self.store,
                    use_cache=self.use_cache,
                    progress=progress,
                )
                payload = suite_json(result)
        else:
            payload = self._execute_scenario(evaluation, progress)
        payload.update(
            {
                "kind": evaluation.kind,
                "digest": evaluation.digest,
                "label": evaluation.label,
                "code": code_version(),
            }
        )
        return payload

    def _execute_delegated_suite(self, evaluation: Evaluation, progress) -> Dict[str, Any]:
        """Delegate a suite job to the distributed work queue and watch it.

        The suite is enqueued (idempotently — units already stored or already
        queued are recognized, never duplicated), then the executor thread
        polls the shared store until every unit key decodes; external
        ``repro dist worker`` processes do the simulating.  Progress events
        fire as keys appear — ``cached=True`` for units the store already
        held at enqueue time, ``cached=False`` for units the fleet produced
        during this job.  Aggregation at the end is an ordinary warm
        ``run_suite`` (all cache hits), so the payload is bit-identical to an
        in-process run's.
        """
        from repro.bench.report import suite_json

        enqueued = self.dist_queue.enqueue_suite(evaluation.suite, store=self.store)
        manifest = self.dist_queue.manifest(evaluation.suite.name)
        keys = manifest["keys"] if manifest else sorted(
            {entry[4] for entry in _expand(evaluation.suite)}
        )
        total = len(keys)
        done: Dict[str, bool] = {}  # key -> was it a pre-existing store entry
        first_pass = True
        while True:
            for key in keys:
                if key not in done and key in self.store:
                    done[key] = first_pass
                    progress(len(done), total, first_pass)
            if len(done) >= total:
                break
            first_pass = False
            time.sleep(self.dist_poll_interval)
        result = run_suite(
            evaluation.suite, store=self.store, use_cache=True
        )
        payload = suite_json(result)
        payload["delegated"] = {
            "queue": str(self.dist_queue.root),
            "units": enqueued.units,
            "enqueued": enqueued.enqueued,
            "already_stored": enqueued.already_stored,
        }
        return payload

    def _execute_scenario(self, evaluation: Evaluation, progress) -> Dict[str, Any]:
        from repro.api.runner import run

        scenario = evaluation.scenario
        hit = self.store.get(evaluation.digest) if self.use_cache else None
        if hit is not None:
            report = hit.report
            progress(1, 1, True)
        else:
            started = time.perf_counter()
            report = run(scenario).report
            self.store.put(
                StoredResult(
                    key=evaluation.digest,
                    scenario=scenario,
                    report=report,
                    extra=evaluation.extra,
                    suite="serve",
                    case=scenario.label,
                    elapsed_seconds=time.perf_counter() - started,
                )
            )
            progress(1, 1, False)
        return {
            "scenario": scenario.to_dict(),
            "report": report.to_json(),
            "metrics": report.as_dict(),
        }

    # ------------------------------------------------------------------
    # request routing
    # ------------------------------------------------------------------
    @staticmethod
    def _route_template(path: str) -> str:
        """The bounded-cardinality route label for metrics.

        Digests and job ids are collapsed into placeholders so the metric
        label set stays finite no matter how many runs the daemon serves.
        """
        if path in ("/v1/healthz", "/v1/metrics", "/v1/runs", "/v1/trace"):
            return path
        if path.startswith("/v1/runs/"):
            if path.endswith("/events"):
                return "/v1/runs/{id}/events"
            return "/v1/runs/{id}"
        if path.startswith("/v1/results/"):
            return "/v1/results/{digest}"
        if path.startswith("/v1/reports/"):
            return "/v1/reports/{digest}"
        return "other"

    def handle_request(
        self,
        method: str,
        path: str,
        headers: Optional[Dict[str, str]] = None,
        body: bytes = b"",
    ) -> Response:
        """Map one request to a :class:`Response` (the whole HTTP API).

        Every request is counted and timed into :attr:`telemetry` *after*
        its response is computed, so a ``/v1/metrics`` scrape reflects all
        requests that finished before it — never itself.
        """
        started = time.perf_counter()
        wall_started = time.time()
        route = self._route_template(path.split("?", 1)[0])
        in_flight = self.telemetry.gauge(
            "repro_http_in_flight", "Requests currently being handled."
        )
        in_flight.inc()
        try:
            response = self._route(method, path, headers, body)
        finally:
            in_flight.dec()
        elapsed = time.perf_counter() - started
        self.telemetry.counter(
            "repro_http_requests_total",
            "HTTP requests handled, by method, route template, and status.",
        ).inc(method=method, route=route, status=response.status)
        self.telemetry.histogram(
            "repro_http_request_seconds",
            help_text="HTTP request handling latency by method and route template.",
        ).observe(elapsed, method=method, route=route)
        self.tracer.add_span(
            "serve.request",
            wall_started,
            wall_started + elapsed,
            method=method,
            route=route,
            status=response.status,
        )
        return response

    def _route(
        self,
        method: str,
        path: str,
        headers: Optional[Dict[str, str]],
        body: bytes,
    ) -> Response:
        headers = {k.lower(): v for k, v in (headers or {}).items()}
        path = path.split("?", 1)[0]
        if path == "/v1/healthz" and method == "GET":
            return self._healthz()
        if path == "/v1/metrics" and method == "GET":
            return self._metrics()
        if path == "/v1/trace" and method == "GET":
            return self._handle_trace()
        if path == "/v1/runs":
            if method == "POST":
                return self._handle_submit(body)
            if method == "GET":
                return self._handle_list()
        if path.startswith("/v1/runs/") and path.endswith("/events") and method == "GET":
            return self._handle_events(path[len("/v1/runs/"):-len("/events")])
        if path.startswith("/v1/runs/") and method == "GET":
            return self._handle_status(path[len("/v1/runs/"):])
        if path.startswith("/v1/results/") and method == "GET":
            return self._handle_result(path[len("/v1/results/"):], headers)
        if path.startswith("/v1/reports/") and method == "GET":
            return self._handle_report(path[len("/v1/reports/"):], headers)
        return json_response(404, {"error": f"no endpoint {method} {path}"})

    def _healthz(self) -> Response:
        from repro import __version__

        by_state: Dict[str, int] = {}
        for job in self.jobs.values():
            by_state[job.state] = by_state.get(job.state, 0) + 1
        busy = by_state.get(RUNNING, 0)
        journal: Optional[Dict[str, Any]] = None
        if self.journal is not None:
            journal = {
                "path": str(self.journal.path),
                "size_bytes": self.journal.size_bytes(),
                "events_appended": self.journal.appended,
                "replay": dict(self.replay_stats),
            }
        return json_response(
            200,
            {
                "status": "draining" if self.draining else "ok",
                "version": __version__,
                "code": code_version(),
                "uptime_seconds": round(time.time() - self.started_at, 3),
                "workers": self.workers,
                "workers_busy": busy,
                "worker_utilization": round(busy / self.workers, 4),
                "queue_limit": self.queue_limit,
                "queue_depth": self.queued_count(),
                "jobs": by_state,
                "stats": self.stats,
                "store": str(self.store.root),
                "journal": journal,
            },
        )

    def _metrics(self) -> Response:
        """The whole registry in Prometheus text format, plus live gauges.

        Instantaneous state (uptime, queue depth, busy workers, lifetime
        submission outcomes) is re-published as gauges/counters at scrape
        time so one endpoint carries the full picture.
        """
        t = self.telemetry
        t.gauge(
            "repro_uptime_seconds", "Seconds since the service started."
        ).set(round(time.time() - self.started_at, 3))
        t.gauge(
            "repro_queue_depth", "Jobs waiting in the admission queue."
        ).set(self.queued_count())
        t.gauge("repro_workers", "Configured worker slots.").set(self.workers)
        t.gauge(
            "repro_workers_busy", "Workers currently executing a job."
        ).set(sum(1 for job in self.jobs.values() if job.state == RUNNING))
        submissions = t.gauge(
            "repro_submissions",
            "Lifetime submission outcomes (admitted, coalesced, rejected, executed).",
        )
        for outcome, value in sorted(self.stats.items()):
            submissions.set(value, outcome=outcome)
        if self.journal is not None:
            t.gauge(
                "repro_journal_size_bytes", "On-disk size of the job journal."
            ).set(self.journal.size_bytes())
            t.gauge(
                "repro_journal_events_appended",
                "Journal events appended since this process started.",
            ).set(self.journal.appended)
            replay = t.gauge(
                "repro_journal_replay",
                "What replaying the journal at boot found "
                "(events, malformed, bytes_read, jobs_restored, jobs_skipped).",
            )
            for stat, value in sorted(self.replay_stats.items()):
                replay.set(value, stat=stat)
        return Response(
            status=200,
            body=_render_prometheus(t).encode("utf-8"),
            content_type=_PROMETHEUS_CONTENT_TYPE,
        )

    def _handle_trace(self) -> Response:
        """The service timeline (requests + job lifecycles) as Chrome trace JSON."""
        return json_response(200, chrome_trace(self.tracer, process_name="repro-serve"))

    def _handle_submit(self, body: bytes) -> Response:
        try:
            payload = json.loads(body.decode("utf-8")) if body else None
        except (ValueError, UnicodeDecodeError):
            return json_response(400, {"error": "request body is not valid JSON"})
        try:
            job, created = self.submit(payload)
        except SubmissionError as exc:
            return json_response(400, {"error": str(exc)})
        except QueueFull as exc:
            return json_response(
                429,
                {"error": str(exc)},
                **{"Retry-After": str(self.retry_after_seconds)},
            )
        except ServiceDraining as exc:
            return json_response(503, {"error": str(exc)})
        info = job.to_dict()
        info["coalesced"] = not created
        return json_response(202 if created else 200, info)

    def _handle_list(self) -> Response:
        jobs = sorted(self.jobs.values(), key=lambda job: job.submitted_at)
        return json_response(200, {"jobs": [job.to_dict() for job in jobs]})

    def _handle_status(self, digest: str) -> Response:
        job = self.jobs.get(digest)
        if job is None:
            return json_response(404, {"error": f"no run {digest!r}"})
        return json_response(200, job.to_dict())

    def _handle_events(self, digest: str) -> Response:
        """Stream a run's lifecycle events as NDJSON until it terminates.

        Chunked streaming of everything the job has journaled so far, then
        live events as they happen; the stream closes after the terminal
        (done/failed) event, so ``curl`` exits by itself.
        """
        job = self.jobs.get(digest)
        if job is None:
            return json_response(404, {"error": f"no run {digest!r}"})
        return Response(
            status=200,
            content_type="application/x-ndjson",
            stream=self._stream_events(job),
        )

    async def _stream_events(self, job: Job) -> AsyncIterator[bytes]:
        index = 0
        while True:
            # Grab the waiter *before* draining: an event arriving between
            # the drain and the await still sets this instance.
            waiter = self._event_waiter
            while index < len(job.events):
                line = json.dumps(job.events[index], sort_keys=True) + "\n"
                yield line.encode("utf-8")
                index += 1
            if job.state in (DONE, FAILED) and index >= len(job.events):
                return
            if waiter is None:  # service not started; nothing can arrive
                return
            try:
                # The timeout is a backstop (e.g. a worker that died without
                # notifying); the waiter is the real wake-up.
                await asyncio.wait_for(asyncio.shield(waiter.wait()), timeout=1.0)
            except asyncio.TimeoutError:
                pass

    def _finished_payload(self, digest: str) -> Optional[Response]:
        """A 404 explaining why ``digest`` has no result yet, or None."""
        if digest in self.results:
            return None
        job = self.jobs.get(digest)
        if job is None:
            return json_response(404, {"error": f"no result {digest!r}"})
        if job.state == DONE:
            # A journal-replayed job: the payload was not carried across the
            # restart, but the store was — re-derive it on first request.
            self._rebuild_payload(job)
            return None
        return json_response(
            404,
            {
                "error": f"run {digest!r} has no result (state: {job.state})",
                "state": job.state,
            },
        )

    @staticmethod
    def _etag_matches(etag: str, if_none_match: Optional[str]) -> bool:
        if if_none_match is None:
            return False
        if if_none_match.strip() == "*":
            return True
        candidates = {tag.strip() for tag in if_none_match.split(",")}
        return etag in candidates

    def _handle_result(self, digest: str, headers: Dict[str, str]) -> Response:
        missing = self._finished_payload(digest)
        if missing is not None:
            return missing
        etag = f'"{digest}"'
        cache_headers = {
            "ETag": etag,
            # The digest names the content; a hit can be cached forever.
            "Cache-Control": "max-age=31536000, immutable",
        }
        if self._etag_matches(etag, headers.get("if-none-match")):
            return Response(304, b"", headers=cache_headers)
        return json_response(200, self.results[digest], **cache_headers)

    def _handle_report(self, digest: str, headers: Dict[str, str]) -> Response:
        missing = self._finished_payload(digest)
        if missing is not None:
            return missing
        etag = f'"{digest}"'
        cache_headers = {
            "ETag": etag,
            "Cache-Control": "max-age=31536000, immutable",
        }
        if self._etag_matches(etag, headers.get("if-none-match")):
            return Response(304, b"", headers=cache_headers)
        return html_response(200, render_report(self.results[digest]), **cache_headers)
