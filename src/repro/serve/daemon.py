"""The asyncio HTTP daemon: one thin transport over the evaluation service.

``repro serve`` binds this server; everything interesting — coalescing,
caching, backpressure — lives in :class:`~repro.serve.service.
EvaluationService`, which maps (method, path, headers, body) to a
:class:`~repro.serve.service.Response`.  This module only speaks HTTP/1.1:
it parses one request per connection (``Connection: close`` — evaluation
clients poll at human timescales, so connection reuse buys nothing and
keep-alive state would complicate draining), enforces a body size limit,
and writes the response.

Shutdown is graceful end to end: SIGINT/SIGTERM stop the listener first
(no new connections), then drain the service (admitted jobs run to
completion), then return from :func:`serve`.
"""

from __future__ import annotations

import asyncio
import signal
import sys
import time
from dataclasses import dataclass
from http import HTTPStatus
from typing import Optional, Tuple

from repro.bench.store import ResultStore
from repro.obs.journal import JobJournal
from repro.obs.log import get_logger
from repro.serve.service import EvaluationService, Response

__all__ = ["ServeConfig", "ReproServer", "serve"]

log = get_logger("serve")

#: Largest accepted request body (a Scenario or suite name; 1 MiB is ample).
MAX_BODY_BYTES = 1 << 20

#: Server identification header.
SERVER_NAME = "repro-serve"


@dataclass
class ServeConfig:
    """Everything ``repro serve`` configures, defaulted for local use."""

    host: str = "127.0.0.1"
    port: int = 8765
    #: concurrent evaluation jobs (executor threads)
    workers: int = 2
    #: admitted-but-waiting jobs before submissions get HTTP 429
    queue_limit: int = 8
    #: processes each job's ``run_many`` fan-out may use (None = serial)
    run_workers: Optional[int] = None
    #: result-store directory (None = $REPRO_BENCH_STORE or the default)
    store: Optional[str] = None
    use_cache: bool = True
    #: job-journal path (None = ``<store>/journal.jsonl``)
    journal: Optional[str] = None
    #: disable the journal entirely (no persistence, no replay)
    use_journal: bool = True
    #: distributed work-queue directory; when set, suite jobs are enqueued
    #: there for external ``repro dist worker`` processes instead of running
    #: in-process (None = run suites locally as usual)
    dist_queue: Optional[str] = None


class ReproServer:
    """The bound server: an :class:`EvaluationService` behind asyncio streams."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        store = ResultStore(config.store) if config.store else ResultStore()
        journal = None
        if config.use_journal:
            # Default next to the results it indexes: wiping the store also
            # wipes the journal's claims about what that store contains.
            path = config.journal or str(store.root / "journal.jsonl")
            journal = JobJournal(path)
        dist_queue = None
        if config.dist_queue:
            from repro.dist import WorkQueue

            dist_queue = WorkQueue(config.dist_queue)
        self.service = EvaluationService(
            store=store,
            workers=config.workers,
            queue_limit=config.queue_limit,
            run_workers=config.run_workers,
            use_cache=config.use_cache,
            journal=journal,
            dist_queue=dist_queue,
        )
        if journal is not None and self.service.replay_stats["events"]:
            log.info("journal-replayed", path=str(journal.path), **self.service.replay_stats)
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> Tuple[str, int]:
        """Start workers and bind the listener; returns (host, port).

        ``port=0`` binds an ephemeral port (tests use this); the returned
        tuple always carries the real one.
        """
        await self.service.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    async def stop(self) -> None:
        """Stop accepting, then drain every admitted job to completion."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.drain()

    # ------------------------------------------------------------------
    # one connection = one request
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        started = time.perf_counter()
        try:
            response, method, target = await self._read_and_route(reader)
            if response is not None:
                await self._write_response(writer, response)
                log.info(
                    "request",
                    method=method or "-",
                    target=target or "-",
                    status=response.status,
                    bytes=len(response.body),
                    seconds=time.perf_counter() - started,
                )
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange; nothing to answer
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_and_route(
        self, reader: asyncio.StreamReader
    ) -> Tuple[Optional[Response], str, str]:
        """Parse one request and route it; returns (response, method, target).

        The method and target ride along (empty when parsing never got that
        far) so the connection handler can write an access-log line.
        """
        try:
            request_line = await asyncio.wait_for(reader.readline(), timeout=30)
        except asyncio.TimeoutError:
            return None, "", ""
        if not request_line:
            return None, "", ""
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            return Response(400, b'{"error": "malformed request line"}\n'), "", ""
        method, target = parts[0].upper(), parts[1]

        headers = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, sep, value = line.decode("latin-1").partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()

        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            return Response(400, b'{"error": "bad Content-Length"}\n'), method, target
        if length < 0 or length > MAX_BODY_BYTES:
            return Response(413, b'{"error": "request body too large"}\n'), method, target
        body = await reader.readexactly(length) if length else b""
        return self.service.handle_request(method, target, headers, body), method, target

    @staticmethod
    async def _write_response(
        writer: asyncio.StreamWriter, response: Response
    ) -> None:
        try:
            phrase = HTTPStatus(response.status).phrase
        except ValueError:
            phrase = "Unknown"
        lines = [
            f"HTTP/1.1 {response.status} {phrase}",
            f"Server: {SERVER_NAME}",
            f"Content-Type: {response.content_type}",
        ]
        if response.stream is None:
            lines.append(f"Content-Length: {len(response.body)}")
        else:
            # A streamed body has no length up front: chunked transfer
            # encoding lets each event flush as its own chunk.
            lines.append("Transfer-Encoding: chunked")
        lines.append("Connection: close")
        lines.extend(f"{key}: {value}" for key, value in response.headers.items())
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        if response.stream is None:
            writer.write(head + response.body)
            await writer.drain()
            return
        writer.write(head)
        await writer.drain()
        async for chunk in response.stream:
            if not chunk:
                continue  # an empty chunk would terminate the stream early
            writer.write(f"{len(chunk):x}\r\n".encode("latin-1") + chunk + b"\r\n")
            await writer.drain()
        writer.write(b"0\r\n\r\n")
        await writer.drain()


def serve(config: ServeConfig) -> int:
    """Run the daemon until SIGINT/SIGTERM; drains before returning.

    This is the blocking entry point behind ``repro serve``.
    """

    async def _main() -> None:
        server = ReproServer(config)
        host, port = await server.start()
        # The listening line goes to stdout too: scripts that boot the
        # daemon in the background read the bound port from it.
        print(f"repro serve listening on http://{host}:{port}", flush=True)
        log.info(
            "listening",
            host=host,
            port=port,
            workers=config.workers,
            queue_limit=config.queue_limit,
            store=str(server.service.store.root),
        )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-unix platforms fall back to KeyboardInterrupt
        try:
            await stop.wait()
        finally:
            log.info("draining")
            await server.stop()
            log.info("drained")

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:  # pragma: no cover - non-unix fallback path
        pass
    return 0


if __name__ == "__main__":  # pragma: no cover - convenience launcher
    sys.exit(serve(ServeConfig()))
