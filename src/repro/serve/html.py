"""Self-contained HTML rendering of serve result payloads.

The daemon's ``/v1/reports/<digest>`` is the browsable face of the same
machinery that writes markdown for CI artifacts: it renders the JSON
payload (:func:`repro.bench.report.suite_json` output for suites, the
scenario/report/metrics object for single runs) into one HTML page with no
external references — inline style, no scripts, no fonts — so the page can
be saved, attached to a CI run, or emailed and still render identically.

Everything user-controlled passes through :func:`html.escape`.
"""

from __future__ import annotations

import html as _html
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = ["render_report"]

_STYLE = """
:root { color-scheme: light; }
body { font-family: -apple-system, "Segoe UI", Helvetica, Arial, sans-serif;
       margin: 2rem auto; max-width: 72rem; padding: 0 1rem; color: #1a1f24; }
h1 { font-size: 1.4rem; border-bottom: 2px solid #d0d7de; padding-bottom: .4rem; }
h2 { font-size: 1.1rem; margin-top: 1.6rem; }
code { background: #f6f8fa; padding: .1rem .3rem; border-radius: 4px;
       font-size: .92em; }
table { border-collapse: collapse; margin-top: .8rem; width: 100%; }
th, td { border: 1px solid #d0d7de; padding: .35rem .6rem; text-align: left;
         font-size: .92rem; }
th { background: #f6f8fa; }
tr:nth-child(even) td { background: #fbfcfd; }
dl.facts { display: grid; grid-template-columns: max-content 1fr;
           gap: .2rem 1rem; margin: .8rem 0; }
dl.facts dt { font-weight: 600; }
dl.facts dd { margin: 0; }
.digest { font-size: .8rem; color: #57606a; word-break: break-all; }
.footer { margin-top: 2rem; font-size: .8rem; color: #57606a;
          border-top: 1px solid #d0d7de; padding-top: .6rem; }
"""


def _esc(value: Any) -> str:
    return _html.escape(str(value), quote=True)


def _facts(pairs: Iterable[Tuple[str, Any]]) -> str:
    items = "".join(
        f"<dt>{_esc(key)}</dt><dd>{_esc(value)}</dd>" for key, value in pairs
    )
    return f'<dl class="facts">{items}</dl>'


def _table(columns: List[str], rows: List[List[str]]) -> str:
    head = "".join(f"<th>{_esc(c)}</th>" for c in columns)
    body = "".join(
        "<tr>" + "".join(f"<td>{cell}</td>" for cell in row) + "</tr>"
        for row in rows
    )
    return f"<table><thead><tr>{head}</tr></thead><tbody>{body}</tbody></table>"


def _ci_cell(ci: Dict[str, Any]) -> str:
    mean = ci.get("mean")
    half = ci.get("half_width")
    lo, hi = ci.get("lo"), ci.get("hi")
    if mean is None:
        return "—"
    title = f' title="[{lo:.6g}, {hi:.6g}]"' if lo is not None and hi is not None else ""
    spread = f" ± {half:.3g}" if half is not None else ""
    return f"<span{title}>{mean:.4g}{spread}</span>"


def _page(title: str, body: str, digest: Optional[str]) -> str:
    digest_line = (
        f'<p class="digest">result digest <code>{_esc(digest)}</code></p>'
        if digest
        else ""
    )
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">'
        f"<title>{_esc(title)}</title>"
        f"<style>{_STYLE}</style></head><body>"
        f"<h1>{_esc(title)}</h1>{digest_line}{body}"
        '<p class="footer">rendered by <code>repro serve</code> — '
        "content-addressed scheduler evaluation</p>"
        "</body></html>"
    )


def _render_suite(payload: Dict[str, Any]) -> str:
    metrics = [str(m) for m in payload.get("metrics", [])]
    facts = _facts(
        [
            ("suite", payload.get("suite", "?")),
            ("replications", payload.get("replications", "?")),
            ("cache hits", payload.get("cache_hits", "?")),
            ("simulated", payload.get("cache_misses", "?")),
            ("elapsed", f"{payload.get('elapsed_seconds', 0.0):.2f} s"),
            ("confidence", f"{payload.get('confidence', 0.0):.0%}"),
        ]
        + ([("served", payload["served"])] if payload.get("served") else [])
    )
    columns = ["context", "policy", "seeds"] + metrics
    rows = []
    for case in payload.get("cases", []):
        row = [
            _esc(case.get("context", "")),
            f"<code>{_esc(case.get('policy', ''))}</code>",
            _esc(case.get("seeds", "")),
        ]
        case_metrics = case.get("metrics", {})
        row.extend(_ci_cell(case_metrics.get(metric, {})) for metric in metrics)
        rows.append(row)
    note = (
        "<p>Each cell is <em>mean ± half-width</em> over the case's "
        "replication seeds; hover for the interval bounds.</p>"
    )
    body = facts + note + _table(columns, rows)
    timings = payload.get("timings") or {}
    if timings:
        timing_rows = [
            [f"<code>{_esc(phase.replace('_seconds', ''))}</code>", f"{value:.3f}"]
            for phase, value in timings.items()
        ]
        body += "<h2>Timing breakdown</h2>" + _table(["phase", "seconds"], timing_rows)
    return body


def _render_scenario(payload: Dict[str, Any]) -> str:
    scenario = payload.get("scenario", {})
    facts = _facts(
        (key, value)
        for key, value in sorted(scenario.items())
        if value is not None
    )
    metrics = payload.get("metrics", {})
    rows = [[f"<code>{_esc(k)}</code>", _esc(v)] for k, v in metrics.items()]
    return (
        "<h2>Scenario</h2>"
        + facts
        + "<h2>Metrics</h2>"
        + _table(["metric", "value"], rows)
    )


def render_report(payload: Dict[str, Any]) -> str:
    """One self-contained HTML page for a finished result payload."""
    digest = payload.get("digest")
    if payload.get("kind") == "scenario":
        title = f"Scenario report — {payload.get('label', digest or '?')}"
        body = _render_scenario(payload)
    else:
        title = f"Benchmark suite report — {payload.get('suite', digest or '?')}"
        body = _render_suite(payload)
    return _page(title, body, digest)
