"""``repro serve``: the scheduler-evaluation service.

The paper's case for *shared* evaluation standards becomes an economic
argument once evaluation is served: identical questions must share one
computation.  This package is the serving layer over the substrate the
library already has — JSON :class:`~repro.api.scenario.Scenario` specs, the
content-addressed :class:`~repro.bench.store.ResultStore`, digest-addressed
traces — exposed as a small stdlib-only HTTP daemon:

* :mod:`repro.serve.service` — digest-keyed jobs, request coalescing, the
  bounded admission queue with backpressure, graceful draining, and the
  transport-agnostic request router;
* :mod:`repro.serve.daemon`  — the asyncio HTTP/1.1 adapter and the
  blocking :func:`~repro.serve.daemon.serve` entry point behind
  ``repro serve``;
* :mod:`repro.serve.html`    — the self-contained HTML report view at
  ``/v1/reports/<digest>``.

Endpoints: ``POST /v1/runs``, ``GET /v1/runs[/<id>]``,
``GET /v1/results/<digest>`` (ETag/304), ``GET /v1/reports/<digest>``,
``GET /v1/healthz``.

Attributes load lazily (PEP 562, same idiom as :mod:`repro.api`).
"""

from __future__ import annotations

from typing import Any

__all__ = [
    # service
    "EvaluationService",
    "Evaluation",
    "Job",
    "Response",
    "SubmissionError",
    "QueueFull",
    "ServiceDraining",
    "resolve_submission",
    # daemon
    "ServeConfig",
    "ReproServer",
    "serve",
    # html
    "render_report",
]

_SERVICE_NAMES = {
    "EvaluationService",
    "Evaluation",
    "Job",
    "Response",
    "SubmissionError",
    "QueueFull",
    "ServiceDraining",
    "resolve_submission",
}
_DAEMON_NAMES = {"ServeConfig", "ReproServer", "serve"}
_HTML_NAMES = {"render_report"}


def __getattr__(name: str) -> Any:
    if name in _SERVICE_NAMES:
        from repro.serve import service as module
    elif name in _DAEMON_NAMES:
        from repro.serve import daemon as module
    elif name in _HTML_NAMES:
        from repro.serve import html as module
    else:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    return getattr(module, name)


def __dir__() -> list:
    return sorted(__all__)
