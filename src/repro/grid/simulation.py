"""Event-driven simulation of a metasystem: sites, meta-scheduler, reservations.

This is the evaluation environment Sections 3 and 4 of the paper call for:
several sites, each with its own machine scheduler and local workload, plus a
meta-scheduler that places meta jobs (single-site or co-allocated) using the
information the sites expose.  The paper's proposed simplifications are
followed directly:

* local schedulers are evaluated with "a synthetic workload of reservation
  requests" layered on their local stream;
* the meta-scheduler is evaluated against "simple models of local schedulers"
  — here, the sites' actual queues and availability profiles;
* co-allocation is supported either *without* reservations (components are
  queued independently and the job starts when the last one does, wasting
  cycles on the components that started earlier) or *with* advance
  reservations (the meta-scheduler negotiates a common start time from each
  site's guaranteed-availability profile, and the sites drain around the
  reserved window).

The per-site scheduling logic reuses the standard policies from
:mod:`repro.schedulers`; reservation awareness reuses the same capacity hook
that outage-aware policies use (a reservation is, to the local scheduler,
indistinguishable from an announced outage of the reserved processors).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.swf.fields import MISSING
from repro.core.swf.records import SWFJob
from repro.evaluation.results import JobResult, SimulationResult
from repro.grid.metaschedulers import MetaScheduler, SiteView
from repro.grid.prediction import WaitPredictor
from repro.grid.site import MetaComponent, MetaJob, Site
from repro.machine.cluster import Machine
from repro.schedulers.base import JobRequest, RunningJobInfo, SchedulerState
from repro.simulation.engine import Simulator

__all__ = ["MetaJobResult", "GridResult", "GridSimulation"]

_PRIORITY_COMPLETION = 0
_PRIORITY_CLAIM = 1
_PRIORITY_ARRIVAL = 2

#: Offset added to meta-job ids so their synthetic SWF numbers never collide
#: with local job numbers inside a site's queue.
_META_ID_BASE = 10_000_000


@dataclass(frozen=True)
class MetaJobResult:
    """Outcome of one meta job."""

    job: MetaJob
    sites: Tuple[str, ...]
    submit_time: float
    start_time: float
    end_time: float
    used_reservation: bool
    planned_start: Optional[float]
    wasted_node_seconds: float

    @property
    def wait_time(self) -> float:
        return self.start_time - self.submit_time

    @property
    def response_time(self) -> float:
        return self.end_time - self.submit_time

    def bounded_slowdown(self, tau: float = 10.0) -> float:
        runtime = self.end_time - self.start_time
        return max(1.0, self.response_time / max(runtime, tau))

    @property
    def reservation_late(self) -> bool:
        """True if a reserved job could not start at its negotiated time."""
        return self.planned_start is not None and self.start_time > self.planned_start + 1e-6


@dataclass
class GridResult:
    """Everything one grid simulation run produced."""

    meta_scheduler: str
    use_reservations: bool
    site_results: Dict[str, SimulationResult]
    meta_results: List[MetaJobResult]
    rejected_meta_jobs: List[int]
    #: meta jobs whose components never all started (the co-allocation
    #: deadlock/starvation risk that motivates advance reservations)
    unfinished_meta_jobs: List[int]
    prediction_pairs: Dict[str, List[Tuple[float, float]]]

    def coallocation_results(self) -> List[MetaJobResult]:
        return [r for r in self.meta_results if r.job.is_coallocation]

    def single_site_results(self) -> List[MetaJobResult]:
        return [r for r in self.meta_results if not r.job.is_coallocation]

    def mean_meta_wait(self) -> float:
        if not self.meta_results:
            return 0.0
        return sum(r.wait_time for r in self.meta_results) / len(self.meta_results)

    def total_wasted_node_seconds(self) -> float:
        return sum(r.wasted_node_seconds for r in self.meta_results)

    def late_reservation_fraction(self) -> float:
        reserved = [r for r in self.meta_results if r.used_reservation]
        if not reserved:
            return 0.0
        return sum(1 for r in reserved if r.reservation_late) / len(reserved)


# ----------------------------------------------------------------------
# internal bookkeeping
# ----------------------------------------------------------------------
@dataclass
class _QueueEntry:
    request: JobRequest
    kind: str                      # "local" or "meta"
    meta_id: Optional[int] = None
    component: Optional[MetaComponent] = None
    reservation_backed: bool = False


@dataclass
class _SiteRunning:
    entry: _QueueEntry
    start_time: float
    expected_end: float
    completion_handle: Optional[object]


@dataclass
class _MetaState:
    job: MetaJob
    mapping: Dict[str, MetaComponent]
    submit_time: float
    planned_start: Optional[float]
    use_reservation: bool
    component_starts: Dict[str, float] = field(default_factory=dict)
    started: bool = False
    predictions: Dict[str, float] = field(default_factory=dict)
    predicted_site: Optional[str] = None


class _SiteState:
    """Mutable per-site simulation state."""

    def __init__(self, site: Site) -> None:
        self.site = site
        self.machine = Machine(size=site.machine_size, name=site.name)
        self.queue: List[_QueueEntry] = []
        self.running: Dict[int, _SiteRunning] = {}
        #: (start, end, processors, meta_id) reservation calendar
        self.reservations: List[List[float]] = []
        self.local_results: List[JobResult] = []
        self.local_submit: Dict[int, float] = {}

    def free(self) -> int:
        return self.machine.free_count()

    def reserved_capacity_fn(self, size: int) -> Callable[[float, float], int]:
        reservations = list(self.reservations)

        def min_capacity(start: float, end: float) -> int:
            if not reservations:
                return size
            boundaries = {start}
            for r_start, r_end, _procs, _mid in reservations:
                if r_start < end and start < r_end:
                    boundaries.add(max(start, r_start))
            minimum = size
            for t in boundaries:
                reserved = sum(
                    procs
                    for r_start, r_end, procs, _mid in reservations
                    if r_start <= t < r_end
                )
                minimum = min(minimum, max(0, size - reserved))
            return minimum

        return min_capacity

    def scheduler_state(self, now: float) -> SchedulerState:
        running_infos = [
            RunningJobInfo(
                request=r.entry.request,
                start_time=r.start_time,
                expected_end=max(r.expected_end, now),
            )
            for r in self.running.values()
        ]
        return SchedulerState(
            now=now,
            total_processors=self.site.machine_size,
            free_processors=self.free(),
            queue=[e.request for e in self.queue],
            running=running_infos,
            min_capacity=self.reserved_capacity_fn(self.site.machine_size),
        )

    def view(self, now: float) -> SiteView:
        state = self.scheduler_state(now)
        return SiteView(
            name=self.site.name,
            total_processors=self.site.machine_size,
            free_processors=state.free_processors,
            speed=self.site.speed,
            now=now,
            queued=state.queue,
            running=state.running,
            reservations=[(s, e, p) for s, e, p, _ in self.reservations],
        )


class GridSimulation:
    """Simulate local + meta workloads over several sites."""

    def __init__(
        self,
        sites: Sequence[Site],
        meta_jobs: Sequence[MetaJob],
        meta_scheduler: MetaScheduler,
        use_reservations: bool = False,
        negotiation_slack: float = 60.0,
        predictors: Optional[Dict[str, Callable[[], WaitPredictor]]] = None,
    ) -> None:
        if not sites:
            raise ValueError("at least one site is required")
        names = [s.name for s in sites]
        if len(set(names)) != len(names):
            raise ValueError("site names must be unique")
        self.sites = {s.name: _SiteState(s) for s in sites}
        self.meta_jobs = sorted(meta_jobs, key=lambda j: (j.submit_time, j.job_id))
        self.meta_scheduler = meta_scheduler
        self.use_reservations = use_reservations
        self.negotiation_slack = negotiation_slack
        self.sim = Simulator()
        self._meta_states: Dict[int, _MetaState] = {}
        self._meta_results: List[MetaJobResult] = []
        self._rejected: List[int] = []
        #: predictor-name -> site-name -> instance; scored on single-site meta jobs
        predictor_factories = predictors or {}
        self._predictors: Dict[str, Dict[str, WaitPredictor]] = {
            pname: {sname: factory() for sname in self.sites}
            for pname, factory in predictor_factories.items()
        }
        self._prediction_pairs: Dict[str, List[Tuple[float, float]]] = {
            pname: [] for pname in self._predictors
        }

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------
    def _seed_events(self) -> None:
        for state in self.sites.values():
            workload = state.site.local_workload
            if workload is None:
                continue
            for job in workload.summary_jobs():
                try:
                    request = JobRequest.from_swf(job)
                except ValueError:
                    continue
                if request.processors > state.site.machine_size:
                    continue
                self.sim.schedule_at(
                    request.submit_time,
                    self._on_local_arrival,
                    state.site.name,
                    request,
                    priority=_PRIORITY_ARRIVAL,
                    label=f"local:{state.site.name}:{request.job_id}",
                )
        for job in self.meta_jobs:
            self.sim.schedule_at(
                job.submit_time,
                self._on_meta_arrival,
                job,
                priority=_PRIORITY_ARRIVAL,
                label=f"meta:{job.job_id}",
            )

    # ------------------------------------------------------------------
    # local jobs
    # ------------------------------------------------------------------
    def _on_local_arrival(self, site_name: str, request: JobRequest) -> None:
        state = self.sites[site_name]
        state.queue.append(_QueueEntry(request=request, kind="local"))
        state.local_submit[request.job_id] = self.sim.now
        self._schedule_pass(site_name)

    def _on_local_completion(self, site_name: str, job_id: int) -> None:
        state = self.sites[site_name]
        running = state.running.pop(job_id, None)
        if running is None:
            return
        state.machine.release(job_id)
        state.local_results.append(
            JobResult(
                job=running.entry.request.job,
                submit_time=state.local_submit[running.entry.request.job_id],
                start_time=running.start_time,
                end_time=self.sim.now,
                processors=running.entry.request.processors,
                site=site_name,
            )
        )
        self._schedule_pass(site_name)

    # ------------------------------------------------------------------
    # meta jobs
    # ------------------------------------------------------------------
    def _meta_request(self, job: MetaJob, component: MetaComponent, site: Site) -> JobRequest:
        """Synthesize the JobRequest a site sees for one meta component."""
        runtime = max(1, int(round(job.runtime / site.speed)))
        swf = SWFJob(
            job_number=_META_ID_BASE + job.job_id,
            submit_time=job.submit_time,
            run_time=runtime,
            allocated_processors=component.processors,
            requested_processors=component.processors,
            requested_time=max(job.estimate, runtime),
        )
        return JobRequest(
            job=swf,
            processors=component.processors,
            runtime=runtime,
            estimate=max(job.estimate, runtime),
            submit_time=int(self.sim.now),
        )

    def _on_meta_arrival(self, job: MetaJob) -> None:
        views = [state.view(self.sim.now) for state in self.sites.values()]
        try:
            if job.is_coallocation:
                mapping, planned_start = self.meta_scheduler.plan_coallocation(
                    job, views, self.use_reservations, self.negotiation_slack
                )
            else:
                site_name = self.meta_scheduler.choose_site(job, views)
                mapping, planned_start = {site_name: job.components[0]}, None
        except ValueError:
            self._rejected.append(job.job_id)
            return

        meta_state = _MetaState(
            job=job,
            mapping=mapping,
            submit_time=self.sim.now,
            planned_start=planned_start,
            use_reservation=self.use_reservations and job.is_coallocation,
        )
        self._meta_states[job.job_id] = meta_state

        # Score the wait predictors on single-site meta jobs.
        if not job.is_coallocation and self._predictors:
            site_name = next(iter(mapping))
            view = next(v for v in views if v.name == site_name)
            component = job.components[0]
            meta_state.predicted_site = site_name
            for pname, per_site in self._predictors.items():
                predictor = per_site[site_name]
                meta_state.predictions[pname] = predictor.predict_wait(
                    component.processors,
                    job.estimate,
                    view.now,
                    view.total_processors,
                    view.free_processors,
                    view.running,
                    view.queued,
                )

        if meta_state.use_reservation and planned_start is not None:
            for site_name, component in mapping.items():
                state = self.sites[site_name]
                state.reservations.append(
                    [planned_start, planned_start + job.estimate, component.processors, job.job_id]
                )
                self._schedule_pass(site_name)
            self.sim.schedule_at(
                planned_start,
                self._on_reservation_claim,
                job.job_id,
                priority=_PRIORITY_CLAIM,
                label=f"claim:{job.job_id}",
            )
        else:
            for site_name, component in mapping.items():
                state = self.sites[site_name]
                request = self._meta_request(job, component, state.site)
                state.queue.append(
                    _QueueEntry(
                        request=request, kind="meta", meta_id=job.job_id, component=component
                    )
                )
                self._schedule_pass(site_name)

    def _on_reservation_claim(self, meta_id: int) -> None:
        """At the negotiated start time, convert reservations into queued components."""
        meta_state = self._meta_states[meta_id]
        for site_name, component in meta_state.mapping.items():
            state = self.sites[site_name]
            state.reservations = [r for r in state.reservations if r[3] != meta_id]
            request = self._meta_request(meta_state.job, component, state.site)
            entry = _QueueEntry(
                request=request,
                kind="meta",
                meta_id=meta_id,
                component=component,
                reservation_backed=True,
            )
            # Reservation-backed components go to the head of the queue: the
            # site already drained capacity for them.
            state.queue.insert(0, entry)
            self._schedule_pass(site_name)

    def _component_started(self, site_name: str, meta_id: int) -> None:
        meta_state = self._meta_states[meta_id]
        meta_state.component_starts[site_name] = self.sim.now
        if len(meta_state.component_starts) < len(meta_state.mapping):
            return
        # All components are running: the meta job begins useful work now.
        meta_state.started = True
        start = max(meta_state.component_starts.values())
        slowest_speed = min(self.sites[s].site.speed for s in meta_state.mapping)
        runtime = max(1, int(round(meta_state.job.runtime / slowest_speed)))
        self.sim.schedule(
            runtime,
            self._on_meta_completion,
            meta_id,
            priority=_PRIORITY_COMPLETION,
            label=f"meta-completion:{meta_id}",
        )

    def _on_meta_completion(self, meta_id: int) -> None:
        meta_state = self._meta_states[meta_id]
        start = max(meta_state.component_starts.values())
        wasted = 0.0
        touched_sites = []
        for site_name, component in meta_state.mapping.items():
            state = self.sites[site_name]
            job_key = _META_ID_BASE + meta_id
            running = state.running.pop(job_key, None)
            if running is not None:
                state.machine.release(job_key)
            component_start = meta_state.component_starts[site_name]
            wasted += component.processors * max(0.0, start - component_start)
            touched_sites.append(site_name)

        self._meta_results.append(
            MetaJobResult(
                job=meta_state.job,
                sites=tuple(sorted(meta_state.mapping)),
                submit_time=meta_state.submit_time,
                start_time=start,
                end_time=self.sim.now,
                used_reservation=meta_state.use_reservation,
                planned_start=meta_state.planned_start,
                wasted_node_seconds=wasted,
            )
        )

        # Feed the observed wait back to the predictors being scored.
        if not meta_state.job.is_coallocation and meta_state.predictions:
            actual_wait = start - meta_state.submit_time
            site_name = meta_state.predicted_site
            component = meta_state.job.components[0]
            for pname, predicted in meta_state.predictions.items():
                self._prediction_pairs[pname].append((predicted, actual_wait))
                self._predictors[pname][site_name].observe(
                    component.processors, meta_state.job.estimate, actual_wait
                )

        for site_name in touched_sites:
            self._schedule_pass(site_name)

    # ------------------------------------------------------------------
    # per-site scheduling
    # ------------------------------------------------------------------
    def _schedule_pass(self, site_name: str) -> None:
        state = self.sites[site_name]
        if not state.queue:
            return
        scheduler_state = state.scheduler_state(self.sim.now)
        selected = state.site.scheduler.select_jobs(scheduler_state)
        if not selected:
            return
        entries_by_id = {e.request.job_id: e for e in state.queue}
        total = 0
        for request in selected:
            if request.job_id not in entries_by_id:
                raise RuntimeError(
                    f"site {site_name}: scheduler selected job {request.job_id} not in queue"
                )
            total += request.processors
        if total > scheduler_state.free_processors:
            raise RuntimeError(f"site {site_name}: scheduler over-committed the machine")
        started_ids = set()
        for request in selected:
            entry = entries_by_id[request.job_id]
            self._start_entry(state, entry, request)
            started_ids.add(request.job_id)
        state.queue = [e for e in state.queue if e.request.job_id not in started_ids]

    def _start_entry(self, state: _SiteState, entry: _QueueEntry, request: JobRequest) -> None:
        state.machine.allocate(request.job_id, request.processors, start_time=self.sim.now)
        if entry.kind == "local":
            handle = self.sim.schedule(
                request.runtime,
                self._on_local_completion,
                state.site.name,
                request.job_id,
                priority=_PRIORITY_COMPLETION,
                label=f"local-completion:{state.site.name}:{request.job_id}",
            )
        else:
            handle = None  # meta completions are driven by _component_started
        state.running[request.job_id] = _SiteRunning(
            entry=entry,
            start_time=self.sim.now,
            expected_end=self.sim.now + request.estimate,
            completion_handle=handle,
        )
        if entry.kind == "meta":
            self._component_started(state.site.name, entry.meta_id)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run(self) -> GridResult:
        """Run the grid simulation to completion."""
        self._seed_events()
        self.sim.run()
        site_results = {}
        for name, state in self.sites.items():
            site_results[name] = SimulationResult(
                scheduler_name=f"{state.site.scheduler.name}@{name}",
                machine_size=state.site.machine_size,
                jobs=sorted(state.local_results, key=lambda j: j.job_id),
                metadata={"site": name},
            )
        finished = {r.job.job_id for r in self._meta_results}
        unfinished = [
            meta_id for meta_id in self._meta_states if meta_id not in finished
        ]
        return GridResult(
            meta_scheduler=self.meta_scheduler.name,
            use_reservations=self.use_reservations,
            site_results=site_results,
            meta_results=sorted(self._meta_results, key=lambda r: r.job.job_id),
            rejected_meta_jobs=sorted(self._rejected),
            unfinished_meta_jobs=sorted(unfinished),
            prediction_pairs=self._prediction_pairs,
        )
