"""Meta-scheduling policies: site selection and co-allocation planning.

The meta-scheduler of Figure 1 does not own any resources; it chooses which
machine schedulers to send requests to.  Policies differ in how much
information they use:

* :class:`LeastLoadedMetaScheduler` — send the job to the site with the most
  free processors (ties broken by shortest queue); information-poor but
  cheap, the baseline;
* :class:`EarliestStartMetaScheduler` — ask a queue-wait predictor for each
  site and send the job where it is predicted to start soonest ("the
  meta-scheduler needs information on how the machine schedulers are going to
  deal with its requests");
* co-allocation planning, used by both policies: pick the sites for each
  component, and — when advance reservations are enabled — agree on a common
  start time from each site's guaranteed-availability profile.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.grid.prediction import WaitPredictor, ProfilePredictor
from repro.grid.site import MetaComponent, MetaJob
from repro.schedulers.base import AvailabilityProfile, JobRequest, RunningJobInfo

__all__ = ["SiteView", "MetaScheduler", "LeastLoadedMetaScheduler", "EarliestStartMetaScheduler"]


@dataclass
class SiteView:
    """The information a site exposes to the meta-scheduler at one instant.

    This is the "Metacomputing Directory Service"-style snapshot: static
    capacity, current load, the queue as the site reports it, and the
    reservation calendar (as (start, end, processors) triples).
    """

    name: str
    total_processors: int
    free_processors: int
    speed: float
    now: float
    queued: List[JobRequest]
    running: List[RunningJobInfo]
    reservations: List[Tuple[float, float, int]]

    def guaranteed_profile(self) -> AvailabilityProfile:
        """Future free-processor profile from running-job estimates and reservations."""
        profile = AvailabilityProfile.from_running(
            self.total_processors, self.now, self.running
        )
        for start, end, processors in self.reservations:
            if end > self.now:
                profile.remove(max(start, self.now), end, processors)
        return profile

    def earliest_guaranteed_start(self, processors: int, estimate: int) -> float:
        """Earliest time the site can *guarantee* ``processors`` for ``estimate`` seconds.

        Queued local jobs are also accounted for conservatively (they hold
        earlier positions), so the returned instant can be promised to a
        co-allocation partner.
        """
        if processors > self.total_processors:
            return float("inf")
        profile = self.guaranteed_profile()
        for request in self.queued:
            size = min(request.processors, self.total_processors)
            duration = max(request.estimate, 1)
            anchor = profile.earliest_start(size, duration)
            profile.remove(anchor, anchor + duration, size)
        return profile.earliest_start(processors, max(estimate, 1))


class MetaScheduler(ABC):
    """Site-selection policy of the meta-scheduler."""

    name: str = "meta"

    @abstractmethod
    def choose_site(self, job: MetaJob, sites: Sequence[SiteView]) -> str:
        """Site for a single-component job (the only component of ``job``)."""

    def plan_coallocation(
        self,
        job: MetaJob,
        sites: Sequence[SiteView],
        use_reservations: bool,
        negotiation_slack: float = 60.0,
    ) -> Tuple[Dict[str, MetaComponent], Optional[float]]:
        """Assign each component to a distinct site; optionally agree a start time.

        Components are placed largest first on the sites with the most free
        capacity (without reservations) or the earliest guaranteed start
        (with reservations).  Returns the site→component mapping and, when
        reservations are used, the common start time (``None`` otherwise).

        Raises ``ValueError`` when the grid has fewer eligible sites than the
        job has components.
        """
        components = sorted(job.components, key=lambda c: -c.processors)
        if len(components) > len(sites):
            raise ValueError(
                f"meta job {job.job_id} needs {len(components)} sites but only "
                f"{len(sites)} exist"
            )
        eligible = [s for s in sites]
        mapping: Dict[str, MetaComponent] = {}
        if not use_reservations:
            ordered = sorted(eligible, key=lambda s: (-s.free_processors, len(s.queued)))
            for component, site in zip(components, ordered):
                if component.processors > site.total_processors:
                    raise ValueError(
                        f"component of {component.processors} processors does not fit "
                        f"site {site.name} ({site.total_processors} processors)"
                    )
                mapping[site.name] = component
            return mapping, None

        # Reservation-based planning: greedily pair each component with the
        # site offering the earliest guaranteed start, then reserve at the
        # latest of those starts (everyone must begin together).
        starts: Dict[str, float] = {}
        remaining = list(eligible)
        for component in components:
            best_site = None
            best_start = float("inf")
            for site in remaining:
                start = site.earliest_guaranteed_start(component.processors, job.estimate)
                if start < best_start:
                    best_start = start
                    best_site = site
            if best_site is None or best_start == float("inf"):
                raise ValueError(f"no site can guarantee a start for meta job {job.job_id}")
            mapping[best_site.name] = component
            starts[best_site.name] = best_start
            remaining.remove(best_site)
        common_start = max(starts.values()) + negotiation_slack
        return mapping, common_start


class LeastLoadedMetaScheduler(MetaScheduler):
    """Pick the site with the most free processors (ties: shortest queue)."""

    name = "least-loaded"

    def choose_site(self, job: MetaJob, sites: Sequence[SiteView]) -> str:
        component = job.components[0]
        eligible = [s for s in sites if s.total_processors >= component.processors]
        if not eligible:
            raise ValueError(f"no site is large enough for meta job {job.job_id}")
        best = max(eligible, key=lambda s: (s.free_processors, -len(s.queued)))
        return best.name


class EarliestStartMetaScheduler(MetaScheduler):
    """Pick the site with the smallest predicted wait for this job."""

    name = "earliest-start"

    def __init__(self, predictor_factory=ProfilePredictor) -> None:
        self._predictor_factory = predictor_factory
        self._predictors: Dict[str, WaitPredictor] = {}

    def predictor_for(self, site_name: str) -> WaitPredictor:
        """The per-site predictor (created on first use, learns from observations)."""
        if site_name not in self._predictors:
            self._predictors[site_name] = self._predictor_factory()
        return self._predictors[site_name]

    def choose_site(self, job: MetaJob, sites: Sequence[SiteView]) -> str:
        component = job.components[0]
        eligible = [s for s in sites if s.total_processors >= component.processors]
        if not eligible:
            raise ValueError(f"no site is large enough for meta job {job.job_id}")
        best_site = eligible[0]
        best_wait = float("inf")
        for site in eligible:
            predictor = self.predictor_for(site.name)
            wait = predictor.predict_wait(
                component.processors,
                job.estimate,
                site.now,
                site.total_processors,
                site.free_processors,
                site.running,
                site.queued,
            )
            if wait < best_wait:
                best_wait = wait
                best_site = site
        return best_site.name
