"""Synthetic metacomputing workloads (micro-benchmark-style meta jobs).

Section 3.2 proposes building the metacomputing benchmark suite from
micro-benchmarks — "a compute-intensive meta-application that can use all the
cycles from all the machines it can get, a communication-intensive meta
application", etc. — mixed with single-site jobs, because no real metasystem
workload exists to measure.  :func:`generate_meta_jobs` produces such a mix:

* mostly single-component jobs (the meta-scheduler picks the site),
* a configurable fraction of co-allocation jobs with 2-4 components,
* power-of-two component sizes and log-uniform runtimes, matching the shape
  of the rigid models.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.grid.site import MetaComponent, MetaJob
from repro.simulation.distributions import LogUniform, make_rng
from repro.workloads.base import round_to_power_of_two

__all__ = ["generate_meta_jobs"]


def generate_meta_jobs(
    count: int,
    mean_interarrival: float = 1800.0,
    coallocation_fraction: float = 0.25,
    max_components: int = 3,
    max_component_processors: int = 64,
    min_runtime: float = 300.0,
    max_runtime: float = 24 * 3600.0,
    estimate_factor_range: tuple = (1.5, 5.0),
    seed: Optional[int] = None,
) -> List[MetaJob]:
    """Generate a synthetic stream of meta jobs.

    Parameters mirror the knobs experiment E9 sweeps: the co-allocation
    fraction and the component sizes determine how much simultaneous
    multi-site capacity the meta-scheduler must secure.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    if not 0.0 <= coallocation_fraction <= 1.0:
        raise ValueError("coallocation_fraction must be in [0, 1]")
    if max_components < 2:
        raise ValueError("max_components must be >= 2 (co-allocation needs two sites)")
    rng = make_rng(seed)
    runtime_dist = LogUniform(min_runtime, max_runtime)

    jobs: List[MetaJob] = []
    t = 0.0
    for job_id in range(1, count + 1):
        t += float(rng.exponential(mean_interarrival))
        runtime = int(runtime_dist.sample(rng))
        estimate = int(runtime * rng.uniform(*estimate_factor_range))
        if rng.random() < coallocation_fraction:
            n_components = int(rng.integers(2, max_components + 1))
        else:
            n_components = 1
        components = tuple(
            MetaComponent(
                processors=round_to_power_of_two(
                    float(rng.uniform(1, max_component_processors)), max_component_processors
                )
            )
            for _ in range(n_components)
        )
        jobs.append(
            MetaJob(
                job_id=job_id,
                submit_time=int(t),
                runtime=runtime,
                estimate=estimate,
                components=components,
            )
        )
    # Shift so the first submittal is at time zero, like an SWF trace.
    origin = jobs[0].submit_time
    return [
        MetaJob(
            job_id=j.job_id,
            submit_time=j.submit_time - origin,
            runtime=j.runtime,
            estimate=j.estimate,
            components=j.components,
        )
        for j in jobs
    ]
