"""Queue-wait-time prediction for meta-scheduling.

Section 3.1: "the meta-scheduler needs to know how long a given request will
take to be processed on a given machine scheduler, under the current system
load" — and cites the queue-time-prediction line of work (Downey; Smith,
Taylor & Foster; Gibbons).  Three predictor families are implemented, from
least to most informed:

* :class:`MeanWaitPredictor` — the running mean of recently observed waits
  (what a user eyeballing the queue does);
* :class:`CategoryMeanPredictor` — Gibbons/Smith-style historical templates:
  the mean wait of past jobs in the same (size class, estimate class)
  category;
* :class:`ProfilePredictor` — Downey-style deterministic prediction from the
  current machine state: build the availability profile from running jobs'
  estimates and the queued jobs ahead, and report when the hypothetical job
  would start under conservative-backfilling assumptions.

Every predictor answers :meth:`predict_wait` and is updated with observed
(job, wait) outcomes so E9 can score their accuracy.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from collections import defaultdict, deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.schedulers.base import AvailabilityProfile, JobRequest, RunningJobInfo

__all__ = [
    "WaitPredictor",
    "MeanWaitPredictor",
    "CategoryMeanPredictor",
    "ProfilePredictor",
    "prediction_error_summary",
]


class WaitPredictor(ABC):
    """Interface of queue-wait predictors."""

    name: str = "predictor"

    @abstractmethod
    def predict_wait(
        self,
        processors: int,
        estimate: int,
        now: float,
        total_processors: int,
        free_processors: int,
        running: List[RunningJobInfo],
        queued: List[JobRequest],
    ) -> float:
        """Predicted wait (seconds) for a job of ``processors``/``estimate`` submitted now."""

    def observe(self, processors: int, estimate: int, wait: float) -> None:
        """Record an observed (job, wait) outcome.  Default: no learning."""


class MeanWaitPredictor(WaitPredictor):
    """Sliding-window mean of recently observed waits, ignoring the job's shape."""

    name = "mean-wait"

    def __init__(self, window: int = 50) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self._waits: Deque[float] = deque(maxlen=window)

    def predict_wait(self, processors, estimate, now, total_processors, free_processors, running, queued) -> float:
        if not self._waits:
            return 0.0
        return float(sum(self._waits) / len(self._waits))

    def observe(self, processors: int, estimate: int, wait: float) -> None:
        self._waits.append(max(0.0, float(wait)))


class CategoryMeanPredictor(WaitPredictor):
    """Historical mean wait per (size class, estimate class) category.

    Categories are logarithmic: size classes double (1, 2, 3-4, 5-8, ...) and
    estimate classes are decades of seconds, following the template approach
    of Gibbons and of Smith, Taylor & Foster.
    """

    name = "category-mean"

    def __init__(self) -> None:
        self._sums: Dict[Tuple[int, int], float] = defaultdict(float)
        self._counts: Dict[Tuple[int, int], int] = defaultdict(int)

    @staticmethod
    def _category(processors: int, estimate: int) -> Tuple[int, int]:
        size_class = int(math.ceil(math.log2(max(processors, 1) + 0.0))) if processors > 1 else 0
        estimate_class = int(math.log10(max(estimate, 1)))
        return size_class, estimate_class

    def predict_wait(self, processors, estimate, now, total_processors, free_processors, running, queued) -> float:
        key = self._category(processors, estimate)
        if self._counts[key] > 0:
            return self._sums[key] / self._counts[key]
        # Fall back to the global mean when the category is empty.
        total = sum(self._sums.values())
        count = sum(self._counts.values())
        return total / count if count else 0.0

    def observe(self, processors: int, estimate: int, wait: float) -> None:
        key = self._category(processors, estimate)
        self._sums[key] += max(0.0, float(wait))
        self._counts[key] += 1


class ProfilePredictor(WaitPredictor):
    """Deterministic prediction from the current machine state.

    Builds the availability profile implied by the running jobs' estimates,
    inserts the queued jobs ahead of the hypothetical job (conservative
    assumption: they all hold earlier reservations), and reports when the new
    job would start.  Accuracy is limited by estimate quality — exactly the
    effect the prediction literature documents.
    """

    name = "profile"

    def predict_wait(self, processors, estimate, now, total_processors, free_processors, running, queued) -> float:
        profile = AvailabilityProfile.from_running(total_processors, now, running)
        for request in queued:
            duration = max(request.estimate, 1)
            anchor = profile.earliest_start(min(request.processors, total_processors), duration)
            profile.remove(anchor, anchor + duration, min(request.processors, total_processors))
        start = profile.earliest_start(min(processors, total_processors), max(estimate, 1))
        return max(0.0, start - now)


def prediction_error_summary(pairs: List[Tuple[float, float]]) -> Dict[str, float]:
    """Accuracy summary for (predicted, actual) wait pairs.

    Reports the mean absolute error, the mean error (bias), and the mean
    actual wait for scale, which is how E9 tabulates predictor quality.
    """
    if not pairs:
        return {"mae": 0.0, "bias": 0.0, "mean_actual": 0.0, "count": 0}
    errors = [p - a for p, a in pairs]
    return {
        "mae": sum(abs(e) for e in errors) / len(errors),
        "bias": sum(errors) / len(errors),
        "mean_actual": sum(a for _, a in pairs) / len(pairs),
        "count": len(pairs),
    }
