"""Sites and jobs of the metacomputing model (Figure 1 of the paper).

A *site* is one machine scheduler's domain: a space-shared machine of a given
size, its scheduling policy, and its locally-submitted workload.  A
*meta job* is a job submitted to the meta-scheduler rather than to any single
site; it is either a single-component job (the meta-scheduler picks the site)
or a co-allocation job (several components that must run simultaneously on
different sites — "similar to the idea of gang scheduling on parallel
machines", as the paper puts it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.swf.workload import Workload
from repro.schedulers.base import Scheduler

__all__ = ["Site", "MetaJob", "MetaComponent"]


@dataclass
class Site:
    """One machine scheduler's domain inside the metasystem."""

    name: str
    machine_size: int
    scheduler: Scheduler
    local_workload: Optional[Workload] = None
    #: relative processor speed (1.0 = reference); affects meta-job runtimes
    speed: float = 1.0

    def __post_init__(self) -> None:
        if self.machine_size < 1:
            raise ValueError("machine_size must be >= 1")
        if self.speed <= 0:
            raise ValueError("speed must be positive")


@dataclass(frozen=True)
class MetaComponent:
    """One piece of a co-allocation request: processors needed on one site."""

    processors: int

    def __post_init__(self) -> None:
        if self.processors < 1:
            raise ValueError("a component needs at least one processor")


@dataclass(frozen=True)
class MetaJob:
    """A job submitted to the meta-scheduler.

    Attributes
    ----------
    job_id:
        Unique id within the meta workload.
    submit_time:
        Seconds (same time base as the sites' local workloads).
    runtime:
        Execution time on reference-speed processors once all components run.
    estimate:
        The runtime estimate given to site schedulers.
    components:
        One entry per required site; a single entry means the meta-scheduler
        is free to pick any one site, several entries mean simultaneous
        (co-allocated) execution on distinct sites.
    """

    job_id: int
    submit_time: int
    runtime: int
    estimate: int
    components: Tuple[MetaComponent, ...]

    def __post_init__(self) -> None:
        if self.job_id < 1:
            raise ValueError("job_id must be >= 1")
        if self.submit_time < 0 or self.runtime < 0:
            raise ValueError("times must be non-negative")
        if not self.components:
            raise ValueError("a meta job needs at least one component")
        if self.estimate < self.runtime:
            object.__setattr__(self, "estimate", self.runtime)

    @property
    def is_coallocation(self) -> bool:
        """True when the job needs more than one site simultaneously."""
        return len(self.components) > 1

    @property
    def total_processors(self) -> int:
        return sum(c.processors for c in self.components)
