"""Metacomputing substrate: sites, meta-schedulers, prediction, co-allocation.

Implements the evaluation methodology of Sections 3 and 4: several machine
schedulers (sites) below one or more meta-schedulers, queue-wait-time
prediction as the information channel between the layers, and advance
reservations as the mechanism for co-allocation.
"""

from repro.grid.site import MetaComponent, MetaJob, Site
from repro.grid.workload import generate_meta_jobs
from repro.grid.prediction import (
    CategoryMeanPredictor,
    MeanWaitPredictor,
    ProfilePredictor,
    WaitPredictor,
    prediction_error_summary,
)
from repro.grid.metaschedulers import (
    EarliestStartMetaScheduler,
    LeastLoadedMetaScheduler,
    MetaScheduler,
    SiteView,
)
from repro.grid.simulation import GridResult, GridSimulation, MetaJobResult

__all__ = [
    "MetaComponent",
    "MetaJob",
    "Site",
    "generate_meta_jobs",
    "CategoryMeanPredictor",
    "MeanWaitPredictor",
    "ProfilePredictor",
    "WaitPredictor",
    "prediction_error_summary",
    "EarliestStartMetaScheduler",
    "LeastLoadedMetaScheduler",
    "MetaScheduler",
    "SiteView",
    "GridResult",
    "GridSimulation",
    "MetaJobResult",
]
