"""Deterministic seed derivation for replicated runs.

Replication seeds must be a pure function of the base seed: deriving them
from shared mutable state (the ``random`` module, a counter) would make the
seed list depend on import order or worker count, and ``seed + i`` makes
neighbouring base seeds share most of their replications (base 3 and base 4
overlap in all but one seed).  :func:`derive_seeds` instead walks a
splitmix64 sequence — an additive counter passed through an avalanching
finalizer — so every base seed yields a well-spread, collision-resistant
list, and ``workers=1`` and ``workers=8`` trivially see the same seeds.
"""

from __future__ import annotations

from typing import List

__all__ = ["derive_seeds"]

_MASK64 = (1 << 64) - 1
#: splitmix64 increment (golden-ratio fraction of 2^64).
_GAMMA = 0x9E3779B97F4A7C15


def _mix(state: int) -> int:
    """The splitmix64 finalizer: avalanche one 64-bit counter value."""
    z = state & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


def derive_seeds(base_seed: int, n: int) -> List[int]:
    """``n`` deterministic 31-bit seeds derived from ``base_seed``.

    The result depends only on ``(base_seed, n-prefix)``: the first ``k``
    seeds of ``derive_seeds(s, n)`` equal ``derive_seeds(s, k)``, so growing
    a replication count extends the list instead of reshuffling it.  Values
    fit in 31 bits, which every RNG in the codebase (``numpy.random``
    included) accepts as a seed.
    """
    if n < 0:
        raise ValueError("n must be >= 0")
    # Avalanche the base into the starting state first: seeding the counter
    # with a *linear* function of the base would make neighbouring bases
    # shifted copies of one stream (the seed+i problem all over again).
    state = _mix(int(base_seed) & _MASK64)
    seeds = []
    for _ in range(n):
        state = (state + _GAMMA) & _MASK64
        seeds.append(_mix(state) >> 33)  # top 31 bits
    return seeds
