"""Standardized benchmark suites with statistical rigor and result caching.

The source paper's thesis is that scheduler evaluation needs *standards*:
shared benchmark workloads and a statistically sound methodology, because
ad-hoc single-run comparisons rank schedulers inconsistently.  This package
is that methodology as code:

* :mod:`repro.bench.suite`  — :class:`BenchmarkCase`/:class:`BenchmarkSuite`
  (a :class:`~repro.api.scenario.Scenario` template × a seed list) and the
  registered built-in suites (``std-space``, ``std-gang``, ``std-grid``,
  ``std-outage``, ``std-feedback``, ``std-scale``, ``smoke``);
* :mod:`repro.bench.seeds`  — splitmix-style :func:`derive_seeds`, so a seed
  list depends only on the base seed, never on worker count or run order;
* :mod:`repro.bench.stats`  — pure-python replication statistics: Student-t
  confidence intervals, percentile bootstrap, paired-difference comparison
  under common random numbers with a significance verdict;
* :mod:`repro.bench.store`  — a content-addressed on-disk result store keyed
  by ``sha256(scenario JSON + code version)``, so repeated and overlapping
  suite runs hit cache instead of the simulator;
* :mod:`repro.bench.runner` — cache-consult → ``run_many`` fan-out →
  aggregation;
* :mod:`repro.bench.report` — markdown/JSON tables with CI columns and
  significance markers for pairwise scheduler rankings.

Attributes load lazily (PEP 562, same idiom as :mod:`repro.api`) so that
low-level modules can import :mod:`repro.bench.seeds` without pulling in the
scenario runner.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    # seeds
    "derive_seeds",
    # stats
    "CIEstimate",
    "PairedComparison",
    "mean_ci",
    "bootstrap_ci",
    "paired_comparison",
    "student_t_cdf",
    "student_t_quantile",
    # store
    "ResultStore",
    "StoredResult",
    "result_key",
    "family_key",
    "code_version",
    # suites
    "BenchmarkCase",
    "BenchmarkSuite",
    "register_suite",
    "get_suite",
    "suite_names",
    "suite_registry",
    # running
    "ReplicationOutcome",
    "CaseAggregate",
    "SuiteRunResult",
    "CaseComparison",
    "ComparisonResult",
    "MetricComparison",
    "run_suite",
    "compare_policies",
    "mean_report",
    # reporting
    "suite_markdown",
    "suite_json",
    "comparison_markdown",
    "comparison_json",
    "report_from_store",
]

_SEEDS_NAMES = {"derive_seeds"}
_STATS_NAMES = {
    "CIEstimate",
    "PairedComparison",
    "mean_ci",
    "bootstrap_ci",
    "paired_comparison",
    "student_t_cdf",
    "student_t_quantile",
}
_STORE_NAMES = {"ResultStore", "StoredResult", "result_key", "family_key", "code_version"}
_SUITE_NAMES = {
    "BenchmarkCase",
    "BenchmarkSuite",
    "register_suite",
    "get_suite",
    "suite_names",
    "suite_registry",
}
_RUNNER_NAMES = {
    "ReplicationOutcome",
    "CaseAggregate",
    "SuiteRunResult",
    "CaseComparison",
    "ComparisonResult",
    "MetricComparison",
    "run_suite",
    "compare_policies",
    "mean_report",
}
_REPORT_NAMES = {
    "suite_markdown",
    "suite_json",
    "comparison_markdown",
    "comparison_json",
    "report_from_store",
}


def __getattr__(name: str) -> Any:
    if name in _SEEDS_NAMES:
        from repro.bench import seeds as module
    elif name in _STATS_NAMES:
        from repro.bench import stats as module
    elif name in _STORE_NAMES:
        from repro.bench import store as module
    elif name in _SUITE_NAMES:
        from repro.bench import suite as module
    elif name in _RUNNER_NAMES:
        from repro.bench import runner as module
    elif name in _REPORT_NAMES:
        from repro.bench import report as module
    else:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    return getattr(module, name)


def __dir__() -> list:
    return sorted(__all__)
