"""Content-addressed on-disk store for benchmark replication results.

A replication is fully determined by its :class:`~repro.api.scenario.Scenario`
(which round-trips through JSON exactly — PR 1 built that property for
precisely this use), any non-scenario conditions (a generated outage log's
parameters), and the code that ran it.  So the cache key is

    sha256(canonical JSON of {scenario, extra, code version})

and a stored entry can be reused by any later suite run — including a
*different* suite whose cases overlap — without ever re-running the
simulator.  Entries store the lossless :meth:`MetricsReport.to_json` form,
not the rounded display dict, so cached statistics are bit-identical to
freshly computed ones.

Bump :data:`STORE_VERSION` whenever simulator semantics change in a way that
invalidates old results; the package version is folded in as well, so
releases never serve stale entries.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

from repro.api.scenario import Scenario
from repro.metrics.basic import MetricsReport
from repro.util import atomic_write, canonical_hash as _canonical_hash

__all__ = [
    "STORE_VERSION",
    "GCStats",
    "ResultStore",
    "StoredResult",
    "result_key",
    "family_key",
    "code_version",
    "default_store_root",
]


@dataclass
class GCStats:
    """What one garbage-collection pass over a content store did.

    Shared by the benchmark result store and the trace cache (both grow
    without bound otherwise); ``removed`` maps each evicted key to the
    reason it went (``stale``, ``expired``, ``corrupt``).
    """

    scanned: int = 0
    kept: int = 0
    freed_bytes: int = 0
    removed: Dict[str, str] = field(default_factory=dict)
    dry_run: bool = False

    def summary(self) -> str:
        reasons: Dict[str, int] = {}
        for reason in self.removed.values():
            reasons[reason] = reasons.get(reason, 0) + 1
        breakdown = (
            " (" + ", ".join(f"{n} {r}" for r, n in sorted(reasons.items())) + ")"
            if reasons
            else ""
        )
        verb = "would remove" if self.dry_run else "removed"
        return (
            f"scanned {self.scanned} entries: kept {self.kept}, {verb} "
            f"{len(self.removed)}{breakdown}, "
            f"{self.freed_bytes / 1024:.1f} KiB freed"
        )

#: Cache-format / simulator-semantics version; bump to invalidate the store.
#: v2: MetricsReport gained the per-run ``counters`` dict — older entries
#: lack it, and the strict ``from_json`` rightly refuses them.
#: v3: slot-set scheduling core — schedules are bit-identical, but the
#: counter set changed (``slots_split``/``slots_merged``/``profile_patches``
#: replace the per-pass ``profile_builds``) and metric aggregation moved to
#: columnar float reductions, so cached reports differ in the last ulp.
STORE_VERSION = "v3"

#: Environment variable overriding the default store location.
STORE_ENV_VAR = "REPRO_BENCH_STORE"


def code_version() -> str:
    """The code-version component of every cache key."""
    from repro import __version__

    return f"{__version__}+bench-{STORE_VERSION}"


def default_store_root() -> Path:
    """``$REPRO_BENCH_STORE`` if set, else ``~/.cache/repro-bench``."""
    override = os.environ.get(STORE_ENV_VAR)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-bench"


def result_key(scenario: Scenario, extra: Optional[Dict[str, Any]] = None) -> str:
    """The content address of one replication: scenario + conditions + code.

    The cosmetic ``name`` label is excluded — it never reaches the
    simulator, and hashing it would stop suites with different case labels
    from sharing entries for identical simulations.
    """
    return _canonical_hash(
        {
            "scenario": scenario.with_(name=None).to_dict(),
            "extra": extra or {},
            "code": code_version(),
        }
    )


def family_key(scenario: Scenario, extra: Optional[Dict[str, Any]] = None) -> str:
    """The content address of a replication *family*: identity minus the seed.

    Entries of one family differ only in replication seed, so aggregating
    them into a mean ± CI is statistically meaningful; mixing families is
    not.  ``bench report`` groups by this.  Seed-bearing extras are reduced
    accordingly: the per-replication outage seed is dropped, and the full
    trace digest (which pins the generation seed for synthetic trace
    sources) yields to the seed-free ``trace_family`` digest — which still
    separates two *different contents* behind one path, exactly like the
    full digest does.
    """
    extra = dict(extra or {})
    if "outages" in extra:
        extra["outages"] = {
            k: v for k, v in extra["outages"].items() if k != "seed"
        }
    extra.pop("trace", None)
    return _canonical_hash(
        {
            "scenario": scenario.with_(name=None, seed=None).to_dict(),
            "extra": extra,
            "code": code_version(),
        }
    )


@dataclass(frozen=True)
class StoredResult:
    """One cached replication: its identity, conditions, and metric report."""

    key: str
    scenario: Scenario
    report: MetricsReport
    #: non-scenario key material (e.g. outage-generation parameters)
    extra: Dict[str, Any]
    #: suite/case labels recorded for ``bench report`` grouping
    suite: str = ""
    case: str = ""
    elapsed_seconds: float = 0.0
    #: code version that produced the entry (filled on load; lets readers
    #: skip stale generations without recomputing keys)
    code: str = ""

    def to_record(self) -> Dict[str, Any]:
        # Preserve the recorded code version when re-serializing a loaded
        # entry (the index rebuild does this); only stamp the current
        # version on freshly produced results.
        return {
            "format": STORE_VERSION,
            "code": self.code or code_version(),
            "key": self.key,
            "suite": self.suite,
            "case": self.case,
            "elapsed_seconds": self.elapsed_seconds,
            "scenario": self.scenario.to_dict(),
            "extra": self.extra,
            "report": self.report.to_json(),
        }

    @classmethod
    def from_record(cls, record: Dict[str, Any]) -> "StoredResult":
        return cls(
            key=record["key"],
            scenario=Scenario.from_dict(record["scenario"]),
            report=MetricsReport.from_json(record["report"]),
            extra=record.get("extra", {}),
            suite=record.get("suite", ""),
            case=record.get("case", ""),
            elapsed_seconds=record.get("elapsed_seconds", 0.0),
            code=record.get("code", ""),
        )


class ResultStore:
    """Flat content-addressed file store: ``root/<key[:2]>/<key>.json``.

    Writes go through a same-directory temp file + ``os.replace`` so a
    killed run can never leave a half-written entry that later poisons the
    cache.

    Store-wide reads (``bench report``) go through an **index file**
    (``root/index.json``) holding every entry's full record in one place,
    so a report is one file read instead of thousands.  The index is
    rebuilt lazily: ``put`` never touches it (concurrent writers would
    race), and staleness is detected from shard-directory mtimes — any
    entry written, rewritten, or deleted after the index bumps its shard's
    mtime past the index's, and the next :meth:`entries` call rescans and
    rewrites.
    """

    #: Name of the store-wide index file (lives directly under the root).
    INDEX_NAME = "index.json"

    def __init__(self, root: Union[str, Path, None] = None) -> None:
        self.root = Path(root) if root is not None else default_store_root()

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    @property
    def index_path(self) -> Path:
        return self.root / self.INDEX_NAME

    def get(self, key: str) -> Optional[StoredResult]:
        """The stored result under ``key``, or None on miss/corrupt entry."""
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
            return StoredResult.from_record(record)
        except FileNotFoundError:
            return None
        except (ValueError, KeyError, TypeError):
            # A corrupt or stale-format entry is a miss, not an error: the
            # replication reruns and the entry is rewritten.
            return None

    def put(self, entry: StoredResult) -> Path:
        """Persist ``entry`` atomically; returns the file path.

        Atomic per-key publication means two processes sharing a store and
        racing on the same key each write a complete record — last replace
        wins — instead of interleaving.  The index is deliberately *not*
        updated here (concurrent writers would race on it); the write bumps
        the shard directory's mtime, which the next :meth:`entries` call
        detects as staleness.
        """
        path = self.path_for(entry.key)
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write(
            path, json.dumps(entry.to_record(), sort_keys=True).encode("utf-8")
        )
        return path

    def __contains__(self, key: str) -> bool:
        """Whether ``key`` would be a cache *hit* — decode-consistent with get().

        Membership must never answer "yes" for an entry :meth:`get` would
        treat as a miss (corrupt file, stale record format): a distributed
        worker uses ``key in store`` as its claim check, and a
        file-exists-only answer would let every worker skip a unit whose
        entry can never actually be loaded, wedging the suite forever.
        """
        return self.get(key) is not None

    def __len__(self) -> int:
        """Number of entry files, counted directly off the shard directories.

        Deliberately *not* ``entries()``: that forces a full index rebuild
        (decoding every record) just to produce a count, which turns an
        O(1)-ish progress probe into an O(store) scan — pathological once
        multiple workers poll a shared store.  Corrupt files count here
        (they occupy a key slot on disk); decode-level truth is what
        ``__contains__`` and :meth:`entries` are for.
        """
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    # ------------------------------------------------------------------
    # store-wide reads via the lazy index
    # ------------------------------------------------------------------
    def _shard_mtimes(self) -> Dict[str, int]:
        """Current ``{shard name: mtime_ns}`` of every two-character shard dir."""
        if not self.root.is_dir():
            return {}
        mtimes: Dict[str, int] = {}
        for path in self.root.iterdir():
            if not path.is_dir() or len(path.name) != 2:
                continue
            try:
                mtimes[path.name] = path.stat().st_mtime_ns
            except OSError:  # deleted mid-listing: count it as churn
                mtimes[path.name] = -1
        return mtimes

    def _load_fresh_index(self) -> Optional[list]:
        """The index records, or None when absent/stale/unreadable.

        The index records the exact shard mtime map observed *before* its
        scan started; it is fresh iff the current map is identical.  Any
        entry written, rewritten, or deleted after that snapshot — including
        one that lands mid-rebuild — changes its shard's mtime (or the shard
        set) and invalidates the index, so a concurrent ``put`` can delay an
        index's usefulness but never hide an entry behind a "fresh" one.
        """
        try:
            with open(self.index_path, "r", encoding="utf-8") as handle:
                index = json.load(handle)
            records = index["entries"]
            shards = index["shards"]
        except (OSError, ValueError, KeyError, TypeError):
            return None
        if index.get("format") != STORE_VERSION or not isinstance(shards, dict):
            return None
        if self._shard_mtimes() != shards:
            return None
        return records

    def rebuild_index(self) -> list:
        """Scan every entry file and (re)write the index; returns the records."""
        # Snapshot before scanning: a write that races the scan makes the
        # recorded map stale relative to the post-write reality, forcing the
        # next read to rescan instead of trusting a possibly-partial index.
        shards = self._shard_mtimes()
        records = []
        for path in sorted(self.root.glob("*/*.json")):
            entry = self.get(path.stem)
            if entry is not None:
                records.append(entry.to_record())
        index = {
            "format": STORE_VERSION,
            "shards": shards,
            "entries": records,
        }
        self.root.mkdir(parents=True, exist_ok=True)
        atomic_write(self.index_path, json.dumps(index, sort_keys=True).encode("utf-8"))
        return records

    def entries(self) -> Iterator[StoredResult]:
        """Every readable entry in the store (``bench report`` input).

        Served from the store-wide index when it is fresh; otherwise the
        store is rescanned and the index rewritten.  A record that fails to
        decode is skipped, exactly like a corrupt entry file.
        """
        if not self.root.is_dir():
            return
        records = self._load_fresh_index()
        if records is None:
            records = self.rebuild_index()
        for record in records:
            try:
                yield StoredResult.from_record(record)
            except (ValueError, KeyError, TypeError):
                continue

    # ------------------------------------------------------------------
    # garbage collection
    # ------------------------------------------------------------------
    def gc(
        self,
        max_age_days: Optional[float] = None,
        drop_stale: bool = True,
        dry_run: bool = False,
    ) -> GCStats:
        """Evict entries by age and by stale code/format version.

        An entry is evicted when (a) ``drop_stale`` and it was written by a
        different code version (package version or :data:`STORE_VERSION`
        bump) — such entries can never be cache hits again, their keys embed
        the version; (b) ``max_age_days`` is set and the entry file is older;
        or (c) the file no longer parses.  ``dry_run`` reports without
        deleting.  Empty shard directories are pruned, and the store-wide
        index self-invalidates through the shard mtimes the deletions bump.
        """
        stats = GCStats(dry_run=dry_run)
        if not self.root.is_dir():
            return stats
        cutoff = (
            time.time() - max_age_days * 86400.0
            if max_age_days is not None
            else None
        )
        current = code_version()
        shards: List[Path] = []
        for path in sorted(self.root.glob("*/*.json")):
            stats.scanned += 1
            reason = None
            entry = self.get(path.stem)
            if entry is None:
                reason = "corrupt"
            elif drop_stale and entry.code != current:
                reason = "stale"
            elif cutoff is not None:
                try:
                    if path.stat().st_mtime < cutoff:
                        reason = "expired"
                except OSError:
                    reason = "corrupt"
            if reason is None:
                stats.kept += 1
                continue
            stats.removed[path.stem] = reason
            try:
                stats.freed_bytes += path.stat().st_size
            except OSError:
                pass
            if not dry_run:
                try:
                    path.unlink()
                except OSError:
                    pass
                shards.append(path.parent)
        if not dry_run:
            for shard in set(shards):
                try:
                    shard.rmdir()  # only succeeds when the shard emptied
                except OSError:
                    pass
        return stats
