"""Content-addressed on-disk store for benchmark replication results.

A replication is fully determined by its :class:`~repro.api.scenario.Scenario`
(which round-trips through JSON exactly — PR 1 built that property for
precisely this use), any non-scenario conditions (a generated outage log's
parameters), and the code that ran it.  So the cache key is

    sha256(canonical JSON of {scenario, extra, code version})

and a stored entry can be reused by any later suite run — including a
*different* suite whose cases overlap — without ever re-running the
simulator.  Entries store the lossless :meth:`MetricsReport.to_json` form,
not the rounded display dict, so cached statistics are bit-identical to
freshly computed ones.

Bump :data:`STORE_VERSION` whenever simulator semantics change in a way that
invalidates old results; the package version is folded in as well, so
releases never serve stale entries.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Union

from repro.api.scenario import Scenario
from repro.metrics.basic import MetricsReport

__all__ = [
    "STORE_VERSION",
    "ResultStore",
    "StoredResult",
    "result_key",
    "family_key",
    "code_version",
    "default_store_root",
]

#: Cache-format / simulator-semantics version; bump to invalidate the store.
STORE_VERSION = "v1"

#: Environment variable overriding the default store location.
STORE_ENV_VAR = "REPRO_BENCH_STORE"


def code_version() -> str:
    """The code-version component of every cache key."""
    from repro import __version__

    return f"{__version__}+bench-{STORE_VERSION}"


def default_store_root() -> Path:
    """``$REPRO_BENCH_STORE`` if set, else ``~/.cache/repro-bench``."""
    override = os.environ.get(STORE_ENV_VAR)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-bench"


def _canonical_hash(material: Dict[str, Any]) -> str:
    text = json.dumps(material, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def result_key(scenario: Scenario, extra: Optional[Dict[str, Any]] = None) -> str:
    """The content address of one replication: scenario + conditions + code.

    The cosmetic ``name`` label is excluded — it never reaches the
    simulator, and hashing it would stop suites with different case labels
    from sharing entries for identical simulations.
    """
    return _canonical_hash(
        {
            "scenario": scenario.with_(name=None).to_dict(),
            "extra": extra or {},
            "code": code_version(),
        }
    )


def family_key(scenario: Scenario, extra: Optional[Dict[str, Any]] = None) -> str:
    """The content address of a replication *family*: identity minus the seed.

    Entries of one family differ only in replication seed, so aggregating
    them into a mean ± CI is statistically meaningful; mixing families is
    not.  ``bench report`` groups by this.
    """
    extra = dict(extra or {})
    if "outages" in extra:
        extra["outages"] = {
            k: v for k, v in extra["outages"].items() if k != "seed"
        }
    return _canonical_hash(
        {
            "scenario": scenario.with_(name=None, seed=None).to_dict(),
            "extra": extra,
            "code": code_version(),
        }
    )


@dataclass(frozen=True)
class StoredResult:
    """One cached replication: its identity, conditions, and metric report."""

    key: str
    scenario: Scenario
    report: MetricsReport
    #: non-scenario key material (e.g. outage-generation parameters)
    extra: Dict[str, Any]
    #: suite/case labels recorded for ``bench report`` grouping
    suite: str = ""
    case: str = ""
    elapsed_seconds: float = 0.0
    #: code version that produced the entry (filled on load; lets readers
    #: skip stale generations without recomputing keys)
    code: str = ""

    def to_record(self) -> Dict[str, Any]:
        return {
            "format": STORE_VERSION,
            "code": code_version(),
            "key": self.key,
            "suite": self.suite,
            "case": self.case,
            "elapsed_seconds": self.elapsed_seconds,
            "scenario": self.scenario.to_dict(),
            "extra": self.extra,
            "report": self.report.to_json(),
        }

    @classmethod
    def from_record(cls, record: Dict[str, Any]) -> "StoredResult":
        return cls(
            key=record["key"],
            scenario=Scenario.from_dict(record["scenario"]),
            report=MetricsReport.from_json(record["report"]),
            extra=record.get("extra", {}),
            suite=record.get("suite", ""),
            case=record.get("case", ""),
            elapsed_seconds=record.get("elapsed_seconds", 0.0),
            code=record.get("code", ""),
        )


class ResultStore:
    """Flat content-addressed file store: ``root/<key[:2]>/<key>.json``.

    Writes go through a same-directory temp file + ``os.replace`` so a
    killed run can never leave a half-written entry that later poisons the
    cache.
    """

    def __init__(self, root: Union[str, Path, None] = None) -> None:
        self.root = Path(root) if root is not None else default_store_root()

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[StoredResult]:
        """The stored result under ``key``, or None on miss/corrupt entry."""
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
            return StoredResult.from_record(record)
        except FileNotFoundError:
            return None
        except (ValueError, KeyError, TypeError):
            # A corrupt or stale-format entry is a miss, not an error: the
            # replication reruns and the entry is rewritten.
            return None

    def put(self, entry: StoredResult) -> Path:
        """Persist ``entry`` atomically; returns the file path.

        The temp name is unique per writer (not per key), so two processes
        sharing a store and racing on the same key each publish a complete
        record — last ``os.replace`` wins — instead of interleaving writes.
        """
        path = self.path_for(entry.key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f"{entry.key[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(entry.to_record(), handle, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def __len__(self) -> int:
        return sum(1 for _ in self.entries())

    def entries(self) -> Iterator[StoredResult]:
        """Every readable entry in the store (``bench report`` input)."""
        if not self.root.is_dir():
            return
        for path in sorted(self.root.glob("*/*.json")):
            entry = self.get(path.stem)
            if entry is not None:
                yield entry
