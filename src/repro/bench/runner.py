"""The suite runner: cache consult → ``run_many`` fan-out → aggregation.

Execution order is always: expand every case into per-seed replications,
look each one up in the content-addressed store, run only the misses (in one
``run_many`` batch, so ``--workers N`` parallelism applies across cases and
seeds alike), write the fresh results back, then aggregate.  Because cache
keys are content addresses, overlapping suites share entries: running
``std-space`` warms every ``bench compare`` over the same contexts.

:func:`compare_policies` is the paper's prescribed pairwise methodology:
both policies run the *same* seed list per context (common random numbers),
and each metric gets a paired-difference t-test with a significance verdict
instead of an eyeballed mean comparison.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.api.registry import parse_spec, scheduler_registry
from repro.api.runner import resolve_workload_shared, run_many
from repro.api.scenario import Scenario
from repro.bench.stats import (
    CIEstimate,
    PairedComparison,
    metric_ci,
    paired_comparison,
)
from repro.bench.store import ResultStore, StoredResult, result_key
from repro.bench.suite import BenchmarkCase, BenchmarkSuite, get_suite
from repro.metrics.basic import MetricsReport
from repro.metrics.objective import MAXIMIZE_METRICS
from repro.obs.trace import trace_span

__all__ = [
    "ReplicationOutcome",
    "CaseAggregate",
    "SuiteRunResult",
    "MetricComparison",
    "CaseComparison",
    "ComparisonResult",
    "run_suite",
    "compare_policies",
    "mean_report",
]


def mean_report(reports: Sequence[MetricsReport]) -> MetricsReport:
    """Field-wise mean of replication reports (the across-seeds summary).

    Numeric fields are averaged; the scheduler name and tau are taken from
    the first report (replications of one case share both).
    """
    if not reports:
        raise ValueError("mean_report needs at least one report")
    first = reports[0]
    values: Dict[str, Any] = {}
    for f in dataclasses.fields(MetricsReport):
        column = [getattr(r, f.name) for r in reports]
        if f.name in ("scheduler",):
            values[f.name] = column[0]
        elif f.name == "counters":
            # Key-wise mean over the per-run counter dicts; replications of
            # one case share a key set, but a missing key reads as 0.
            keys = sorted({k for c in column for k in c})
            values[f.name] = {
                k: sum(c.get(k, 0) for c in column) / len(column) for k in keys
            }
        elif f.name in ("jobs", "killed"):
            values[f.name] = int(round(sum(column) / len(column)))
        else:
            values[f.name] = sum(column) / len(column)
    return MetricsReport(**values)


@dataclass(frozen=True)
class ReplicationOutcome:
    """One executed (or cache-served) replication of one case."""

    case: BenchmarkCase
    seed: int
    scenario: Scenario
    key: str
    report: MetricsReport
    cached: bool


@dataclass(frozen=True)
class CaseAggregate:
    """Across-seeds summary of one case: per-metric mean ± CI."""

    case: str
    context: str
    policy: str
    n: int
    cis: Dict[str, CIEstimate]
    summary: MetricsReport


@dataclass
class SuiteRunResult:
    """Everything one suite run produced, cache-served and simulated alike."""

    suite: str
    metrics: Tuple[str, ...]
    confidence: float
    replications: List[ReplicationOutcome]
    #: replications served by the result store (actual store reads only)
    cache_hits: int
    cache_misses: int
    elapsed_seconds: float
    #: replications whose key duplicates another entry in the *same* run —
    #: served from this run's own result, whether or not a store exists.
    #: Kept separate from ``cache_hits`` so a storeless run never claims
    #: "N from cache" when no cache was consulted.
    deduplicated: int = 0
    #: wall-clock phase breakdown of this run: cache consultation, workload
    #: materialization, simulation, metrics, and store writes (seconds).
    timings: Dict[str, float] = dataclasses.field(default_factory=dict)

    def by_case(self) -> Dict[str, List[ReplicationOutcome]]:
        """Replications grouped by case name, in suite order."""
        grouped: Dict[str, List[ReplicationOutcome]] = {}
        for outcome in self.replications:
            grouped.setdefault(outcome.case.name, []).append(outcome)
        return grouped

    def aggregates(self) -> List[CaseAggregate]:
        """Per-case mean ± CI for every suite metric (memoized).

        Unbounded metrics get Student-t intervals; metrics bounded in [0, 1]
        (utilization) get the percentile bootstrap via
        :func:`~repro.bench.stats.metric_ci`.  The quantile computations are
        not free; rows(), the JSON report, and the markdown report all read
        the same aggregates, so compute once.
        """
        cached = getattr(self, "_aggregates", None)
        if cached is not None:
            return cached
        result = []
        for name, outcomes in self.by_case().items():
            reports = [o.report for o in outcomes]
            result.append(
                CaseAggregate(
                    case=name,
                    context=outcomes[0].case.context,
                    policy=outcomes[0].scenario.policy,
                    n=len(outcomes),
                    cis={
                        metric: metric_ci(
                            metric, [r.value(metric) for r in reports], self.confidence
                        )
                        for metric in self.metrics
                    },
                    summary=mean_report(reports),
                )
            )
        self._aggregates = result
        return result

    def rows(self) -> List[Dict[str, object]]:
        """Display rows: one per case, ``mean ± half-width`` per metric."""
        return [
            {
                "case": agg.context,
                "policy": agg.policy,
                "seeds": agg.n,
                **{metric: _format_ci(ci) for metric, ci in agg.cis.items()},
            }
            for agg in self.aggregates()
        ]

    def summary(self) -> str:
        dedup = (
            f", {self.deduplicated} deduplicated" if self.deduplicated else ""
        )
        if self.cache_misses == 0 and self.cache_hits:
            served = f"all {self.cache_hits} from cache{dedup}, no simulation ran"
        elif self.cache_misses == 0:
            # Everything resolved without store reads *or* simulation: the
            # whole suite deduplicated onto keys from this run itself.
            served = f"0 from cache{dedup}, no simulation ran"
        else:
            served = (
                f"{self.cache_hits} from cache, "
                f"{self.cache_misses} simulated{dedup}"
            )
        return (
            f"suite {self.suite!r}: {len(self.replications)} replications "
            f"({served}) in {self.elapsed_seconds:.2f}s"
        )


def _format_ci(ci: CIEstimate) -> str:
    return f"{ci.mean:.4g} ± {ci.half_width:.3g}"


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------
def _resolve_suite(suite: Union[str, BenchmarkSuite]) -> BenchmarkSuite:
    return get_suite(suite) if isinstance(suite, str) else suite


def _trace_extra(scenario: Scenario) -> Dict[str, Any]:
    """Content-digest key material for trace-backed workloads.

    For ``trace:`` specs and plain SWF paths the cache key must track the
    trace *content*, not the spec string: editing a trace file's bytes (same
    path) has to force a miss.  ``trace`` carries the full digest (into
    :func:`result_key`); ``trace_family`` carries the seed-free family
    digest, which :func:`family_key` keeps so that replications differing
    only in generation seed still aggregate together.
    """
    from repro.traces import trace_for_scenario

    trace = trace_for_scenario(scenario)
    if trace is None:
        return {}
    return {"trace": trace.digest, "trace_family": trace.family_digest}


def _expand(suite: BenchmarkSuite):
    """Flatten the suite into (case, seed, scenario, extra, key) tuples."""
    entries = []
    for case in suite.cases:
        for seed, scenario in case.replications():
            extra = case.store_extra(seed)
            extra.update(_trace_extra(scenario))
            entries.append((case, seed, scenario, extra, result_key(scenario, extra)))
    return entries


def _policy_mode(policy_spec: str) -> str:
    """The simulator mode the policy spec dispatches to (space/gang/grid)."""
    return getattr(scheduler_registry.get(parse_spec(policy_spec)[0]), "mode", "space")


def _shared_workloads(ordered) -> List[Optional[Any]]:
    """One materialized workload per distinct (spec, jobs, size, seed).

    Replications of different policies over the same context share their
    workload, so resolve it once — through the process-wide
    :func:`~repro.api.runner.resolve_workload_shared` memo, which the
    distributed worker also draws from — and hand it to ``run_many`` as an
    element-wise override.  The override is *unscaled* (``load=None``) so
    ``run()`` applies the scenario's load scaling exactly as it would from
    the spec.  Grid-mode scenarios get no override: the grid runner re-seeds
    the model per site, which an already-materialized workload would defeat.
    """
    overrides: List[Optional[Any]] = []
    for _case, _seed, scenario, _extra, _key in ordered:
        if _policy_mode(scenario.policy) == "grid":
            overrides.append(None)
        else:
            overrides.append(resolve_workload_shared(scenario))
    return overrides


def run_suite(
    suite: Union[str, BenchmarkSuite],
    workers: Optional[int] = None,
    store: Optional[ResultStore] = None,
    use_cache: bool = True,
    confidence: float = 0.95,
    progress: Optional[Callable[[int, int, bool], None]] = None,
) -> SuiteRunResult:
    """Run a suite (by name or instance), reusing cached replications.

    ``store=None`` disables persistence entirely; with a store, ``use_cache=
    False`` skips reads but still writes, refreshing every entry.  Runs are
    fully seeded, so ``workers=N`` reproduces serial results bit-for-bit.

    ``progress(done, total, cached)`` is called once per distinct work unit
    (unique result key) as it resolves — immediately for cache hits, at
    completion for simulated misses — so a long suite can be watched live
    (the serve daemon's job progress reads exactly this).  Fresh results are
    persisted as they complete, not at the end, so an interrupted run keeps
    everything it finished.
    """
    suite = _resolve_suite(suite)
    started = time.perf_counter()
    timings: Dict[str, float] = {
        "cache_lookup_seconds": 0.0,
        "materialize_seconds": 0.0,
        "simulate_seconds": 0.0,
        "metrics_seconds": 0.0,
        "store_write_seconds": 0.0,
    }
    with trace_span("bench.expand", suite=suite.name):
        entries = _expand(suite)

    # A key can appear twice when cases overlap; it is one work unit.
    unique: Dict[str, tuple] = {}
    for entry in entries:
        unique.setdefault(entry[4], entry)
    total = len(unique)
    done = 0

    reports: Dict[str, MetricsReport] = {}
    store_hits = 0
    if store is not None and use_cache:
        lookup_started = time.perf_counter()
        with trace_span("bench.cache_lookup", keys=total):
            for key in unique:
                hit = store.get(key)
                if hit is not None:
                    reports[key] = hit.report
                    store_hits += 1
                    done += 1
                    if progress is not None:
                        progress(done, total, True)
        timings["cache_lookup_seconds"] = time.perf_counter() - lookup_started

    unique_misses: Dict[str, tuple] = {
        key: entry for key, entry in unique.items() if key not in reports
    }
    if unique_misses:
        ordered = list(unique_misses.values())

        def _record(index: int, scenario_result) -> None:
            nonlocal done
            case, seed, scenario, extra, key = ordered[index]
            reports[key] = scenario_result.report
            done += 1
            run_timings = scenario_result.timings
            for phase in ("materialize_seconds", "simulate_seconds", "metrics_seconds"):
                timings[phase] += run_timings.get(phase, 0.0)
            if store is not None:
                write_started = time.perf_counter()
                with trace_span("bench.store_write", case=case.name):
                    store.put(
                        StoredResult(
                            key=key,
                            scenario=scenario,
                            report=scenario_result.report,
                            extra=extra,
                            suite=suite.name,
                            case=case.name,
                            # This run's own wall-clock cost (the worker-side
                            # phase breakdown), not an average over the batch.
                            elapsed_seconds=sum(run_timings.values()),
                        )
                    )
                timings["store_write_seconds"] += time.perf_counter() - write_started
            if progress is not None:
                progress(done, total, False)

        with trace_span(
            "bench.fan_out", misses=len(unique_misses), workers=workers or 1
        ):
            run_many(
                [scenario for _c, _s, scenario, _e, _k in ordered],
                workers=workers,
                workloads=_shared_workloads(ordered),
                outages=[case.outage_log(seed) for case, seed, _sc, _e, _k in ordered],
                on_result=_record,
            )

    # Only the first entry per simulated key counts as a miss: a duplicate
    # key later in the suite is served from this run's own result, exactly
    # like a store hit.
    simulated_once: set = set()
    outcomes = []
    for case, seed, scenario, extra, key in entries:
        freshly_simulated = key in unique_misses and key not in simulated_once
        if freshly_simulated:
            simulated_once.add(key)
        outcomes.append(
            ReplicationOutcome(
                case=case,
                seed=seed,
                scenario=scenario,
                key=key,
                report=reports[key],
                cached=not freshly_simulated,
            )
        )
    elapsed = time.perf_counter() - started
    timings["total_seconds"] = elapsed
    # Worker-side phase totals can exceed the wall clock under --workers N
    # (they sum across processes); "other" is the unaccounted parent-side
    # remainder, clamped at zero in that case.
    accounted = sum(v for k, v in timings.items() if k != "total_seconds")
    timings["other_seconds"] = max(0.0, elapsed - accounted)
    return SuiteRunResult(
        suite=suite.name,
        metrics=suite.metrics,
        confidence=confidence,
        replications=outcomes,
        # Only actual store reads are cache hits; a duplicate key inside the
        # suite is accounted as deduplicated, so a run with store=None or
        # use_cache=False can never report phantom hits.
        cache_hits=store_hits,
        cache_misses=len(unique_misses),
        deduplicated=len(entries) - total,
        elapsed_seconds=elapsed,
        timings={k: round(v, 6) for k, v in timings.items()},
    )


# ----------------------------------------------------------------------
# pairwise comparison under common random numbers
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MetricComparison:
    """One metric of one context: both CIs, the paired test, the winner."""

    metric: str
    a: CIEstimate
    b: CIEstimate
    paired: PairedComparison
    #: the policy the significant difference favours (None: not significant)
    better: Optional[str]


@dataclass(frozen=True)
class CaseComparison:
    """All metric verdicts for one workload context."""

    context: str
    n: int
    metrics: List[MetricComparison]

    def wins(self, policy: str) -> int:
        return sum(1 for m in self.metrics if m.better == policy)


@dataclass
class ComparisonResult:
    """Pairwise comparison of two policies over a suite's contexts."""

    suite: str
    policy_a: str
    policy_b: str
    confidence: float
    cases: List[CaseComparison]
    cache_hits: int
    cache_misses: int
    elapsed_seconds: float

    def rows(self) -> List[Dict[str, object]]:
        rows = []
        for case in self.cases:
            for m in case.metrics:
                rows.append(
                    {
                        "case": case.context,
                        "metric": m.metric,
                        self.policy_a: _format_ci(m.a),
                        self.policy_b: _format_ci(m.b),
                        "diff": f"{m.paired.mean_diff:+.4g}",
                        "p": f"{m.paired.p_value:.3f}",
                        "verdict": m.better if m.better else "—",
                    }
                )
        return rows

    def summary(self) -> str:
        lines = []
        for case in self.cases:
            a_wins, b_wins = case.wins(self.policy_a), case.wins(self.policy_b)
            total = len(case.metrics)
            if a_wins > b_wins:
                verdict = f"{self.policy_a} better on {a_wins}/{total} metrics"
            elif b_wins > a_wins:
                verdict = f"{self.policy_b} better on {b_wins}/{total} metrics"
            else:
                verdict = f"no overall winner ({a_wins}/{total} metrics each)"
            lines.append(
                f"{case.context} ({case.n} seeds): {verdict} "
                f"at {self.confidence:.0%} confidence"
            )
        served = "all from cache" if self.cache_misses == 0 else (
            f"{self.cache_hits} from cache, {self.cache_misses} simulated"
        )
        lines.append(
            f"{self.policy_a} vs {self.policy_b} over suite {self.suite!r}: "
            f"{served}, {self.elapsed_seconds:.2f}s"
        )
        return "\n".join(lines)


def _better_policy(
    metric: str, paired: PairedComparison, policy_a: str, policy_b: str
) -> Optional[str]:
    """Map a significant difference direction onto the favoured policy."""
    if paired.direction == 0:
        return None
    a_is_larger = paired.direction > 0
    if metric in MAXIMIZE_METRICS:
        return policy_a if a_is_larger else policy_b
    # Metrics default to lower-is-better, matching ObjectiveFunction.
    return policy_b if a_is_larger else policy_a


def compare_policies(
    suite: Union[str, BenchmarkSuite],
    policy_a: str,
    policy_b: str,
    workers: Optional[int] = None,
    store: Optional[ResultStore] = None,
    use_cache: bool = True,
    confidence: float = 0.95,
) -> ComparisonResult:
    """Compare two policy specs over a suite's workload contexts.

    Every context keeps its own seed list and outage conditions; both
    policies run all of them (common random numbers), and each suite metric
    gets a paired-difference significance verdict.
    """
    if policy_a == policy_b:
        raise ValueError("compare needs two distinct policy specs")
    suite = _resolve_suite(suite)
    pair_suite = suite.with_policies([policy_a, policy_b])
    outcome = run_suite(
        pair_suite,
        workers=workers,
        store=store,
        use_cache=use_cache,
        confidence=confidence,
    )
    grouped = outcome.by_case()
    cases = []
    for ctx in pair_suite.contexts():
        reports_a = [o.report for o in grouped[f"{ctx.context}/{policy_a}"]]
        reports_b = [o.report for o in grouped[f"{ctx.context}/{policy_b}"]]
        metric_comparisons = []
        for metric in pair_suite.metrics:
            values_a = [r.value(metric) for r in reports_a]
            values_b = [r.value(metric) for r in reports_b]
            paired = paired_comparison(values_a, values_b, confidence)
            metric_comparisons.append(
                MetricComparison(
                    metric=metric,
                    a=metric_ci(metric, values_a, confidence),
                    b=metric_ci(metric, values_b, confidence),
                    paired=paired,
                    better=_better_policy(metric, paired, policy_a, policy_b),
                )
            )
        cases.append(
            CaseComparison(
                context=ctx.context, n=len(reports_a), metrics=metric_comparisons
            )
        )
    return ComparisonResult(
        suite=suite.name,
        policy_a=policy_a,
        policy_b=policy_b,
        confidence=confidence,
        cases=cases,
        cache_hits=outcome.cache_hits,
        cache_misses=outcome.cache_misses,
        elapsed_seconds=outcome.elapsed_seconds,
    )
