"""Replication statistics for benchmark suites, in pure python.

The paper's methodological complaint is that single-run comparisons are
statistically meaningless: two schedulers are only distinguishable if the
difference between them is large against the replication-to-replication
noise.  This module provides the three estimators the suite runner needs —

* :func:`mean_ci` — mean with a Student-t confidence interval (the correct
  small-sample interval; suites run 3-10 replications, far too few for the
  normal approximation),
* :func:`bootstrap_ci` — percentile bootstrap for statistics with no
  analytic interval (medians, percentiles),
* :func:`paired_comparison` — paired-difference t-test under common random
  numbers: both policies see the *same* seeds, so differencing per seed
  cancels the workload-to-workload variance and a significance verdict is
  possible with a handful of replications.

Everything is pure python (``math`` only): the Student-t CDF is computed
through the regularized incomplete beta function (continued fraction), and
quantiles by bisection on the CDF, so the intervals are exact rather than
normal-approximate.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

__all__ = [
    "BOUNDED_METRICS",
    "CIEstimate",
    "PairedComparison",
    "mean_ci",
    "bootstrap_ci",
    "metric_ci",
    "paired_comparison",
    "student_t_cdf",
    "student_t_quantile",
]

#: Metrics bounded to [0, 1].  Near saturation their replication
#: distribution is skewed and truncated, so the symmetric Student-t interval
#: can cross 1.0; suite aggregation uses the percentile bootstrap for these
#: (see :func:`metric_ci`), which respects the bound by construction.
BOUNDED_METRICS = frozenset({"utilization"})


# ----------------------------------------------------------------------
# Student-t distribution
# ----------------------------------------------------------------------
def _beta_continued_fraction(a: float, b: float, x: float) -> float:
    """Continued-fraction expansion for the incomplete beta (Lentz's method)."""
    max_iterations = 300
    epsilon = 3e-14
    tiny = 1e-300
    qab, qap, qam = a + b, a + 1.0, a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < tiny:
        d = tiny
    d = 1.0 / d
    h = d
    for m in range(1, max_iterations + 1):
        m2 = 2 * m
        numerator = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + numerator * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + numerator / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        h *= d * c
        numerator = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + numerator * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + numerator / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < epsilon:
            break
    return h


def _regularized_incomplete_beta(a: float, b: float, x: float) -> float:
    """I_x(a, b), the regularized incomplete beta function."""
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    log_front = (
        math.lgamma(a + b)
        - math.lgamma(a)
        - math.lgamma(b)
        + a * math.log(x)
        + b * math.log1p(-x)
    )
    front = math.exp(log_front)
    # Use the expansion on whichever side converges fast, reflect otherwise.
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _beta_continued_fraction(a, b, x) / a
    return 1.0 - front * _beta_continued_fraction(b, a, 1.0 - x) / b


def student_t_cdf(t: float, df: float) -> float:
    """P(T <= t) for Student's t with ``df`` degrees of freedom."""
    if df <= 0:
        raise ValueError("degrees of freedom must be positive")
    if t == 0.0:
        return 0.5
    tail = 0.5 * _regularized_incomplete_beta(df / 2.0, 0.5, df / (df + t * t))
    return 1.0 - tail if t > 0 else tail


def student_t_quantile(p: float, df: float) -> float:
    """The value t with ``student_t_cdf(t, df) == p``, by bisection."""
    if not 0.0 < p < 1.0:
        raise ValueError("p must be strictly between 0 and 1")
    if df <= 0:
        raise ValueError("degrees of freedom must be positive")
    if p == 0.5:
        return 0.0
    if p < 0.5:
        return -student_t_quantile(1.0 - p, df)
    lo, hi = 0.0, 1.0
    while student_t_cdf(hi, df) < p:
        hi *= 2.0
        if hi > 1e12:  # pragma: no cover - p astronomically close to 1
            break
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if student_t_cdf(mid, df) < p:
            lo = mid
        else:
            hi = mid
        if hi - lo <= 1e-12 * max(1.0, hi):
            break
    return 0.5 * (lo + hi)


# ----------------------------------------------------------------------
# interval estimators
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CIEstimate:
    """A point estimate with a symmetric-or-not confidence interval."""

    mean: float
    lo: float
    hi: float
    n: int
    confidence: float

    @property
    def half_width(self) -> float:
        return 0.5 * (self.hi - self.lo)

    def __str__(self) -> str:
        return f"{self.mean:.4g} ± {self.half_width:.3g}"


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values)


def _sample_std(values: Sequence[float], mean: float) -> float:
    if len(values) < 2:
        return 0.0
    return math.sqrt(sum((v - mean) ** 2 for v in values) / (len(values) - 1))


def mean_ci(values: Sequence[float], confidence: float = 0.95) -> CIEstimate:
    """Mean of ``values`` with a Student-t confidence interval.

    With fewer than two samples the interval collapses to the point estimate
    (there is no variance information, not evidence of zero variance).
    """
    values = [float(v) for v in values]
    if not values:
        raise ValueError("mean_ci needs at least one value")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be strictly between 0 and 1")
    mean = _mean(values)
    n = len(values)
    if n < 2:
        return CIEstimate(mean=mean, lo=mean, hi=mean, n=n, confidence=confidence)
    half = (
        student_t_quantile(0.5 + confidence / 2.0, n - 1)
        * _sample_std(values, mean)
        / math.sqrt(n)
    )
    return CIEstimate(mean=mean, lo=mean - half, hi=mean + half, n=n, confidence=confidence)


def bootstrap_ci(
    values: Sequence[float],
    statistic: Optional[Callable[[Sequence[float]], float]] = None,
    confidence: float = 0.95,
    replicates: int = 2000,
    seed: int = 0,
) -> CIEstimate:
    """Percentile-bootstrap interval for an arbitrary ``statistic``.

    The default statistic is the mean; pass e.g. a median for statistics
    with no analytic small-sample interval.  Resampling uses a private
    ``random.Random(seed)`` — never the global generator — so results are
    reproducible and cannot perturb simulation seeding.
    """
    values = [float(v) for v in values]
    if not values:
        raise ValueError("bootstrap_ci needs at least one value")
    if statistic is None:
        statistic = _mean
    rng = random.Random(seed)
    n = len(values)
    estimates = sorted(
        statistic([values[rng.randrange(n)] for _ in range(n)])
        for _ in range(replicates)
    )
    alpha = 1.0 - confidence
    lo = estimates[int(math.floor(alpha / 2.0 * (replicates - 1)))]
    hi = estimates[int(math.ceil((1.0 - alpha / 2.0) * (replicates - 1)))]
    return CIEstimate(
        mean=statistic(values), lo=lo, hi=hi, n=n, confidence=confidence
    )


def metric_ci(
    metric: str, values: Sequence[float], confidence: float = 0.95
) -> CIEstimate:
    """The appropriate interval for a named suite metric.

    Metrics bounded in [0, 1] (:data:`BOUNDED_METRICS`) get the percentile
    bootstrap — a Student-t interval for utilization 0.98 ± noise happily
    reports an upper limit above 1.0, which no replication can ever reach.
    Everything else gets the exact small-sample Student-t interval.  With a
    single replication both collapse to the point estimate.
    """
    values = [float(v) for v in values]
    if metric in BOUNDED_METRICS and len(values) >= 2:
        return bootstrap_ci(values, confidence=confidence)
    return mean_ci(values, confidence)


# ----------------------------------------------------------------------
# paired comparison under common random numbers
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PairedComparison:
    """Paired-difference verdict for one metric of two policies, A versus B.

    ``mean_diff`` is ``mean(A_i - B_i)`` over the common seeds; ``direction``
    is the sign of a *significant* difference (+1: A larger, -1: A smaller,
    0: not significant at the requested confidence).
    """

    n: int
    mean_diff: float
    lo: float
    hi: float
    t_stat: float
    p_value: float
    confidence: float

    @property
    def significant(self) -> bool:
        return self.p_value < (1.0 - self.confidence)

    @property
    def direction(self) -> int:
        if not self.significant or self.mean_diff == 0.0:
            return 0
        return 1 if self.mean_diff > 0 else -1

    @property
    def verdict(self) -> str:
        if self.direction > 0:
            return "A > B"
        if self.direction < 0:
            return "A < B"
        return "no significant difference"


def paired_comparison(
    a_values: Sequence[float],
    b_values: Sequence[float],
    confidence: float = 0.95,
) -> PairedComparison:
    """Paired t-test of ``A - B`` where index i of both ran the same seed.

    Differencing per seed cancels the between-seed variance — the whole
    point of evaluating both policies under common random numbers — so the
    test is far more powerful than comparing the two means independently.
    """
    if len(a_values) != len(b_values):
        raise ValueError(
            f"paired comparison needs equal-length samples "
            f"(got {len(a_values)} and {len(b_values)})"
        )
    if len(a_values) < 2:
        raise ValueError("paired comparison needs at least two replications")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be strictly between 0 and 1")
    diffs = [float(a) - float(b) for a, b in zip(a_values, b_values)]
    n = len(diffs)
    mean_diff = _mean(diffs)
    std = _sample_std(diffs, mean_diff)
    se = std / math.sqrt(n)
    t_crit = student_t_quantile(0.5 + confidence / 2.0, n - 1)
    if se == 0.0:
        # All differences identical: either exactly zero (indistinguishable)
        # or a constant shift (different with certainty, as far as the data
        # can say).
        p_value = 1.0 if mean_diff == 0.0 else 0.0
        t_stat = 0.0 if mean_diff == 0.0 else math.copysign(math.inf, mean_diff)
        return PairedComparison(
            n=n, mean_diff=mean_diff, lo=mean_diff, hi=mean_diff,
            t_stat=t_stat, p_value=p_value, confidence=confidence,
        )
    t_stat = mean_diff / se
    p_value = 2.0 * (1.0 - student_t_cdf(abs(t_stat), n - 1))
    half = t_crit * se
    return PairedComparison(
        n=n,
        mean_diff=mean_diff,
        lo=mean_diff - half,
        hi=mean_diff + half,
        t_stat=t_stat,
        p_value=p_value,
        confidence=confidence,
    )
