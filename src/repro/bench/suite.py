"""Benchmark suites: named, versioned rosters of scenarios × seed lists.

A :class:`BenchmarkCase` is one (workload context, policy) cell replicated
over a deterministic seed list; a :class:`BenchmarkSuite` is a named set of
cases plus the metric columns its reports aggregate.  Suites are registered
by name — ``get_suite("std-space")`` — through the same
:class:`~repro.api.registry.Registry` machinery as policies and workload
models, so typos get did-you-mean suggestions and plugins can add suites.

The built-in suites cover every simulator mode the repository has:

===================  =====================================================
``smoke``            tiny uniform workload, seconds end-to-end (CI cache check)
``std-space``        lublin99 through the space-sharing roster at two loads
``std-gang``         gang time-slicing at two multiprogramming levels
``std-grid``         two-site metacomputing, both meta-schedulers
``std-outage``       outage-blind versus outage-aware EASY under failures
``std-feedback``     session workload, open versus closed (feedback) replay
``std-trace-smoke``  one tiny catalog trace through FCFS and EASY (CI check)
``std-trace-ctc``    the CTC SP2 catalog trace, load-varied, space roster
``std-trace-archives`` all four catalog traces at native load, FCFS vs EASY
``std-scale``        100k-job synthetic traces, space roster (perf trajectory)
``std-scale-smoke``  trimmed 20k-job scale run (CI perf gate)
===================  =====================================================

The ``std-trace-*`` suites replay catalog traces (:mod:`repro.traces`):
their workloads are ``trace:`` specs, each replication seed regenerates the
synthetic archive content (so across-seed CIs measure workload-to-workload
variability, the paper's replication methodology), and the result store
keys every entry by the trace's content digest.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.api.registry import Registry
from repro.api.scenario import Scenario
from repro.bench.seeds import derive_seeds

__all__ = [
    "DEFAULT_METRICS",
    "BenchmarkCase",
    "BenchmarkSuite",
    "suite_registry",
    "register_suite",
    "get_suite",
    "suite_names",
]

#: Metric columns a suite aggregates unless it says otherwise.
DEFAULT_METRICS: Tuple[str, ...] = (
    "mean_wait",
    "mean_response",
    "mean_bounded_slowdown",
    "p90_bounded_slowdown",
    "utilization",
    "throughput_per_hour",
)

#: Base seed of all built-in suites (the paper's year).
SUITE_BASE_SEED = 1999


@dataclass(frozen=True)
class BenchmarkCase:
    """One (workload context, policy) cell replicated over ``seeds``.

    ``context`` labels the workload conditions *excluding* the policy, so
    cases that differ only in policy share a context — that sharing is what
    lets ``compare`` pair replications under common random numbers.  The
    optional ``outages`` mapping describes a *generated* outage log
    (``mtbf_days``, ``horizon_days``); the log is materialized in memory per
    replication, seeded by the replication seed, and its parameters are part
    of the cache key.
    """

    context: str
    scenario: Scenario
    seeds: Tuple[int, ...]
    outages: Optional[Dict[str, float]] = None

    def __post_init__(self) -> None:
        if not self.seeds:
            raise ValueError(f"case {self.context!r} has an empty seed list")
        if self.outages is not None and self.scenario.machine_size is None:
            raise ValueError(
                f"case {self.context!r} generates outages, which requires an "
                "explicit machine_size"
            )

    @property
    def name(self) -> str:
        """Unique case label: the context plus the policy spec."""
        return f"{self.context}/{self.scenario.policy}"

    def replications(self) -> List[Tuple[int, Scenario]]:
        """The concrete per-seed scenarios this case expands to."""
        return [
            (seed, self.scenario.with_(seed=seed, name=f"{self.name}#{seed}"))
            for seed in self.seeds
        ]

    def store_extra(self, seed: int) -> Dict[str, Any]:
        """Non-scenario cache-key material for the replication at ``seed``."""
        if self.outages is None:
            return {}
        return {"outages": {**self.outages, "seed": seed}}

    def outage_log(self, seed: int):
        """Materialize the generated outage log for the replication at ``seed``."""
        if self.outages is None:
            return None
        from repro.core.outage import OutageModel, generate_outages

        return generate_outages(
            int(self.scenario.machine_size),
            int(self.outages.get("horizon_days", 30.0) * 24 * 3600),
            model=OutageModel(
                mtbf_seconds=self.outages.get("mtbf_days", 7.0) * 24 * 3600
            ),
            seed=seed,
        )


@dataclass(frozen=True)
class BenchmarkSuite:
    """A named roster of cases plus the metric columns to aggregate."""

    name: str
    description: str
    cases: Tuple[BenchmarkCase, ...]
    metrics: Tuple[str, ...] = DEFAULT_METRICS

    def __post_init__(self) -> None:
        names = [case.name for case in self.cases]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise ValueError(
                f"suite {self.name!r} has duplicate case names: {sorted(duplicates)}"
            )

    def contexts(self) -> List[BenchmarkCase]:
        """One representative case per distinct workload context, in order."""
        seen: Dict[str, BenchmarkCase] = {}
        for case in self.cases:
            seen.setdefault(case.context, case)
        return list(seen.values())

    def with_policies(self, policies: Sequence[str]) -> "BenchmarkSuite":
        """The suite's workload contexts crossed with the given policies.

        This is how ``bench compare A B`` reuses a suite: keep every
        workload context (and its seeds and outage conditions — common
        random numbers) but substitute the policy roster.
        """
        cases = tuple(
            replace(ctx, scenario=ctx.scenario.with_(policy=policy))
            for ctx in self.contexts()
            for policy in policies
        )
        return replace(self, cases=cases)

    def replication_count(self) -> int:
        return sum(len(case.seeds) for case in self.cases)


# ----------------------------------------------------------------------
# the suite registry and the built-in suites
# ----------------------------------------------------------------------
suite_registry = Registry("benchmark suite")


def register_suite(*names: str):
    """Register a zero-argument suite factory under one or more names."""
    return suite_registry.register(*names)


def get_suite(name: str) -> BenchmarkSuite:
    """Build the registered suite (did-you-mean on unknown names)."""
    return suite_registry.get(name)()


def suite_names() -> List[str]:
    return suite_registry.names()


def _roster(
    context: str,
    scenario: Scenario,
    policies: Sequence[str],
    seeds: Sequence[int],
    outages: Optional[Dict[str, float]] = None,
) -> List[BenchmarkCase]:
    return [
        BenchmarkCase(
            context=context,
            scenario=scenario.with_(policy=policy),
            seeds=tuple(seeds),
            outages=outages,
        )
        for policy in policies
    ]


@register_suite("smoke")
def _smoke_suite() -> BenchmarkSuite:
    seeds = derive_seeds(SUITE_BASE_SEED, 3)
    scenario = Scenario(workload="uniform", jobs=150, machine_size=32, load=0.7)
    return BenchmarkSuite(
        name="smoke",
        description="Tiny uniform workload through FCFS and EASY; seconds end-to-end.",
        cases=tuple(_roster("uniform@0.70", scenario, ("fcfs", "easy"), seeds)),
    )


@register_suite("std-space")
def _std_space_suite() -> BenchmarkSuite:
    seeds = derive_seeds(SUITE_BASE_SEED, 5)
    policies = ("fcfs", "easy", "conservative", "sjf")
    cases: List[BenchmarkCase] = []
    for load in (0.55, 0.85):
        scenario = Scenario(workload="lublin99", jobs=600, machine_size=128, load=load)
        cases.extend(_roster(f"lublin99@{load:.2f}", scenario, policies, seeds))
    return BenchmarkSuite(
        name="std-space",
        description=(
            "The space-sharing roster (FCFS, EASY, conservative, SJF) on the "
            "Lublin-Feitelson workload at moderate and heavy load."
        ),
        cases=tuple(cases),
    )


@register_suite("std-gang")
def _std_gang_suite() -> BenchmarkSuite:
    seeds = derive_seeds(SUITE_BASE_SEED, 5)
    scenario = Scenario(workload="lublin99", jobs=400, machine_size=128, load=0.7)
    return BenchmarkSuite(
        name="std-gang",
        description=(
            "Gang time-slicing at multiprogramming levels 2 and 4 on the "
            "Lublin-Feitelson workload at load 0.7."
        ),
        cases=tuple(
            _roster("lublin99@0.70", scenario, ("gang:slots=2", "gang:slots=4"), seeds)
        ),
    )


@register_suite("std-grid")
def _std_grid_suite() -> BenchmarkSuite:
    seeds = derive_seeds(SUITE_BASE_SEED, 5)
    scenario = Scenario(workload="lublin99", jobs=150, machine_size=64)
    policies = (
        "grid:meta=least-loaded,sites=2,meta_jobs=40",
        "grid:meta=earliest-start,sites=2,meta_jobs=40",
        "grid:meta=earliest-start,sites=2,meta_jobs=40,reservations=true",
    )
    return BenchmarkSuite(
        name="std-grid",
        description=(
            "Two-site metacomputing: both meta-schedulers, with and without "
            "advance reservations for co-allocation."
        ),
        cases=tuple(_roster("grid-2site", scenario, policies, seeds)),
    )


@register_suite("std-outage")
def _std_outage_suite() -> BenchmarkSuite:
    seeds = derive_seeds(SUITE_BASE_SEED, 5)
    scenario = Scenario(workload="lublin99", jobs=500, machine_size=128, load=0.7)
    outages = {"mtbf_days": 2.0, "horizon_days": 30.0}
    return BenchmarkSuite(
        name="std-outage",
        description=(
            "EASY, outage-blind versus outage-aware, under generated failures "
            "(MTBF 2 days) on the Lublin-Feitelson workload at load 0.7."
        ),
        cases=tuple(
            _roster(
                "lublin99@0.70+outages",
                scenario,
                ("easy", "easy:outage_aware=true"),
                seeds,
                outages=outages,
            )
        ),
    )


@register_suite("std-trace-smoke")
def _std_trace_smoke_suite() -> BenchmarkSuite:
    seeds = derive_seeds(SUITE_BASE_SEED, 3)
    scenario = Scenario(workload="trace:ctc-sp2,jobs=120,load=0.8", jobs=120)
    return BenchmarkSuite(
        name="std-trace-smoke",
        description=(
            "A 120-job CTC SP2 catalog trace rescaled to load 0.8, through "
            "FCFS and EASY; exercises the trace cache end-to-end in seconds."
        ),
        cases=tuple(_roster("trace:ctc-sp2@0.80", scenario, ("fcfs", "easy"), seeds)),
    )


@register_suite("std-trace-ctc")
def _std_trace_ctc_suite() -> BenchmarkSuite:
    seeds = derive_seeds(SUITE_BASE_SEED, 3)
    policies = ("fcfs", "easy", "conservative", "sjf")
    cases: List[BenchmarkCase] = []
    for load in (0.7, 0.9):
        scenario = Scenario(workload=f"trace:ctc-sp2,jobs=500,load={load}", jobs=500)
        cases.extend(_roster(f"trace:ctc-sp2@{load:.2f}", scenario, policies, seeds))
    return BenchmarkSuite(
        name="std-trace-ctc",
        description=(
            "The CTC SP2 catalog trace rescaled to moderate and heavy load "
            "(the paper's load-variation methodology) through the "
            "space-sharing roster; store entries are keyed by trace digest."
        ),
        cases=tuple(cases),
    )


@register_suite("std-trace-archives")
def _std_trace_archives_suite() -> BenchmarkSuite:
    from repro.data.archives import ARCHIVES

    seeds = derive_seeds(SUITE_BASE_SEED, 3)
    cases: List[BenchmarkCase] = []
    for key in sorted(ARCHIVES):
        scenario = Scenario(workload=f"trace:{key},jobs=300", jobs=300)
        cases.extend(_roster(f"trace:{key}", scenario, ("fcfs", "easy"), seeds))
    return BenchmarkSuite(
        name="std-trace-archives",
        description=(
            "All four synthetic archive catalog traces at their native "
            "offered loads, FCFS versus EASY backfilling."
        ),
        cases=tuple(cases),
    )


@register_suite("std-scale")
def _std_scale_suite() -> BenchmarkSuite:
    seeds = derive_seeds(SUITE_BASE_SEED, 1)
    scenario = Scenario(
        workload="trace:uniform,jobs=100000,load=0.75,machine_size=256",
        jobs=100000,
    )
    return BenchmarkSuite(
        name="std-scale",
        description=(
            "A 100k-job uniform catalog trace rescaled to load 0.75 through "
            "FCFS, EASY, and conservative backfilling — the perf-trajectory "
            "suite whose timings are committed as BENCH_std_scale.json."
        ),
        cases=tuple(
            _roster(
                "trace:uniform-100k@0.75",
                scenario,
                ("fcfs", "easy", "conservative"),
                seeds,
            )
        ),
    )


@register_suite("std-scale-smoke")
def _std_scale_smoke_suite() -> BenchmarkSuite:
    seeds = derive_seeds(SUITE_BASE_SEED, 1)
    scenario = Scenario(
        workload="trace:uniform,jobs=20000,load=0.75,machine_size=256",
        jobs=20000,
    )
    return BenchmarkSuite(
        name="std-scale-smoke",
        description=(
            "The std-scale roster trimmed to 20k jobs so CI can gate the "
            "scheduling-core perf trajectory in about a minute."
        ),
        cases=tuple(
            _roster(
                "trace:uniform-20k@0.75",
                scenario,
                ("fcfs", "easy", "conservative"),
                seeds,
            )
        ),
    )


@register_suite("std-feedback")
def _std_feedback_suite() -> BenchmarkSuite:
    seeds = derive_seeds(SUITE_BASE_SEED, 5)
    open_scenario = Scenario(
        workload="sessions:users=40", jobs=500, machine_size=128, load=0.9
    )
    closed_scenario = open_scenario.with_(honor_dependencies=True)
    cases = _roster("sessions-open@0.90", open_scenario, ("fcfs", "easy"), seeds)
    cases += _roster("sessions-closed@0.90", closed_scenario, ("fcfs", "easy"), seeds)
    return BenchmarkSuite(
        name="std-feedback",
        description=(
            "Session-structured workload replayed open (absolute submit times) "
            "and closed (think-time feedback) through FCFS and EASY."
        ),
        cases=tuple(cases),
    )
