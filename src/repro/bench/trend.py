"""Perf-trend gating: compare a run's phase timings against a baseline.

PR 5 started committing enriched ``BENCH_*.json`` files — the repo's perf
trajectory.  This module closes the loop: load a committed baseline and the
current run, compare the wall-clock phase breakdown, and say whether any
phase regressed beyond tolerance.  ``repro bench trend`` renders the table
and exits nonzero on regression, which is what lets CI gate on it.

Timings are single-shot wall-clock measurements on shared runners, so the
comparison is deliberately forgiving on two axes:

* ``tolerance`` — relative headroom: current may be up to
  ``baseline * (1 + tolerance)`` before it counts.
* ``min_seconds`` — an absolute noise floor: a phase must be slower by more
  than this many seconds, whatever the ratio.  Without it a 0.2 ms phase
  doubling to 0.4 ms would "regress" on pure scheduling jitter.

A phase flags as a regression only when it exceeds *both*.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.bench.report import _markdown_table

__all__ = [
    "PhaseTrend",
    "TrendReport",
    "compare_timings",
    "load_timings",
    "trend_json",
    "trend_markdown",
]

#: statuses a phase can land in
OK = "ok"
REGRESSION = "regression"
IMPROVED = "improved"
SKIPPED = "skipped"


@dataclass(frozen=True)
class PhaseTrend:
    """One phase's baseline-vs-current comparison."""

    phase: str
    baseline: Optional[float]
    current: Optional[float]
    status: str

    @property
    def delta(self) -> Optional[float]:
        if self.baseline is None or self.current is None:
            return None
        return self.current - self.baseline

    @property
    def ratio(self) -> Optional[float]:
        """current / baseline; None when undefined (missing or 0 baseline)."""
        if self.baseline is None or self.current is None or self.baseline <= 0:
            return None
        return self.current / self.baseline


@dataclass(frozen=True)
class TrendReport:
    """Every phase compared, plus the thresholds that judged them."""

    phases: List[PhaseTrend]
    tolerance: float
    min_seconds: float
    baseline_label: str
    current_label: str

    @property
    def regressions(self) -> List[PhaseTrend]:
        return [p for p in self.phases if p.status == REGRESSION]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def exit_code(self) -> int:
        return 0 if self.ok else 1


def compare_timings(
    baseline: Dict[str, float],
    current: Dict[str, float],
    tolerance: float = 0.5,
    min_seconds: float = 0.005,
    baseline_label: str = "baseline",
    current_label: str = "current",
) -> TrendReport:
    """Judge ``current`` against ``baseline`` phase by phase.

    Regression: ``current > baseline * (1 + tolerance)`` *and*
    ``current - baseline > min_seconds``.  Improvement is the mirror image
    (informational only — it never affects the exit code).  Phases present
    on only one side are ``skipped``, not failed: a new phase has no
    baseline to regress against, and a removed one has nothing to measure.
    """
    if tolerance < 0:
        raise ValueError("tolerance must be >= 0")
    if min_seconds < 0:
        raise ValueError("min_seconds must be >= 0")
    phases: List[PhaseTrend] = []
    for phase in sorted(set(baseline) | set(current)):
        base = baseline.get(phase)
        cur = current.get(phase)
        if base is None or cur is None:
            status = SKIPPED
        elif cur > base * (1 + tolerance) and cur - base > min_seconds:
            status = REGRESSION
        elif base > cur * (1 + tolerance) and base - cur > min_seconds:
            status = IMPROVED
        else:
            status = OK
        phases.append(PhaseTrend(phase=phase, baseline=base, current=cur, status=status))
    return TrendReport(
        phases=phases,
        tolerance=tolerance,
        min_seconds=min_seconds,
        baseline_label=baseline_label,
        current_label=current_label,
    )


def load_timings(path: Union[str, Path]) -> Tuple[Dict[str, float], str]:
    """Load a phase-timings dict from any of the shapes the repo emits.

    Accepts a committed ``BENCH_*.json`` trajectory file (uses its
    ``cold_timings`` — the cold pass is the one that exercises every
    phase), a ``bench run --json`` suite dump (its ``timings``), or a bare
    ``{phase: seconds}`` object.  Returns the timings plus a label naming
    what was loaded.
    """
    path = Path(path)
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict):
        raise ValueError(f"{path}: expected a JSON object")
    if isinstance(data.get("cold_timings"), dict):
        label = str(data.get("benchmark") or path.name)
        return _as_timings(data["cold_timings"], path), f"{label} (cold)"
    if isinstance(data.get("timings"), dict):
        label = str(data.get("suite") or path.name)
        return _as_timings(data["timings"], path), label
    return _as_timings(data, path), path.name


def _as_timings(data: Dict[str, Any], path: Path) -> Dict[str, float]:
    timings: Dict[str, float] = {}
    for key, value in data.items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ValueError(f"{path}: timing {key!r} is not a number")
        value = float(value)
        if not math.isfinite(value):
            raise ValueError(f"{path}: timing {key!r} is not finite")
        timings[str(key)] = value
    if not timings:
        raise ValueError(f"{path}: no phase timings found")
    return timings


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def _fmt(value: Optional[float], suffix: str = "") -> str:
    return "—" if value is None else f"{value:.3f}{suffix}"


def trend_markdown(report: TrendReport) -> str:
    """The trend table plus a one-line verdict."""
    rows = [
        {
            "phase": p.phase.replace("_seconds", ""),
            report.baseline_label: _fmt(p.baseline, "s"),
            report.current_label: _fmt(p.current, "s"),
            "delta": _fmt(p.delta, "s"),
            "ratio": _fmt(p.ratio, "x"),
            "status": p.status,
        }
        for p in report.phases
    ]
    if report.ok:
        verdict = (
            f"no regressions (tolerance {report.tolerance:.0%} + "
            f"{report.min_seconds * 1000:.0f}ms floor)"
        )
    else:
        names = ", ".join(p.phase.replace("_seconds", "") for p in report.regressions)
        verdict = (
            f"{len(report.regressions)} regression(s): {names} "
            f"(tolerance {report.tolerance:.0%} + "
            f"{report.min_seconds * 1000:.0f}ms floor)"
        )
    parts = [
        f"# Perf trend — {report.baseline_label} vs {report.current_label}",
        "",
        _markdown_table(rows),
        "",
        verdict,
    ]
    return "\n".join(parts)


def trend_json(report: TrendReport) -> Dict[str, Any]:
    """Machine view of the comparison (what CI archives)."""
    return {
        "baseline": report.baseline_label,
        "current": report.current_label,
        "tolerance": report.tolerance,
        "min_seconds": report.min_seconds,
        "status": OK if report.ok else REGRESSION,
        "regressions": len(report.regressions),
        "phases": [
            {
                "phase": p.phase,
                "baseline_seconds": p.baseline,
                "current_seconds": p.current,
                "delta_seconds": p.delta,
                "ratio": p.ratio,
                "status": p.status,
            }
            for p in report.phases
        ],
    }
