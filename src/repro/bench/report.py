"""Rendering benchmark results: markdown and JSON tables with CI columns.

Markdown output is for humans and CI artifacts; JSON output is the machine
view (raw floats, cache statistics, timings) that the CI smoke job and any
downstream tooling consume.  Significance markers follow the usual
convention: ``*`` marks a metric whose paired difference is significant at
the run's confidence level, and the favoured policy is named in the verdict
column.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional

from repro.bench.runner import ComparisonResult, SuiteRunResult
from repro.bench.stats import metric_ci
from repro.bench.store import ResultStore, code_version, family_key
from repro.bench.suite import DEFAULT_METRICS

__all__ = [
    "suite_markdown",
    "suite_json",
    "timings_markdown",
    "comparison_markdown",
    "comparison_json",
    "report_from_store",
]


def _markdown_table(rows: List[Dict[str, object]]) -> str:
    if not rows:
        return "*(no rows)*"
    columns = list(rows[0].keys())
    lines = [
        "| " + " | ".join(str(c) for c in columns) + " |",
        "| " + " | ".join("---" for _ in columns) + " |",
    ]
    for row in rows:
        lines.append("| " + " | ".join(str(row.get(c, "")) for c in columns) + " |")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# suite runs
# ----------------------------------------------------------------------
def _served_line(
    cache_hits: int,
    cache_misses: int,
    elapsed_seconds: float,
    deduplicated: int = 0,
) -> str:
    """Human explanation of where the results came from.

    A fully cache-served run finishes in milliseconds; saying so explicitly
    is what keeps a near-zero ``elapsed_seconds`` from reading like a bug.
    Deduplicated replications (same key appearing twice inside one run) are
    named separately — they were never store reads, so they must not inflate
    the cache-hit count.
    """
    dedup = f", {deduplicated} deduplicated" if deduplicated else ""
    if cache_misses == 0:
        return (
            f"served entirely from cache ({cache_hits} hits, 0 simulated{dedup}) — "
            f"elapsed {elapsed_seconds:.2f}s covers lookups only, no simulation ran"
        )
    return (
        f"{cache_hits} cache hits, {cache_misses} simulated{dedup} "
        f"in {elapsed_seconds:.2f}s"
    )


def suite_markdown(result: SuiteRunResult) -> str:
    """The per-suite report: one row per case, ``mean ± CI`` per metric."""
    parts = [
        f"# Benchmark suite `{result.suite}`",
        "",
        f"{len(result.replications)} replications — "
        f"{_served_line(result.cache_hits, result.cache_misses, result.elapsed_seconds, result.deduplicated)}; "
        f"intervals at {result.confidence:.0%} "
        f"confidence (Student-t; percentile bootstrap for [0, 1]-bounded metrics).",
        "",
        _markdown_table(result.rows()),
        "",
    ]
    if result.timings:
        parts.extend([timings_markdown(result.timings), ""])
    return "\n".join(parts)


def timings_markdown(timings: Dict[str, float]) -> str:
    """The wall-clock phase breakdown as a two-column markdown table."""
    rows = [
        {"phase": phase.replace("_seconds", ""), "seconds": f"{value:.3f}"}
        for phase, value in timings.items()
    ]
    return "\n".join(["## Timing breakdown", "", _markdown_table(rows)])


def suite_json(result: SuiteRunResult) -> Dict[str, Any]:
    """Machine view of a suite run (raw floats, cache stats, timing)."""
    return {
        "suite": result.suite,
        "confidence": result.confidence,
        "metrics": list(result.metrics),
        "replications": len(result.replications),
        "cache_hits": result.cache_hits,
        "cache_misses": result.cache_misses,
        "deduplicated": result.deduplicated,
        "elapsed_seconds": result.elapsed_seconds,
        "served": _served_line(
            result.cache_hits,
            result.cache_misses,
            result.elapsed_seconds,
            result.deduplicated,
        ),
        "timings": dict(result.timings),
        "cases": [
            {
                "case": agg.case,
                "context": agg.context,
                "policy": agg.policy,
                "seeds": agg.n,
                "metrics": {
                    metric: {
                        "mean": ci.mean,
                        "lo": ci.lo,
                        "hi": ci.hi,
                        "half_width": ci.half_width,
                    }
                    for metric, ci in agg.cis.items()
                },
            }
            for agg in result.aggregates()
        ],
    }


# ----------------------------------------------------------------------
# pairwise comparisons
# ----------------------------------------------------------------------
def comparison_markdown(result: ComparisonResult) -> str:
    """The pairwise report: CIs, paired p-values, significance markers."""
    parts = [
        f"# `{result.policy_a}` vs `{result.policy_b}` on suite `{result.suite}`",
        "",
        f"Paired-difference t-tests under common random numbers at "
        f"{result.confidence:.0%} confidence "
        f"({result.cache_hits} cache hits, {result.cache_misses} simulated, "
        f"{result.elapsed_seconds:.2f}s).  ``*`` marks a significant metric.",
        "",
    ]
    for case in result.cases:
        rows = []
        for m in case.metrics:
            rows.append(
                {
                    "metric": f"{m.metric}{'*' if m.paired.significant else ''}",
                    result.policy_a: f"{m.a.mean:.4g} ± {m.a.half_width:.3g}",
                    result.policy_b: f"{m.b.mean:.4g} ± {m.b.half_width:.3g}",
                    "diff (A-B)": f"{m.paired.mean_diff:+.4g}",
                    "p": f"{m.paired.p_value:.3f}",
                    "favours": m.better if m.better else "—",
                }
            )
        parts.extend([f"## {case.context} ({case.n} seeds)", "", _markdown_table(rows), ""])
    parts.append("```")
    parts.append(result.summary())
    parts.append("```")
    return "\n".join(parts)


def comparison_json(result: ComparisonResult) -> Dict[str, Any]:
    """Machine view of a pairwise comparison."""
    return {
        "suite": result.suite,
        "policy_a": result.policy_a,
        "policy_b": result.policy_b,
        "confidence": result.confidence,
        "cache_hits": result.cache_hits,
        "cache_misses": result.cache_misses,
        "elapsed_seconds": result.elapsed_seconds,
        "served": _served_line(
            result.cache_hits, result.cache_misses, result.elapsed_seconds
        ),
        "cases": [
            {
                "context": case.context,
                "seeds": case.n,
                "metrics": [
                    {
                        "metric": m.metric,
                        "a": {"mean": m.a.mean, "lo": m.a.lo, "hi": m.a.hi},
                        "b": {"mean": m.b.mean, "lo": m.b.lo, "hi": m.b.hi},
                        "mean_diff": m.paired.mean_diff,
                        "p_value": m.paired.p_value,
                        "significant": m.paired.significant,
                        "better": m.better,
                    }
                    for m in case.metrics
                ],
            }
            for case in result.cases
        ],
    }


# ----------------------------------------------------------------------
# store-wide report
# ----------------------------------------------------------------------
def report_from_store(
    store: ResultStore,
    suite: Optional[str] = None,
    metrics: Iterable[str] = DEFAULT_METRICS,
    confidence: float = 0.95,
    timings: bool = False,
) -> str:
    """Markdown digest of everything the store holds, grouped by suite/case.

    This is ``repro bench report``: no simulation, just aggregation of the
    cached entries (optionally filtered to one suite).  Entries from stale
    code versions are skipped, and aggregation groups by replication
    *family* (scenario identity minus the seed), never by label alone —
    pooling two generations of a renamed or re-parameterized case into one
    mean ± CI would be statistically meaningless.

    ``timings=True`` adds a wall-clock column: the mean per-replication
    simulation cost recorded when each entry was produced (``repro bench
    report --timings``) — the checked-in perf trajectory reads this.
    """
    metrics = list(metrics)
    current = code_version()
    # (suite, case, family) -> entries; families sharing a case label are
    # disambiguated in the rendered rows.
    grouped: Dict[str, Dict[str, Dict[str, list]]] = {}
    for entry in store.entries():
        if not entry.suite or (suite is not None and entry.suite != suite):
            continue
        if entry.code != current:
            continue
        family = family_key(entry.scenario, entry.extra)
        grouped.setdefault(entry.suite, {}).setdefault(entry.case, {}).setdefault(
            family, []
        ).append(entry)

    if not grouped:
        scope = f"suite {suite!r}" if suite else "any suite"
        return f"*(no cached results for {scope} in {store.root})*"

    parts = [f"# Benchmark store report — `{store.root}`", ""]
    for suite_name in sorted(grouped):
        rows = []
        for case_name in sorted(grouped[suite_name]):
            families = grouped[suite_name][case_name]
            for family in sorted(families):
                entries = families[family]
                reports = [e.report for e in entries]
                label = case_name
                if len(families) > 1:
                    label = f"{case_name} [{family[:8]}]"
                row: Dict[str, object] = {"case": label, "entries": len(entries)}
                for metric in metrics:
                    ci = metric_ci(metric, [r.value(metric) for r in reports], confidence)
                    row[metric] = f"{ci.mean:.4g} ± {ci.half_width:.3g}"
                if timings:
                    mean_elapsed = sum(e.elapsed_seconds for e in entries) / len(entries)
                    row["run seconds"] = f"{mean_elapsed:.3f}"
                rows.append(row)
        parts.extend([f"## `{suite_name}`", "", _markdown_table(rows), ""])
    return "\n".join(parts)


def to_json_text(data: Dict[str, Any]) -> str:
    """Stable JSON text for files the CI smoke job diffs and parses."""
    return json.dumps(data, indent=2, sort_keys=True) + "\n"
