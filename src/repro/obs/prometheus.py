"""Prometheus text exposition (format 0.0.4) for a :class:`Telemetry` registry.

Renders counters, gauges, and histograms the way a scraper expects them:
``# HELP`` / ``# TYPE`` headers, escaped label values, cumulative
``_bucket`` series with inclusive ``le`` upper bounds plus ``+Inf``, and
``_sum`` / ``_count`` per histogram series.  Output is deterministic —
families sort by name, series by label key — so tests can compare text.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from .telemetry import (
    CounterFamily,
    GaugeFamily,
    HistogramFamily,
    Telemetry,
)

__all__ = ["CONTENT_TYPE", "render"]

#: The Content-Type a /metrics response must carry for this format.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_labels(pairs: Iterable[Tuple[str, str]]) -> str:
    rendered = ",".join(
        f'{name}="{_escape_label_value(value)}"' for name, value in pairs
    )
    return f"{{{rendered}}}" if rendered else ""


def _bucket_labels(pairs: Iterable[Tuple[str, str]], upper: str) -> str:
    # `le` participates in the label set like any other label.
    return _format_labels(list(pairs) + [("le", upper)])


def render(telemetry: Telemetry) -> str:
    """The whole registry as Prometheus text, terminated by a newline."""
    lines: List[str] = []
    for family in telemetry.families():
        if family.help:
            lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        if isinstance(family, (CounterFamily, GaugeFamily)):
            for key in family.label_keys():
                labels = dict(key)
                lines.append(
                    f"{family.name}{_format_labels(key)} "
                    f"{_format_value(family.value(**labels))}"
                )
        elif isinstance(family, HistogramFamily):
            for key in family.label_keys():
                labels = dict(key)
                cumulative = family.bucket_counts(**labels)
                for upper, count in zip(family.buckets, cumulative):
                    lines.append(
                        f"{family.name}_bucket"
                        f"{_bucket_labels(key, _format_value(upper))} {count}"
                    )
                lines.append(
                    f"{family.name}_bucket{_bucket_labels(key, '+Inf')} "
                    f"{cumulative[-1]}"
                )
                lines.append(
                    f"{family.name}_sum{_format_labels(key)} "
                    f"{_format_value(family.sum_(**labels))}"
                )
                lines.append(
                    f"{family.name}_count{_format_labels(key)} "
                    f"{family.count_(**labels)}"
                )
    return "\n".join(lines) + "\n" if lines else ""
