"""Structured logging for the repro toolchain.

One ``repro`` logger hierarchy, two line-oriented formats — human-first
``key=value`` (the default) and machine-first JSON lines for log shippers —
and two switches: ``repro --log-level debug`` (or the ``REPRO_LOG``
environment variable; the flag wins) and ``repro --log-format json`` (or
``REPRO_LOG_FORMAT``).  Long-running commands (``repro serve``) default to
``info`` so access logs appear; one-shot commands default to ``warning`` so
pipeline output stays clean.

Usage::

    from repro.obs.log import get_logger
    log = get_logger("serve")
    log.info("request", method="GET", target="/v1/healthz", status=200)

Keyword arguments become structured fields: ``key=value`` pairs appended to
the message in text mode (values containing spaces are quoted so lines stay
machine-splittable), top-level keys of the object in JSON mode — the same
fields either way, only the rendering changes.
"""

from __future__ import annotations

import json
import logging
import os
import sys
import time
from typing import Optional

__all__ = [
    "configure",
    "get_logger",
    "resolve_format",
    "resolve_level",
    "StructuredLoggerAdapter",
]

_ROOT_NAME = "repro"

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
    "critical": logging.CRITICAL,
}

_FORMATS = ("text", "json")


class _LineFormatter(logging.Formatter):
    """``HH:MM:SS.mmm LEVEL logger message key=value ...`` — UTC, fixed width."""

    converter = time.gmtime

    def format(self, record: logging.LogRecord) -> str:
        stamp = self.formatTime(record, "%H:%M:%S")
        message = record.getMessage()
        fields = getattr(record, "repro_fields", None)
        if fields:
            pairs = " ".join(f"{k}={_render_value(v)}" for k, v in fields.items())
            message = f"{message} {pairs}" if message else pairs
        line = (
            f"{stamp}.{int(record.msecs):03d} "
            f"{record.levelname.lower():<7} {record.name} {message}"
        )
        if record.exc_info:
            line = f"{line}\n{self.formatException(record.exc_info)}"
        return line


class _JsonFormatter(logging.Formatter):
    """One JSON object per line: ts/level/logger/message plus the fields."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 3),
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        fields = getattr(record, "repro_fields", None)
        if fields:
            for key, value in fields.items():
                # The envelope keys win on collision; a field named "level"
                # must not be able to forge the record's severity.
                if key not in payload:
                    payload[key] = value
        if record.exc_info:
            payload["exception"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str, separators=(",", ":"))


class StructuredLoggerAdapter(logging.LoggerAdapter):
    """Carries keyword arguments as structured fields on the record.

    Fields ride in ``record.repro_fields`` so each formatter renders them
    its own way (``key=value`` text, JSON object keys) from the same call.
    """

    def log(self, level: int, msg: object, *args: object, **kwargs: object) -> None:
        if not self.logger.isEnabledFor(level):
            return
        exc_info = kwargs.pop("exc_info", None)
        self.logger.log(
            level,
            msg,
            *args,
            exc_info=exc_info,  # type: ignore[arg-type]
            extra={"repro_fields": kwargs},
        )

    def debug(self, msg: object = "", *args: object, **kwargs: object) -> None:
        self.log(logging.DEBUG, msg, *args, **kwargs)

    def info(self, msg: object = "", *args: object, **kwargs: object) -> None:
        self.log(logging.INFO, msg, *args, **kwargs)

    def warning(self, msg: object = "", *args: object, **kwargs: object) -> None:
        self.log(logging.WARNING, msg, *args, **kwargs)

    def error(self, msg: object = "", *args: object, **kwargs: object) -> None:
        self.log(logging.ERROR, msg, *args, **kwargs)


def _render_value(value: object) -> str:
    if isinstance(value, float):
        text = f"{value:.6f}".rstrip("0").rstrip(".")
        return text or "0"
    text = str(value)
    if not text or any(c in text for c in ' "='):
        return '"' + text.replace('"', '\\"') + '"'
    return text


def resolve_level(flag: Optional[str] = None, default: str = "warning") -> int:
    """Pick the effective level: ``--log-level`` flag > ``REPRO_LOG`` > default."""
    name = flag or os.environ.get("REPRO_LOG") or default
    try:
        return _LEVELS[name.strip().lower()]
    except KeyError:
        valid = ", ".join(sorted(_LEVELS))
        raise ValueError(f"unknown log level {name!r} (expected one of: {valid})")


def resolve_format(flag: Optional[str] = None, default: str = "text") -> str:
    """Pick the format: ``--log-format`` flag > ``REPRO_LOG_FORMAT`` > default."""
    name = (flag or os.environ.get("REPRO_LOG_FORMAT") or default).strip().lower()
    if name not in _FORMATS:
        valid = ", ".join(_FORMATS)
        raise ValueError(f"unknown log format {name!r} (expected one of: {valid})")
    return name


def configure(
    level: int = logging.WARNING, stream=None, fmt: str = "text"
) -> logging.Logger:
    """Set up the ``repro`` logger hierarchy; idempotent and reconfigurable.

    Logs go to stderr so stdout stays parseable (JSON output, metric
    tables).  Calling again replaces the handler, level, and format — the
    CLI calls this once per invocation, tests call it with a capture stream.
    """
    if fmt not in _FORMATS:
        valid = ", ".join(_FORMATS)
        raise ValueError(f"unknown log format {fmt!r} (expected one of: {valid})")
    root = logging.getLogger(_ROOT_NAME)
    for handler in list(root.handlers):
        root.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(_JsonFormatter() if fmt == "json" else _LineFormatter())
    root.addHandler(handler)
    root.setLevel(level)
    root.propagate = False
    return root


def get_logger(name: str = "") -> StructuredLoggerAdapter:
    """A structured logger under the ``repro`` hierarchy (e.g. ``repro.serve``)."""
    full = f"{_ROOT_NAME}.{name}" if name else _ROOT_NAME
    return StructuredLoggerAdapter(logging.getLogger(full), {})
