"""cProfile-backed hotspot extraction for ``repro profile``.

Wraps the stdlib profiler with the two things the CLI needs: run a
callable under :class:`cProfile.Profile`, and reduce the raw stats to a
top-N *cumulative-time* table — the view that answers "where does a
scenario actually spend its time" before anyone starts optimizing.
"""

from __future__ import annotations

import cProfile
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

__all__ = ["Hotspot", "ProfileRun", "profile_call", "hotspot_table"]


@dataclass(frozen=True)
class Hotspot:
    """One function's aggregate cost from a profiled run."""

    function: str          # "module.py:123(name)" or "{built-in ...}"
    calls: int             # primitive (non-recursive) call count
    total_seconds: float   # time inside the function itself (tottime)
    cumulative_seconds: float  # time including callees (cumtime)


@dataclass(frozen=True)
class ProfileRun:
    """The profiled call's return value plus its ranked hotspots."""

    result: Any
    hotspots: List[Hotspot]
    total_calls: int
    total_seconds: float
    #: the underlying profiler, kept so callers can dump raw pstats data
    #: (``repro profile --raw``) for snakeviz/gprof2dot-style tooling
    profiler: Optional[cProfile.Profile] = field(
        default=None, repr=False, compare=False
    )

    def dump_stats(self, path: str) -> None:
        """Write the raw pstats dump (the ``python -m pstats`` format)."""
        if self.profiler is None:
            raise ValueError("this ProfileRun was built without its profiler")
        self.profiler.dump_stats(path)


def _function_label(key: Tuple[str, int, str]) -> str:
    filename, lineno, name = key
    if filename == "~":  # cProfile's marker for C-level / built-in frames
        return name
    # Keep the path short but unambiguous: last two components.
    parts = filename.replace("\\", "/").split("/")
    short = "/".join(parts[-2:]) if len(parts) > 1 else filename
    return f"{short}:{lineno}({name})"


def profile_call(func: Callable[[], Any], top: int = 25) -> ProfileRun:
    """Run ``func`` under cProfile and rank functions by cumulative time."""
    profiler = cProfile.Profile()
    result = profiler.runcall(func)
    profiler.create_stats()
    # stats maps (file, line, name) -> (primitive calls, total calls,
    # tottime, cumtime, callers).
    stats = profiler.stats  # type: ignore[attr-defined]
    hotspots = [
        Hotspot(
            function=_function_label(key),
            calls=nc,
            total_seconds=tt,
            cumulative_seconds=ct,
        )
        for key, (cc, nc, tt, ct, callers) in stats.items()
    ]
    hotspots.sort(key=lambda h: (-h.cumulative_seconds, h.function))
    total_calls = sum(h.calls for h in hotspots)
    total_seconds = sum(h.total_seconds for h in hotspots)
    return ProfileRun(
        result=result,
        hotspots=hotspots[:top],
        total_calls=total_calls,
        total_seconds=total_seconds,
        profiler=profiler,
    )


def hotspot_table(run: ProfileRun, width: int = 72) -> str:
    """The ranked hotspots as a fixed-width text table."""
    header = f"{'cumsec':>9} {'totsec':>9} {'calls':>9}  function"
    rows = [header, "-" * len(header)]
    for spot in run.hotspots:
        rows.append(
            f"{spot.cumulative_seconds:>9.4f} {spot.total_seconds:>9.4f} "
            f"{spot.calls:>9d}  {spot.function[:width]}"
        )
    rows.append(
        f"-- {run.total_calls} calls, {run.total_seconds:.4f}s total "
        f"(top {len(run.hotspots)} by cumulative time)"
    )
    return "\n".join(rows)
