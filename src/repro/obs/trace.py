"""Hierarchical span tracing with Chrome trace-event export.

Where :mod:`repro.obs.telemetry` answers *how much* (counters, phase-total
histograms), this module answers *where the time went and in what order*: a
:class:`Tracer` records nested :class:`TraceSpan` records — name, parent,
start, duration, attributes — and exports them as Chrome trace-event JSON,
so any run opens directly in Perfetto or ``chrome://tracing``.

The scoping contract is exactly the one :func:`repro.obs.telemetry.span`
established: the active tracer lives in a :mod:`contextvars` variable,
:func:`trace_scope` installs one for the duration of a run, and the
module-level :func:`trace_span` helper is a cheap pass-through when no scope
is active — instrumented code pays (almost) nothing unless someone asked
for a timeline.  Context variables also carry the *current parent span*, so
nesting follows the call stack per thread and per async task with no
plumbing.

Two things the telemetry layer cannot do live here:

* **Cross-process stitching.**  ``run_many`` workers are separate
  processes; each records into its own tracer, serializes the spans with
  wall-clock-anchored start times, and the parent :meth:`Tracer.graft`\\ s
  them into its own timeline under the span that launched the fan-out.
  Every worker keeps its own track (``tid`` = worker pid), so the exported
  timeline shows the fan-out as parallel lanes.

* **Retroactive spans.**  The serve daemon learns a job's phase boundaries
  from timestamps (submitted/started/finished); :meth:`Tracer.add_span`
  records a span after the fact from those.

Clocks are injectable (``clock`` for durations, ``wall`` for the absolute
anchor) so tests can assert byte-identical exports under a fake clock.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "TraceSpan",
    "Tracer",
    "trace_scope",
    "trace_span",
    "current_tracer",
    "current_span_id",
    "chrome_trace",
    "chrome_trace_text",
    "write_chrome_trace",
]


@dataclass(frozen=True)
class TraceSpan:
    """One completed span: a named, attributed slice of the run's timeline."""

    span_id: int
    parent_id: Optional[int]
    name: str
    #: start time in seconds relative to the owning tracer's epoch
    start: float
    duration: float
    attributes: Dict[str, Any] = field(default_factory=dict)
    #: display track (0 = the tracer's own process; workers use their pid)
    tid: int = 0


class Tracer:
    """Collects spans for one run; thread-safe, bounded, export-ready.

    ``max_spans`` bounds memory for long-lived tracers (the serve daemon's):
    once full, new spans are *dropped and counted* — the export says how
    many, so a truncated timeline never reads as a complete one.
    """

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        wall: Callable[[], float] = time.time,
        max_spans: Optional[int] = None,
    ) -> None:
        self._clock = clock
        self._perf_epoch = clock()
        #: wall-clock instant of the tracer's epoch: the anchor that makes
        #: span times comparable across processes when grafting.
        self.wall_epoch = wall()
        self.max_spans = max_spans
        self.dropped = 0
        self.spans: List[TraceSpan] = []
        self._lock = threading.Lock()
        self._next_id = 1

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def now(self) -> float:
        """Seconds since the tracer's epoch."""
        return self._clock() - self._perf_epoch

    def _allocate_id(self) -> int:
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            return span_id

    def _record(self, span: TraceSpan) -> None:
        with self._lock:
            if self.max_spans is not None and len(self.spans) >= self.max_spans:
                self.dropped += 1
                return
            self.spans.append(span)

    @contextmanager
    def span(self, name: str, tid: int = 0, **attributes: Any):
        """Record the enclosed block as a span, nested under the current one.

        The span id is allocated on entry (children born inside the block
        see it as their parent via the context variable); the span itself is
        recorded on exit, failed blocks included.
        """
        span_id = self._allocate_id()
        parent = _current_parent(self)
        token = _ACTIVE.set((self, span_id))
        start = self.now()
        try:
            yield
        finally:
            _ACTIVE.reset(token)
            self._record(
                TraceSpan(
                    span_id=span_id,
                    parent_id=parent,
                    name=name,
                    start=start,
                    duration=self.now() - start,
                    attributes=dict(attributes),
                    tid=tid,
                )
            )

    def add_span(
        self,
        name: str,
        start: float,
        end: float,
        parent_id: Optional[int] = None,
        tid: int = 0,
        **attributes: Any,
    ) -> int:
        """Record a span retroactively from wall-clock timestamps.

        ``start``/``end`` are absolute ``time.time()`` instants (the serve
        daemon records those on job transitions); they are rebased onto the
        tracer's epoch.  Returns the span id so callers can attach children.
        """
        span_id = self._allocate_id()
        self._record(
            TraceSpan(
                span_id=span_id,
                parent_id=parent_id,
                name=name,
                start=start - self.wall_epoch,
                duration=max(0.0, end - start),
                attributes=dict(attributes),
                tid=tid,
            )
        )
        return span_id

    # ------------------------------------------------------------------
    # cross-process stitching
    # ------------------------------------------------------------------
    def serialize(self) -> List[Dict[str, Any]]:
        """Picklable span dicts with wall-clock-absolute start times.

        This is what a ``run_many`` worker sends home: absolute times are
        the one representation both processes agree on, so the parent can
        rebase them onto its own epoch without guessing when the worker ran.
        """
        with self._lock:
            spans = list(self.spans)
        pid = os.getpid()
        return [
            {
                "id": span.span_id,
                "parent": span.parent_id,
                "name": span.name,
                "start": self.wall_epoch + span.start,
                "duration": span.duration,
                "attributes": span.attributes,
                "tid": span.tid if span.tid else pid,
            }
            for span in spans
        ]

    def graft(
        self, serialized: Iterable[Dict[str, Any]], parent_id: Optional[int] = None
    ) -> None:
        """Stitch another tracer's serialized spans into this timeline.

        Ids are remapped to fresh ones (two workers may both have span 1),
        top-level spans are re-parented under ``parent_id``, and start times
        are rebased from absolute wall clock onto this tracer's epoch.  The
        worker-assigned ``tid`` rides through, keeping each worker on its
        own display track.
        """
        id_map: Dict[int, int] = {}
        spans = list(serialized)
        for span in spans:
            id_map[span["id"]] = self._allocate_id()
        for span in spans:
            parent = span.get("parent")
            self._record(
                TraceSpan(
                    span_id=id_map[span["id"]],
                    parent_id=id_map.get(parent, parent_id) if parent is not None else parent_id,
                    name=span["name"],
                    start=span["start"] - self.wall_epoch,
                    duration=span["duration"],
                    attributes=dict(span.get("attributes") or {}),
                    tid=int(span.get("tid", 0)),
                )
            )

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def export(self) -> List[TraceSpan]:
        """Spans in deterministic order: by start time, then allocation id."""
        with self._lock:
            return sorted(self.spans, key=lambda s: (s.start, s.span_id))


# ----------------------------------------------------------------------
# contextvar scoping — (tracer, current parent span id)
# ----------------------------------------------------------------------
_ACTIVE: ContextVar[Optional[Tuple[Tracer, Optional[int]]]] = ContextVar(
    "repro_obs_tracer", default=None
)


def _current_parent(tracer: Tracer) -> Optional[int]:
    active = _ACTIVE.get()
    if active is not None and active[0] is tracer:
        return active[1]
    return None


def current_tracer() -> Optional[Tracer]:
    """The tracer installed by the nearest :func:`trace_scope` (or None)."""
    active = _ACTIVE.get()
    return active[0] if active is not None else None


def current_span_id() -> Optional[int]:
    """The id of the innermost open span on the active tracer (or None).

    ``run_many`` reads this before fanning out so worker spans graft under
    the span that launched them.
    """
    active = _ACTIVE.get()
    return active[1] if active is not None else None


@contextmanager
def trace_scope(tracer: Tracer):
    """Install ``tracer`` as the active tracer for the enclosed block.

    Scopes nest and restore, exactly like ``telemetry_scope``; the current
    parent resets to "root" on entry so a nested scope starts its own tree.
    """
    token = _ACTIVE.set((tracer, None))
    try:
        yield tracer
    finally:
        _ACTIVE.reset(token)


@contextmanager
def trace_span(name: str, **attributes: Any):
    """Record a span on the active tracer; a plain pass-through without one."""
    active = _ACTIVE.get()
    if active is None:
        yield
        return
    with active[0].span(name, **attributes):
        yield


# ----------------------------------------------------------------------
# Chrome trace-event export
# ----------------------------------------------------------------------
#: All spans render into one logical process in the trace viewer.
_TRACE_PID = 1


def chrome_trace(tracer: Tracer, process_name: str = "repro") -> Dict[str, Any]:
    """The tracer's spans as a Chrome trace-event JSON object.

    Complete (``ph: "X"``) events carry microsecond start/duration;
    metadata events name the process and every track, so Perfetto shows
    "main" and one lane per ``run_many`` worker pid.  Event order is
    deterministic (start time, then allocation id), which makes the
    rendered text stable under a fake clock.
    """
    spans = tracer.export()
    tids = sorted({span.tid for span in spans})
    events: List[Dict[str, Any]] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": _TRACE_PID,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for tid in tids:
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": _TRACE_PID,
                "tid": tid,
                "args": {"name": "main" if tid == 0 else f"worker-{tid}"},
            }
        )
    for span in spans:
        args = dict(span.attributes)
        if span.parent_id is not None:
            args["parent_span"] = span.parent_id
        events.append(
            {
                "ph": "X",
                "name": span.name,
                "cat": span.name.split(".", 1)[0],
                "pid": _TRACE_PID,
                "tid": span.tid,
                "ts": round(span.start * 1e6, 3),
                "dur": round(span.duration * 1e6, 3),
                "id": span.span_id,
                "args": args,
            }
        )
    trace: Dict[str, Any] = {"displayTimeUnit": "ms", "traceEvents": events}
    if tracer.dropped:
        # A bounded tracer that overflowed must say so in the artifact.
        trace["otherData"] = {"dropped_spans": tracer.dropped}
    return trace


def chrome_trace_text(tracer: Tracer, process_name: str = "repro") -> str:
    """The export as stable JSON text (sorted keys, trailing newline)."""
    return json.dumps(chrome_trace(tracer, process_name), sort_keys=True, indent=1) + "\n"


def write_chrome_trace(tracer: Tracer, path: str, process_name: str = "repro") -> None:
    """Write the Chrome trace JSON to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(chrome_trace_text(tracer, process_name))
