"""An append-only JSONL journal of job lifecycle events, replayable on boot.

The serve daemon's coalescing map (:class:`~repro.serve.service.
EvaluationService.jobs`) lives in memory: a restart forgets every digest it
ever answered, even though the *results* survive in the content-addressed
store.  The journal closes that gap at the cost of one small append per
lifecycle transition:

* :meth:`JobJournal.append` writes one JSON object per line.  Writes are
  flushed immediately (a reader tailing the file sees every event) but
  ``fsync``\\ ed in batches — every ``batch_size`` events, or immediately
  when the caller marks an event durable (terminal transitions are).  A
  crash can therefore lose at most the tail of a batch, never a fsynced
  terminal state.

* :func:`replay` reads the file back tolerantly: a torn final line (the
  crash happened mid-write) or a corrupt line is counted and skipped, not
  fatal.  The daemon replays at boot, recreating *finished* jobs so their
  digests are served without re-running; jobs whose last journaled state is
  non-terminal were interrupted and are deliberately forgotten — a
  resubmission must run them again, not coalesce onto a ghost.

The format is deliberately dumb — one dict per line, ``event`` naming the
transition — so shell tooling (``tail -f``, ``jq``) works on it directly.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Union

__all__ = ["JobJournal", "JournalReplay", "replay"]


class JobJournal:
    """Append-only JSONL event log with batched fsync."""

    def __init__(
        self,
        path: Union[str, Path],
        batch_size: int = 8,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.path = Path(path)
        self.batch_size = batch_size
        self._clock = clock
        self._handle = None
        self._pending = 0
        # The serve daemon appends from the event loop *and* from executor
        # threads (progress events); one lock keeps lines whole.
        self._lock = threading.Lock()
        #: events appended through this handle (not the file's total)
        self.appended = 0

    def _open(self):
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        return self._handle

    def append(self, event: Dict[str, Any], durable: bool = False) -> Dict[str, Any]:
        """Append one event line; stamps ``ts`` if the caller didn't.

        ``durable=True`` forces an immediate fsync (terminal job states);
        otherwise the event is flushed now and fsynced with its batch.
        """
        record = dict(event)
        record.setdefault("ts", round(self._clock(), 6))
        with self._lock:
            handle = self._open()
            handle.write(
                json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
            )
            handle.flush()
            self.appended += 1
            self._pending += 1
            if durable or self._pending >= self.batch_size:
                self._sync_locked()
        return record

    def _sync_locked(self) -> None:
        if self._handle is not None and self._pending:
            os.fsync(self._handle.fileno())
            self._pending = 0

    def sync(self) -> None:
        """fsync anything flushed but not yet durable."""
        with self._lock:
            self._sync_locked()

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._sync_locked()
                self._handle.close()
                self._handle = None

    def size_bytes(self) -> int:
        """Current on-disk size (0 when the file doesn't exist yet)."""
        try:
            return self.path.stat().st_size
        except OSError:
            return 0

    def __enter__(self) -> "JobJournal":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


@dataclass
class JournalReplay:
    """What one replay pass read: the events, and how trustworthy they are."""

    events: List[Dict[str, Any]] = field(default_factory=list)
    #: lines that did not parse as a JSON object (torn tail, corruption)
    malformed: int = 0
    bytes_read: int = 0

    def by_digest(self) -> Dict[str, List[Dict[str, Any]]]:
        """Events grouped by job digest, in file (= time) order."""
        grouped: Dict[str, List[Dict[str, Any]]] = {}
        for event in self.events:
            digest = event.get("digest")
            if isinstance(digest, str) and digest:
                grouped.setdefault(digest, []).append(event)
        return grouped


def _iter_lines(path: Path) -> Iterator[str]:
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        yield from handle


def replay(path: Union[str, Path]) -> JournalReplay:
    """Read a journal file tolerantly; missing file = empty replay.

    A final line without a newline is a torn write from a crash — counted
    as malformed, like any line that fails to parse.  Everything readable
    before it is kept.
    """
    path = Path(path)
    result = JournalReplay()
    if not path.is_file():
        return result
    result.bytes_read = path.stat().st_size
    for line in _iter_lines(path):
        stripped = line.strip()
        if not stripped:
            continue
        if not line.endswith("\n"):
            # torn tail: the writer died mid-line
            result.malformed += 1
            continue
        try:
            event = json.loads(stripped)
        except ValueError:
            result.malformed += 1
            continue
        if not isinstance(event, dict):
            result.malformed += 1
            continue
        result.events.append(event)
    return result
