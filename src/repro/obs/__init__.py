"""repro.obs — zero-dependency observability: metrics, logs, profiles.

Three small modules, one purpose — make every layer of the pipeline
measurable without adding a dependency:

* :mod:`repro.obs.telemetry` — counters / gauges / fixed-bucket histograms
  behind a contextvar-scoped :class:`Telemetry` registry, with ``span()``
  timers and no-op-safe module helpers for deep call sites (schedulers).
* :mod:`repro.obs.prometheus` — text exposition (format 0.0.4) for the
  serve daemon's ``GET /v1/metrics``.
* :mod:`repro.obs.log` — structured ``key=value`` (or JSON-lines) logging
  behind ``repro --log-level`` / ``--log-format`` / ``REPRO_LOG``.
* :mod:`repro.obs.profile` — cProfile hotspot tables for ``repro profile``.
* :mod:`repro.obs.trace` — hierarchical span timelines with Chrome
  trace-event export (``repro bench run --trace``).
* :mod:`repro.obs.journal` — the serve daemon's append-only job journal.
"""

from .journal import JobJournal, JournalReplay, replay as replay_journal
from .log import (
    configure as configure_logging,
    get_logger,
    resolve_format,
    resolve_level,
)
from .profile import Hotspot, ProfileRun, hotspot_table, profile_call
from .trace import (
    Tracer,
    TraceSpan,
    chrome_trace,
    chrome_trace_text,
    current_span_id,
    current_tracer,
    trace_scope,
    trace_span,
    write_chrome_trace,
)
from .prometheus import CONTENT_TYPE as PROMETHEUS_CONTENT_TYPE, render as render_prometheus
from .telemetry import (
    DEFAULT_LATENCY_BUCKETS,
    CounterFamily,
    GaugeFamily,
    HistogramFamily,
    Telemetry,
    TelemetryError,
    count,
    current_telemetry,
    gauge_max,
    span,
    telemetry_scope,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "CounterFamily",
    "GaugeFamily",
    "HistogramFamily",
    "Telemetry",
    "TelemetryError",
    "count",
    "current_telemetry",
    "gauge_max",
    "span",
    "telemetry_scope",
    "PROMETHEUS_CONTENT_TYPE",
    "render_prometheus",
    "configure_logging",
    "get_logger",
    "resolve_format",
    "resolve_level",
    "Hotspot",
    "ProfileRun",
    "hotspot_table",
    "profile_call",
    "Tracer",
    "TraceSpan",
    "chrome_trace",
    "chrome_trace_text",
    "current_span_id",
    "current_tracer",
    "trace_scope",
    "trace_span",
    "write_chrome_trace",
    "JobJournal",
    "JournalReplay",
    "replay_journal",
]
