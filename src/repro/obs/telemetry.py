"""Zero-dependency telemetry primitives: counters, gauges, histograms, spans.

Every layer of the repository that wants to be *measured* — the simulation
driver, the schedulers, the bench runner, the serve daemon — records into a
:class:`Telemetry` registry.  Two properties drive the design:

* **Determinism where it matters.**  Simulation-side metrics (events popped,
  scheduling passes, shadow scans, backfilled jobs, queue depth) count
  *simulated* facts, never wall-clock time, so a run's counters are
  bit-identical between serial and parallel execution and can ride inside
  the content-addressed result store.  Wall-clock spans are kept separate
  (the bench runner's timing breakdown, the serve daemon's latencies).

* **Context scoping instead of plumbing.**  Schedulers are called deep
  inside the event loop through a stable API; rather than threading a
  registry through every signature, the active :class:`Telemetry` is held
  in a :mod:`contextvars` variable.  :func:`telemetry_scope` installs one
  for the duration of a run, and the module-level helpers (:func:`count`,
  :func:`gauge_max`, :func:`span`) are cheap no-ops when no scope is
  active — unit tests calling a scheduler directly measure nothing and
  pay (almost) nothing.

The registry is intentionally small and stdlib-only; the Prometheus text
rendering lives in :mod:`repro.obs.prometheus`.
"""

from __future__ import annotations

import time
from bisect import bisect_left
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "CounterFamily",
    "GaugeFamily",
    "HistogramFamily",
    "Telemetry",
    "TelemetryError",
    "current_telemetry",
    "telemetry_scope",
    "count",
    "gauge_max",
    "span",
]

#: Default histogram buckets (seconds) for request/phase latencies: the usual
#: Prometheus client defaults extended to a minute, since evaluation jobs are
#: slow compared to web requests.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

#: One labelled series inside a family: the sorted (name, value) label pairs.
LabelKey = Tuple[Tuple[str, str], ...]


class TelemetryError(ValueError):
    """Raised on metric misuse: kind clashes, bad buckets, negative counts."""


def _label_key(labels: Dict[str, object]) -> LabelKey:
    """Canonical, order-independent series key for a label set."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Family:
    """A named metric family holding one series per distinct label set."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str = "") -> None:
        self.name = name
        self.help = help_text

    def label_keys(self) -> List[LabelKey]:
        """Every series' label key, deterministically ordered."""
        return sorted(self._series)  # type: ignore[attr-defined]


class CounterFamily(_Family):
    """A monotonically increasing count (per label set)."""

    kind = "counter"

    def __init__(self, name: str, help_text: str = "") -> None:
        super().__init__(name, help_text)
        self._series: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1, **labels: object) -> None:
        if amount < 0:
            raise TelemetryError(f"counter {self.name!r} cannot decrease")
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels: object) -> float:
        return self._series.get(_label_key(labels), 0)


class GaugeFamily(_Family):
    """A value that can go up and down (per label set)."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str = "") -> None:
        super().__init__(name, help_text)
        self._series: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: object) -> None:
        self._series[_label_key(labels)] = value

    def inc(self, amount: float = 1, **labels: object) -> None:
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0) + amount

    def dec(self, amount: float = 1, **labels: object) -> None:
        self.inc(-amount, **labels)

    def set_max(self, value: float, **labels: object) -> None:
        """High-water mark: keep the largest value ever seen."""
        key = _label_key(labels)
        if key not in self._series or value > self._series[key]:
            self._series[key] = value

    def value(self, **labels: object) -> float:
        return self._series.get(_label_key(labels), 0)


class _HistogramSeries:
    __slots__ = ("counts", "sum", "count")

    def __init__(self, buckets: int) -> None:
        self.counts = [0] * (buckets + 1)  # one extra for +Inf
        self.sum = 0.0
        self.count = 0


class HistogramFamily(_Family):
    """Fixed-bucket distribution (per label set).

    Buckets follow the Prometheus convention: each upper bound is
    *inclusive* (an observation equal to a bucket edge lands in that
    bucket), and an implicit ``+Inf`` bucket catches everything beyond the
    largest edge.  Bucket counts are stored per bucket and cumulated only
    at render time.
    """

    kind = "histogram"

    def __init__(
        self, name: str, buckets: Sequence[float], help_text: str = ""
    ) -> None:
        super().__init__(name, help_text)
        uppers = [float(b) for b in buckets]
        if not uppers:
            raise TelemetryError(f"histogram {self.name!r} needs at least one bucket")
        if any(b >= a for b, a in zip(uppers, uppers[1:])):
            raise TelemetryError(
                f"histogram {self.name!r} buckets must be strictly increasing"
            )
        self.buckets: Tuple[float, ...] = tuple(uppers)
        self._series: Dict[LabelKey, _HistogramSeries] = {}

    def observe(self, value: float, **labels: object) -> None:
        key = _label_key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _HistogramSeries(len(self.buckets))
        # bisect_left finds the first upper bound >= value: the inclusive
        # bucket.  A value beyond every edge lands at index len(buckets),
        # the +Inf slot.
        series.counts[bisect_left(self.buckets, value)] += 1
        series.sum += value
        series.count += 1

    def bucket_counts(self, **labels: object) -> List[int]:
        """Cumulative counts per bucket (ending with the +Inf total)."""
        series = self._series.get(_label_key(labels))
        if series is None:
            return [0] * (len(self.buckets) + 1)
        cumulative, total = [], 0
        for n in series.counts:
            total += n
            cumulative.append(total)
        return cumulative

    def sum_(self, **labels: object) -> float:
        series = self._series.get(_label_key(labels))
        return series.sum if series is not None else 0.0

    def count_(self, **labels: object) -> int:
        series = self._series.get(_label_key(labels))
        return series.count if series is not None else 0


class Telemetry:
    """A registry of metric families, created lazily by name.

    Asking twice for the same name returns the same family; asking for an
    existing name with a different kind (or different histogram buckets) is
    an error — silently forking a metric would corrupt both series.
    """

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}

    def _get(self, name: str, kind: type, factory) -> _Family:
        family = self._families.get(name)
        if family is None:
            family = self._families[name] = factory()
        elif not isinstance(family, kind):
            raise TelemetryError(
                f"metric {name!r} is a {family.kind}, not a {kind.kind}"  # type: ignore[attr-defined]
            )
        return family

    def counter(self, name: str, help_text: str = "") -> CounterFamily:
        return self._get(name, CounterFamily, lambda: CounterFamily(name, help_text))  # type: ignore[return-value]

    def gauge(self, name: str, help_text: str = "") -> GaugeFamily:
        return self._get(name, GaugeFamily, lambda: GaugeFamily(name, help_text))  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        help_text: str = "",
    ) -> HistogramFamily:
        family = self._get(
            name, HistogramFamily, lambda: HistogramFamily(name, buckets, help_text)
        )
        if tuple(float(b) for b in buckets) != family.buckets:  # type: ignore[attr-defined]
            raise TelemetryError(
                f"histogram {name!r} was registered with different buckets"
            )
        return family  # type: ignore[return-value]

    def families(self) -> Iterator[_Family]:
        """Families in deterministic (name) order."""
        for name in sorted(self._families):
            yield self._families[name]

    @contextmanager
    def span(self, name: str, **labels: object):
        """Time a block into the ``<name>_seconds`` histogram.

        The lightweight timer behind the bench runner's phase breakdown and
        the serve daemon's request latencies; yields nothing and never
        swallows exceptions (the failed span is still observed).
        """
        started = time.perf_counter()
        try:
            yield
        finally:
            self.histogram(f"{name}_seconds").observe(
                time.perf_counter() - started, **labels
            )

    def seconds(self, name: str, **labels: object) -> float:
        """Total seconds recorded by :meth:`span` calls under ``name``."""
        family = self._families.get(f"{name}_seconds")
        if not isinstance(family, HistogramFamily):
            return 0.0
        return family.sum_(**labels)

    def as_counters(self) -> Dict[str, float]:
        """Unlabelled counter and gauge values as one flat dict.

        Integral values come back as ``int`` so the dict serializes to the
        same JSON text on every run — this is the snapshot the simulation
        driver folds into :class:`~repro.metrics.basic.MetricsReport`.
        """
        snapshot: Dict[str, float] = {}
        for family in self.families():
            if isinstance(family, (CounterFamily, GaugeFamily)):
                if () not in family._series:  # labelled-only family
                    continue
                value = family.value()
                snapshot[family.name] = int(value) if value == int(value) else value
        return snapshot


# ----------------------------------------------------------------------
# contextvar scoping
# ----------------------------------------------------------------------
_ACTIVE: ContextVar[Optional[Telemetry]] = ContextVar("repro_obs_telemetry", default=None)


def current_telemetry() -> Optional[Telemetry]:
    """The telemetry registry installed by the nearest :func:`telemetry_scope`."""
    return _ACTIVE.get()


@contextmanager
def telemetry_scope(telemetry: Telemetry):
    """Install ``telemetry`` as the active registry for the enclosed block.

    Scopes nest: the previous registry is restored on exit.  Context
    variables are per-thread and per-async-task, so concurrent runs (serve
    workers, ``run_many`` processes) never share a scope by accident.
    """
    token = _ACTIVE.set(telemetry)
    try:
        yield telemetry
    finally:
        _ACTIVE.reset(token)


def count(name: str, amount: float = 1, **labels: object) -> None:
    """Increment a counter on the active registry; no-op without a scope."""
    telemetry = _ACTIVE.get()
    if telemetry is not None:
        telemetry.counter(name).inc(amount, **labels)


def gauge_max(name: str, value: float, **labels: object) -> None:
    """Raise a gauge high-water mark on the active registry; no-op without a scope."""
    telemetry = _ACTIVE.get()
    if telemetry is not None:
        telemetry.gauge(name).set_max(value, **labels)


@contextmanager
def span(name: str, **labels: object):
    """Time a block on the active registry; a plain pass-through without one."""
    telemetry = _ACTIVE.get()
    if telemetry is None:
        yield
        return
    with telemetry.span(name, **labels):
        yield
