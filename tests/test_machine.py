"""Unit tests for the parallel machine model (nodes, allocation, failures)."""

from __future__ import annotations

import pytest

from repro.machine import Machine
from repro.machine.cluster import AllocationError


class TestConstruction:
    def test_single_partition_by_default(self):
        machine = Machine(size=16)
        assert machine.size == 16
        assert len(machine.partitions) == 1
        assert machine.partitions[0].size == 16

    def test_explicit_partitions(self):
        machine = Machine(size=16, partitions=[4, 12])
        assert [p.size for p in machine.partitions] == [4, 12]
        assert machine.free_count(partition=1) == 4

    def test_partition_sizes_must_sum_to_size(self):
        with pytest.raises(ValueError):
            Machine(size=16, partitions=[4, 4])

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            Machine(size=0)


class TestAllocation:
    def test_allocate_and_release(self):
        machine = Machine(size=8)
        allocation = machine.allocate(job_id=1, processors=5)
        assert allocation.size == 5
        assert machine.free_count() == 3
        assert machine.busy_count() == 5
        machine.release(1)
        assert machine.free_count() == 8

    def test_cannot_overallocate(self):
        machine = Machine(size=4)
        machine.allocate(1, 3)
        assert not machine.can_allocate(2)
        with pytest.raises(AllocationError):
            machine.allocate(2, 2)

    def test_double_allocation_rejected(self):
        machine = Machine(size=8)
        machine.allocate(1, 2)
        with pytest.raises(AllocationError):
            machine.allocate(1, 2)

    def test_release_unknown_job_rejected(self):
        with pytest.raises(AllocationError):
            Machine(size=4).release(99)

    def test_zero_processor_request_rejected(self):
        with pytest.raises(AllocationError):
            Machine(size=4).allocate(1, 0)

    def test_memory_constraint(self):
        machine = Machine(size=4, memory_per_node_kb=1024)
        assert not machine.can_allocate(1, memory_per_node_kb=2048)
        with pytest.raises(AllocationError):
            machine.allocate(1, 1, memory_per_node_kb=2048)
        machine.allocate(2, 1, memory_per_node_kb=512)

    def test_partition_restricted_allocation(self):
        machine = Machine(size=8, partitions=[4, 4])
        machine.allocate(1, 4, partition=1)
        assert machine.free_count(partition=1) == 0
        assert machine.free_count(partition=2) == 4
        with pytest.raises(AllocationError):
            machine.allocate(2, 1, partition=1)

    def test_utilized_fraction(self):
        machine = Machine(size=10)
        machine.allocate(1, 5)
        assert machine.utilized_fraction() == pytest.approx(0.5)

    def test_allocations_view(self):
        machine = Machine(size=8)
        machine.allocate(1, 2, start_time=42.0)
        allocations = machine.allocations
        assert allocations[1].start_time == 42.0
        assert allocations[1].size == 2


class TestFailures:
    def test_fail_free_nodes_reports_no_victims(self):
        machine = Machine(size=8)
        node_ids, victims = machine.fail_any(2)
        assert len(node_ids) == 2
        assert victims == []
        assert machine.free_count() == 6
        assert machine.down_count() == 2

    def test_fail_busy_node_reports_victim_job(self):
        machine = Machine(size=2)
        machine.allocate(7, 2)
        victims = machine.fail_nodes([0])
        assert victims == [7]

    def test_fail_any_prefers_free_nodes(self):
        machine = Machine(size=4)
        machine.allocate(1, 2)
        _, victims = machine.fail_any(2)
        assert victims == []

    def test_fail_any_spills_to_busy_nodes(self):
        machine = Machine(size=4)
        machine.allocate(1, 3)
        _, victims = machine.fail_any(2)
        assert victims == [1]

    def test_restore_nodes(self):
        machine = Machine(size=4)
        node_ids, _ = machine.fail_any(2)
        machine.restore_nodes(node_ids)
        assert machine.down_count() == 0
        assert machine.free_count() == 4

    def test_down_nodes_not_allocated(self):
        machine = Machine(size=4)
        machine.fail_nodes([0, 1])
        assert machine.up_count() == 2
        assert not machine.can_allocate(3)
        allocation = machine.allocate(1, 2)
        assert set(allocation.node_ids).isdisjoint({0, 1})

    def test_unknown_node_rejected(self):
        with pytest.raises(AllocationError):
            Machine(size=2).fail_nodes([99])
        with pytest.raises(AllocationError):
            Machine(size=2).restore_nodes([99])

    def test_release_after_failure_keeps_node_down(self):
        machine = Machine(size=2)
        machine.allocate(1, 2)
        machine.fail_nodes([0])
        machine.release(1)
        assert machine.down_count() == 1
        assert machine.free_count() == 1
