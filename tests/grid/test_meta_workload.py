"""Tests for the synthetic meta-job workload generator."""

from __future__ import annotations

import pytest

from repro.grid import generate_meta_jobs


class TestGenerateMetaJobs:
    def test_count_and_ordering(self):
        jobs = generate_meta_jobs(100, seed=1)
        assert len(jobs) == 100
        submits = [j.submit_time for j in jobs]
        assert submits == sorted(submits)
        assert submits[0] == 0

    def test_coallocation_fraction_respected(self):
        jobs = generate_meta_jobs(400, coallocation_fraction=0.5, seed=2)
        coallocated = sum(1 for j in jobs if j.is_coallocation)
        assert 0.35 < coallocated / len(jobs) < 0.65

    def test_no_coallocation_when_fraction_zero(self):
        jobs = generate_meta_jobs(100, coallocation_fraction=0.0, seed=3)
        assert all(not j.is_coallocation for j in jobs)

    def test_component_sizes_are_bounded_powers_of_two(self):
        jobs = generate_meta_jobs(200, max_component_processors=32, seed=4)
        for job in jobs:
            for component in job.components:
                assert 1 <= component.processors <= 32
                assert component.processors & (component.processors - 1) == 0

    def test_component_count_bounded(self):
        jobs = generate_meta_jobs(200, coallocation_fraction=1.0, max_components=3, seed=5)
        assert all(2 <= len(j.components) <= 3 for j in jobs)

    def test_runtimes_within_bounds_and_estimates_cover_them(self):
        jobs = generate_meta_jobs(200, min_runtime=100, max_runtime=1000, seed=6)
        for job in jobs:
            assert 100 <= job.runtime <= 1000
            assert job.estimate >= job.runtime

    def test_reproducible(self):
        assert generate_meta_jobs(50, seed=7) == generate_meta_jobs(50, seed=7)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            generate_meta_jobs(0)
        with pytest.raises(ValueError):
            generate_meta_jobs(10, coallocation_fraction=1.5)
        with pytest.raises(ValueError):
            generate_meta_jobs(10, max_components=1)
