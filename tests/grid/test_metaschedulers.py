"""Tests for meta-scheduler site selection and co-allocation planning."""

from __future__ import annotations

import pytest

from repro.grid import (
    EarliestStartMetaScheduler,
    LeastLoadedMetaScheduler,
    MetaComponent,
    MetaJob,
    SiteView,
)
from repro.schedulers.base import RunningJobInfo
from tests.schedulers.util import make_request


def view(name, total=64, free=64, queued=(), running=(), reservations=(), now=0.0):
    return SiteView(
        name=name,
        total_processors=total,
        free_processors=free,
        speed=1.0,
        now=now,
        queued=list(queued),
        running=list(running),
        reservations=list(reservations),
    )


def meta_job(job_id=1, components=(8,), runtime=600, estimate=900, submit=0):
    return MetaJob(
        job_id=job_id,
        submit_time=submit,
        runtime=runtime,
        estimate=estimate,
        components=tuple(MetaComponent(processors=p) for p in components),
    )


class TestMetaJob:
    def test_coallocation_flag_and_totals(self):
        single = meta_job(components=(16,))
        multi = meta_job(components=(16, 8))
        assert not single.is_coallocation
        assert multi.is_coallocation
        assert multi.total_processors == 24

    def test_estimate_clamped_to_runtime(self):
        job = MetaJob(job_id=1, submit_time=0, runtime=500, estimate=100,
                      components=(MetaComponent(4),))
        assert job.estimate == 500

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            MetaJob(job_id=0, submit_time=0, runtime=1, estimate=1, components=(MetaComponent(1),))
        with pytest.raises(ValueError):
            MetaJob(job_id=1, submit_time=0, runtime=1, estimate=1, components=())
        with pytest.raises(ValueError):
            MetaComponent(processors=0)


class TestLeastLoaded:
    def test_picks_site_with_most_free_processors(self):
        sites = [view("busy", free=4), view("idle", free=60)]
        assert LeastLoadedMetaScheduler().choose_site(meta_job(), sites) == "idle"

    def test_tie_broken_by_queue_length(self):
        sites = [
            view("long-queue", free=32, queued=[make_request(1, 4), make_request(2, 4)]),
            view("short-queue", free=32, queued=[make_request(3, 4)]),
        ]
        assert LeastLoadedMetaScheduler().choose_site(meta_job(), sites) == "short-queue"

    def test_too_small_sites_excluded(self):
        sites = [view("small", total=4, free=4), view("large", total=64, free=1)]
        job = meta_job(components=(32,))
        assert LeastLoadedMetaScheduler().choose_site(job, sites) == "large"

    def test_no_feasible_site_raises(self):
        with pytest.raises(ValueError):
            LeastLoadedMetaScheduler().choose_site(meta_job(components=(128,)), [view("s", total=64)])


class TestEarliestStart:
    def test_prefers_site_with_shorter_predicted_wait(self):
        busy = view(
            "busy",
            free=0,
            running=[
                RunningJobInfo(
                    request=make_request(1, 64, estimate=5000),
                    start_time=0.0,
                    expected_end=5000.0,
                )
            ],
        )
        idle = view("idle", free=64)
        assert EarliestStartMetaScheduler().choose_site(meta_job(), [busy, idle]) == "idle"

    def test_predictors_are_per_site(self):
        scheduler = EarliestStartMetaScheduler()
        a = scheduler.predictor_for("a")
        b = scheduler.predictor_for("b")
        assert a is not b
        assert scheduler.predictor_for("a") is a


class TestCoallocationPlanning:
    def test_without_reservations_assigns_distinct_sites(self):
        scheduler = LeastLoadedMetaScheduler()
        job = meta_job(components=(16, 8))
        mapping, start = scheduler.plan_coallocation(
            job, [view("a", free=60), view("b", free=50)], use_reservations=False
        )
        assert start is None
        assert set(mapping) == {"a", "b"}
        # Largest component goes to the freest site.
        assert mapping["a"].processors == 16

    def test_with_reservations_returns_common_start(self):
        scheduler = LeastLoadedMetaScheduler()
        job = meta_job(components=(16, 16), estimate=1000)
        mapping, start = scheduler.plan_coallocation(
            job, [view("a"), view("b")], use_reservations=True, negotiation_slack=60.0
        )
        assert set(mapping) == {"a", "b"}
        assert start == pytest.approx(60.0)  # both sites idle: now + slack

    def test_reserved_start_respects_busy_site(self):
        running = [RunningJobInfo(request=make_request(1, 64, estimate=500), start_time=0.0, expected_end=500.0)]
        busy = view("busy", free=0, running=running)
        idle = view("idle")
        job = meta_job(components=(32, 32), estimate=100)
        _, start = LeastLoadedMetaScheduler().plan_coallocation(
            job, [busy, idle], use_reservations=True, negotiation_slack=0.0
        )
        assert start == pytest.approx(500.0)

    def test_more_components_than_sites_rejected(self):
        job = meta_job(components=(8, 8, 8))
        with pytest.raises(ValueError):
            LeastLoadedMetaScheduler().plan_coallocation(job, [view("only")], use_reservations=False)

    def test_component_larger_than_any_site_rejected(self):
        job = meta_job(components=(128, 8))
        with pytest.raises(ValueError):
            LeastLoadedMetaScheduler().plan_coallocation(
                job, [view("a", total=64), view("b", total=64)], use_reservations=False
            )


class TestSiteViewProfiles:
    def test_guaranteed_profile_subtracts_reservations(self):
        site = view("a", reservations=[(100.0, 200.0, 48)])
        profile = site.guaranteed_profile()
        assert profile.free_at(150) == 16
        assert profile.free_at(250) == 64

    def test_earliest_guaranteed_start_accounts_for_queue(self):
        queued = [make_request(1, 64, estimate=1000)]
        site = view("a", queued=queued)
        start = site.earliest_guaranteed_start(32, 100)
        assert start == pytest.approx(1000.0)

    def test_infeasible_component_returns_infinity(self):
        assert view("a", total=16).earliest_guaranteed_start(32, 100) == float("inf")
