"""Integration tests for the multi-site grid simulation."""

from __future__ import annotations

import pytest

from repro.grid import (
    EarliestStartMetaScheduler,
    GridSimulation,
    LeastLoadedMetaScheduler,
    MeanWaitPredictor,
    MetaComponent,
    MetaJob,
    ProfilePredictor,
    Site,
    generate_meta_jobs,
)
from repro.bench.seeds import derive_seeds
from repro.schedulers import EasyBackfillScheduler, FCFSScheduler
from repro.workloads import Lublin99Model


def make_sites(count=2, size=64, local_jobs=0, load=0.5, seed=100, outage_aware=True):
    sites = []
    site_seeds = derive_seeds(seed, count)
    for i in range(count):
        workload = None
        if local_jobs:
            workload = Lublin99Model(machine_size=size).generate_with_load(
                local_jobs, load, seed=site_seeds[i]
            )
        sites.append(
            Site(
                name=f"s{i}",
                machine_size=size,
                scheduler=EasyBackfillScheduler(outage_aware=outage_aware),
                local_workload=workload,
            )
        )
    return sites


def single_meta_job(job_id=1, processors=16, runtime=100, submit=0):
    return MetaJob(
        job_id=job_id,
        submit_time=submit,
        runtime=runtime,
        estimate=runtime,
        components=(MetaComponent(processors),),
    )


def coallocation_job(job_id=1, processors=(32, 32), runtime=100, submit=0):
    return MetaJob(
        job_id=job_id,
        submit_time=submit,
        runtime=runtime,
        estimate=runtime,
        components=tuple(MetaComponent(p) for p in processors),
    )


class TestSingleSiteMetaJobs:
    def test_meta_job_runs_on_idle_site(self):
        result = GridSimulation(
            make_sites(2), [single_meta_job()], LeastLoadedMetaScheduler()
        ).run()
        assert len(result.meta_results) == 1
        job = result.meta_results[0]
        assert job.wait_time == 0
        assert job.end_time == pytest.approx(100.0)
        assert not job.job.is_coallocation

    def test_oversized_meta_job_rejected(self):
        result = GridSimulation(
            make_sites(2, size=16), [single_meta_job(processors=64)], LeastLoadedMetaScheduler()
        ).run()
        assert result.rejected_meta_jobs == [1]
        assert result.meta_results == []

    def test_site_speed_scales_runtime(self):
        sites = [
            Site(name="fast", machine_size=64, scheduler=FCFSScheduler(), speed=2.0),
        ]
        result = GridSimulation(sites, [single_meta_job(runtime=100)], LeastLoadedMetaScheduler()).run()
        assert result.meta_results[0].end_time == pytest.approx(50.0)

    def test_duplicate_site_names_rejected(self):
        sites = make_sites(1) + make_sites(1)
        with pytest.raises(ValueError):
            GridSimulation(sites, [], LeastLoadedMetaScheduler())

    def test_local_workload_simulated_per_site(self):
        sites = make_sites(2, local_jobs=50, seed=7)
        result = GridSimulation(sites, [], LeastLoadedMetaScheduler()).run()
        for site_result in result.site_results.values():
            assert len(site_result.jobs) == 50


class TestCoallocation:
    def test_coallocation_spans_distinct_sites(self):
        result = GridSimulation(
            make_sites(2), [coallocation_job()], LeastLoadedMetaScheduler()
        ).run()
        assert len(result.meta_results) == 1
        assert len(set(result.meta_results[0].sites)) == 2

    def test_coallocation_without_reservations_wastes_cycles_on_busy_grid(self):
        # One site is saturated by a local job, so one component starts late;
        # the early component's processors idle in the meantime.
        sites = make_sites(2)
        blocker = single_meta_job(job_id=99, processors=64, runtime=500, submit=0)
        co = coallocation_job(job_id=1, processors=(32, 32), runtime=100, submit=10)
        result = GridSimulation(sites, [blocker, co], LeastLoadedMetaScheduler(),
                                use_reservations=False).run()
        co_result = next(r for r in result.meta_results if r.job.job_id == 1)
        assert co_result.wasted_node_seconds > 0

    def test_reservations_synchronize_component_starts(self):
        sites = make_sites(2)
        blocker = single_meta_job(job_id=99, processors=64, runtime=500, submit=0)
        co = coallocation_job(job_id=1, processors=(32, 32), runtime=100, submit=10)
        result = GridSimulation(sites, [blocker, co], LeastLoadedMetaScheduler(),
                                use_reservations=True).run()
        co_result = next(r for r in result.meta_results if r.job.job_id == 1)
        assert co_result.used_reservation
        assert co_result.wasted_node_seconds == pytest.approx(0.0, abs=1.0)
        assert co_result.planned_start is not None

    def test_reservations_complete_more_coallocations(self):
        sites_a = make_sites(3, local_jobs=120, load=0.7, seed=42)
        sites_b = make_sites(3, local_jobs=120, load=0.7, seed=42)
        meta = generate_meta_jobs(40, coallocation_fraction=0.5, max_components=3, seed=9)
        without = GridSimulation(sites_a, meta, LeastLoadedMetaScheduler(), use_reservations=False).run()
        with_res = GridSimulation(sites_b, meta, LeastLoadedMetaScheduler(), use_reservations=True).run()
        # Reservations are the mechanism that lets co-allocations finish at all
        # under contention; without them, components starve waiting for partners.
        assert len(with_res.unfinished_meta_jobs) <= len(without.unfinished_meta_jobs)
        assert len(with_res.coallocation_results()) >= len(without.coallocation_results())


class TestPredictionScoring:
    def test_prediction_pairs_collected_and_observed(self):
        sites = make_sites(2, local_jobs=60, load=0.6, seed=11)
        meta = generate_meta_jobs(30, coallocation_fraction=0.0, seed=12)
        result = GridSimulation(
            sites,
            meta,
            EarliestStartMetaScheduler(),
            predictors={"mean": MeanWaitPredictor, "profile": ProfilePredictor},
        ).run()
        assert set(result.prediction_pairs) == {"mean", "profile"}
        for pairs in result.prediction_pairs.values():
            assert len(pairs) == len(result.single_site_results())
            for predicted, actual in pairs:
                assert predicted >= 0.0
                assert actual >= 0.0

    def test_grid_result_summaries(self):
        sites = make_sites(2)
        meta = [single_meta_job(1), coallocation_job(2, submit=5)]
        result = GridSimulation(sites, meta, LeastLoadedMetaScheduler()).run()
        assert len(result.single_site_results()) == 1
        assert len(result.coallocation_results()) == 1
        assert result.mean_meta_wait() >= 0.0
        assert result.late_reservation_fraction() == 0.0
