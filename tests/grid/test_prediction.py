"""Tests for queue-wait-time predictors."""

from __future__ import annotations

import pytest

from repro.grid import (
    CategoryMeanPredictor,
    MeanWaitPredictor,
    ProfilePredictor,
    prediction_error_summary,
)
from tests.schedulers.util import make_request, make_state


def predict(predictor, processors=8, estimate=600, state=None):
    state = state if state is not None else make_state(64)
    return predictor.predict_wait(
        processors,
        estimate,
        state.now,
        state.total_processors,
        state.free_processors,
        state.running,
        state.queue,
    )


class TestMeanWaitPredictor:
    def test_no_history_predicts_zero(self):
        assert predict(MeanWaitPredictor()) == 0.0

    def test_predicts_running_mean(self):
        predictor = MeanWaitPredictor()
        for wait in (100.0, 200.0, 300.0):
            predictor.observe(4, 100, wait)
        assert predict(predictor) == pytest.approx(200.0)

    def test_sliding_window_forgets_old_observations(self):
        predictor = MeanWaitPredictor(window=2)
        predictor.observe(4, 100, 1000.0)
        predictor.observe(4, 100, 10.0)
        predictor.observe(4, 100, 20.0)
        assert predict(predictor) == pytest.approx(15.0)

    def test_negative_observations_clamped(self):
        predictor = MeanWaitPredictor()
        predictor.observe(4, 100, -50.0)
        assert predict(predictor) == 0.0

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            MeanWaitPredictor(window=0)


class TestCategoryMeanPredictor:
    def test_uses_matching_category(self):
        predictor = CategoryMeanPredictor()
        predictor.observe(processors=2, estimate=100, wait=50.0)
        predictor.observe(processors=64, estimate=50_000, wait=5000.0)
        small = predict(predictor, processors=2, estimate=100)
        large = predict(predictor, processors=64, estimate=50_000)
        assert small == pytest.approx(50.0)
        assert large == pytest.approx(5000.0)

    def test_falls_back_to_global_mean_for_unseen_category(self):
        predictor = CategoryMeanPredictor()
        predictor.observe(processors=2, estimate=100, wait=100.0)
        assert predict(predictor, processors=128, estimate=90_000) == pytest.approx(100.0)

    def test_empty_history_predicts_zero(self):
        assert predict(CategoryMeanPredictor()) == 0.0


class TestProfilePredictor:
    def test_idle_machine_predicts_zero_wait(self):
        assert predict(ProfilePredictor()) == 0.0

    def test_accounts_for_running_jobs(self):
        running = [(make_request(1, processors=60, estimate=500), 0.0, 500.0)]
        state = make_state(64, running=running)
        wait = predict(ProfilePredictor(), processors=16, estimate=100, state=state)
        assert wait == pytest.approx(500.0)

    def test_accounts_for_queued_jobs_ahead(self):
        running = [(make_request(1, processors=64, estimate=1000), 0.0, 1000.0)]
        queued = [make_request(2, processors=64, estimate=2000)]
        state = make_state(64, running=running, queue=queued)
        wait = predict(ProfilePredictor(), processors=32, estimate=100, state=state)
        assert wait == pytest.approx(3000.0)

    def test_oversized_queued_jobs_clamped_to_machine(self):
        queued = [make_request(2, processors=999, estimate=100)]
        state = make_state(64, queue=queued)
        # Should not raise; the queued request is clamped to the machine size.
        assert predict(ProfilePredictor(), processors=8, estimate=50, state=state) >= 0.0


class TestErrorSummary:
    def test_summary_fields(self):
        pairs = [(100.0, 80.0), (50.0, 70.0)]
        summary = prediction_error_summary(pairs)
        assert summary["count"] == 2
        assert summary["mae"] == pytest.approx(20.0)
        assert summary["bias"] == pytest.approx(0.0)
        assert summary["mean_actual"] == pytest.approx(75.0)

    def test_empty_pairs(self):
        assert prediction_error_summary([])["count"] == 0
