"""Unit tests for the discrete-event simulation kernel."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation import Simulator
from repro.simulation.engine import SimulationError


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(10.0, fired.append, "late")
        sim.schedule(5.0, fired.append, "early")
        sim.run()
        assert fired == ["early", "late"]

    def test_clock_advances_to_last_event(self):
        sim = Simulator()
        sim.schedule(7.5, lambda: None)
        sim.run()
        assert sim.now == 7.5

    def test_same_time_priority_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "low-priority", priority=5)
        sim.schedule(1.0, fired.append, "high-priority", priority=0)
        sim.run()
        assert fired == ["high-priority", "low-priority"]

    def test_same_time_same_priority_is_fifo(self):
        sim = Simulator()
        fired = []
        for label in ("a", "b", "c"):
            sim.schedule(1.0, fired.append, label)
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_schedule_at_absolute_time(self):
        sim = Simulator(start_time=100.0)
        fired = []
        sim.schedule_at(150.0, fired.append, "x")
        sim.run()
        assert fired == ["x"]
        assert sim.now == 150.0

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_scheduling_in_the_past_rejected(self):
        sim = Simulator(start_time=50.0)
        with pytest.raises(SimulationError):
            sim.schedule_at(10.0, lambda: None)

    def test_kwargs_passed_to_callback(self):
        sim = Simulator()
        seen = {}
        sim.schedule(1.0, lambda **kw: seen.update(kw), value=42)
        sim.run()
        assert seen == {"value": 42}

    def test_events_scheduled_during_run_are_processed(self):
        sim = Simulator()
        fired = []

        def first():
            fired.append("first")
            sim.schedule(5.0, lambda: fired.append("second"))

        sim.schedule(1.0, first)
        sim.run()
        assert fired == ["first", "second"]
        assert sim.now == 6.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, fired.append, "cancelled")
        sim.schedule(2.0, fired.append, "kept")
        handle.cancel()
        sim.run()
        assert fired == ["kept"]
        assert handle.cancelled

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert sim.run() == 0

    def test_pending_events_excludes_cancelled(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        handle.cancel()
        assert sim.pending_events == 1


class TestRunControl:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(10.0, fired.append, "b")
        sim.run(until=5.0)
        assert fired == ["a"]
        assert sim.now == 5.0
        sim.run()
        assert fired == ["a", "b"]

    def test_max_events_limits_execution(self):
        sim = Simulator()
        fired = []
        for i in range(5):
            sim.schedule(i + 1.0, fired.append, i)
        executed = sim.run(max_events=2)
        assert executed == 2
        assert fired == [0, 1]

    def test_stop_from_callback(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: (fired.append("a"), sim.stop()))
        sim.schedule(2.0, fired.append, "b")
        sim.run()
        assert fired[0] == "a"
        assert "b" not in fired

    def test_step_returns_none_on_empty_queue(self):
        assert Simulator().step() is None

    def test_peek_skips_cancelled(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        sim.schedule(3.0, lambda: None)
        handle.cancel()
        assert sim.peek() == 3.0

    def test_advance_to_moves_idle_clock(self):
        sim = Simulator()
        sim.advance_to(42.0)
        assert sim.now == 42.0

    def test_advance_to_cannot_skip_events(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        with pytest.raises(SimulationError):
            sim.advance_to(10.0)

    def test_advance_to_cannot_go_backwards(self):
        sim = Simulator(start_time=10.0)
        with pytest.raises(SimulationError):
            sim.advance_to(5.0)

    def test_processed_event_count(self):
        sim = Simulator()
        for i in range(4):
            sim.schedule(float(i + 1), lambda: None)
        sim.run()
        assert sim.processed_events == 4


class TestDeterminism:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_events_always_fire_in_nondecreasing_time_order(self, delays):
        sim = Simulator()
        observed = []
        for delay in delays:
            sim.schedule(delay, lambda: observed.append(sim.now))
        sim.run()
        assert observed == sorted(observed)
        assert len(observed) == len(delays)

    @given(st.lists(st.integers(min_value=0, max_value=1000), min_size=2, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_equal_times_preserve_insertion_order(self, values):
        sim = Simulator()
        fired = []
        for value in values:
            sim.schedule(1.0, fired.append, value)
        sim.run()
        assert fired == values
