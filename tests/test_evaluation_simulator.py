"""Unit and integration tests for the machine-scheduler evaluation driver."""

from __future__ import annotations

import pytest

from repro.core.outage import OutageLog, OutageRecord, OutageType
from repro.core.swf import MISSING
from repro.evaluation import MachineSimulation, simulate
from repro.schedulers import EasyBackfillScheduler, FCFSScheduler
from repro.schedulers.base import JobRequest, Scheduler
from tests.conftest import make_job, make_workload


class TestBasicReplay:
    def test_single_job_timing(self):
        workload = make_workload([make_job(1, submit=0, runtime=100, processors=8)])
        result = simulate(workload, FCFSScheduler(), machine_size=16)
        job = result.jobs[0]
        assert job.start_time == 0
        assert job.end_time == 100
        assert job.wait_time == 0

    def test_sequential_when_machine_full(self):
        jobs = [
            make_job(1, submit=0, runtime=100, processors=16),
            make_job(2, submit=0, runtime=100, processors=16),
        ]
        result = simulate(make_workload(jobs), FCFSScheduler(), machine_size=16)
        by_id = result.by_job_id()
        assert by_id[1].start_time == 0
        assert by_id[2].start_time == 100
        assert by_id[2].wait_time == 100

    def test_parallel_when_machine_has_room(self):
        jobs = [
            make_job(1, submit=0, runtime=100, processors=8),
            make_job(2, submit=0, runtime=100, processors=8),
        ]
        result = simulate(make_workload(jobs), FCFSScheduler(), machine_size=16)
        assert all(j.wait_time == 0 for j in result.jobs)

    def test_scheduler_sees_estimates_not_runtimes(self):
        seen = {}

        class Spy(Scheduler):
            name = "spy"

            def select_jobs(self, state):
                for request in state.queue:
                    seen[request.job_id] = request.estimate
                return list(state.queue)

        workload = make_workload(
            [make_job(1, submit=0, runtime=100, processors=4, requested_time=500)]
        )
        simulate(workload, Spy(), machine_size=16)
        assert seen[1] == 500

    def test_jobs_too_large_for_machine_are_skipped(self):
        jobs = [make_job(1, submit=0, runtime=10, processors=64), make_job(2, submit=0, runtime=10, processors=4)]
        result = simulate(make_workload(jobs), FCFSScheduler(), machine_size=16)
        assert len(result.jobs) == 1
        assert result.metadata["skipped_too_large"] == 1

    def test_machine_size_defaults_to_header(self, tiny_workload):
        result = simulate(tiny_workload, FCFSScheduler())
        assert result.machine_size == 32

    def test_unknown_machine_size_rejected(self):
        job = make_job(1, allocated_processors=MISSING, requested_processors=MISSING)
        workload = make_workload([job])
        workload.header.set("MaxNodes", "")
        with pytest.raises(ValueError):
            MachineSimulation(workload, FCFSScheduler())

    def test_over_committing_scheduler_detected(self):
        class Broken(Scheduler):
            name = "broken"

            def select_jobs(self, state):
                return list(state.queue)  # ignores capacity

        jobs = [make_job(1, submit=0, processors=16), make_job(2, submit=0, processors=16)]
        with pytest.raises(RuntimeError):
            simulate(make_workload(jobs), Broken(), machine_size=16)

    def test_scheduler_selecting_unknown_job_detected(self):
        class Phantom(Scheduler):
            name = "phantom"

            def select_jobs(self, state):
                ghost = JobRequest(
                    job=make_job(99, processors=1),
                    processors=1,
                    runtime=1,
                    estimate=1,
                    submit_time=0,
                )
                return [ghost]

        with pytest.raises(RuntimeError):
            simulate(make_workload([make_job(1, submit=0)]), Phantom(), machine_size=16)


class TestDependencies:
    def _chained_workload(self):
        jobs = [
            make_job(1, submit=0, runtime=100, processors=4),
            make_job(2, submit=10, runtime=50, processors=4, preceding_job=1, think_time=30),
        ]
        return make_workload(jobs)

    def test_open_replay_uses_absolute_submit_times(self):
        result = simulate(
            self._chained_workload(), FCFSScheduler(), machine_size=16, honor_dependencies=False
        )
        assert result.by_job_id()[2].submit_time == 10

    def test_closed_replay_waits_for_predecessor_and_think_time(self):
        result = simulate(
            self._chained_workload(), FCFSScheduler(), machine_size=16, honor_dependencies=True
        )
        # Job 1 ends at 100; think time 30 -> job 2 is submitted at 130.
        assert result.by_job_id()[2].submit_time == 130

    def test_missing_think_time_treated_as_zero(self):
        jobs = [
            make_job(1, submit=0, runtime=100, processors=4),
            make_job(2, submit=10, runtime=50, processors=4, preceding_job=1, think_time=MISSING),
        ]
        result = simulate(
            make_workload(jobs), FCFSScheduler(), machine_size=16, honor_dependencies=True
        )
        assert result.by_job_id()[2].submit_time == 100

    def test_dependency_on_absent_job_falls_back_to_absolute_time(self):
        jobs = [make_job(1, submit=5, runtime=10, processors=4, preceding_job=77, think_time=3)]
        result = simulate(
            make_workload(jobs), FCFSScheduler(), machine_size=16, honor_dependencies=True
        )
        assert result.by_job_id()[1].submit_time == 5


class TestOutages:
    def _maintenance(self, start, end, nodes, announced=None):
        return OutageLog(
            [
                OutageRecord(
                    announced_time=start if announced is None else announced,
                    start_time=start,
                    end_time=end,
                    outage_type=OutageType.MAINTENANCE,
                    nodes_affected=nodes,
                )
            ]
        )

    def test_job_killed_by_unannounced_outage_is_restarted(self):
        workload = make_workload([make_job(1, submit=0, runtime=100, processors=16)])
        outages = self._maintenance(start=50, end=60, nodes=16)
        result = simulate(
            workload, FCFSScheduler(), machine_size=16, outages=outages, restart_failed_jobs=True
        )
        job = result.by_job_id()[1]
        assert result.outage_kills == 1
        assert job.restarts == 1
        assert not job.killed
        assert job.end_time > 100  # lost work plus the downtime

    def test_job_killed_without_restart_is_recorded_killed(self):
        workload = make_workload([make_job(1, submit=0, runtime=100, processors=16)])
        outages = self._maintenance(start=50, end=60, nodes=16)
        result = simulate(
            workload, FCFSScheduler(), machine_size=16, outages=outages, restart_failed_jobs=False
        )
        job = result.by_job_id()[1]
        assert job.killed
        assert job.end_time == 50

    def test_outage_on_free_nodes_kills_nothing(self):
        workload = make_workload([make_job(1, submit=0, runtime=100, processors=4)])
        outages = self._maintenance(start=10, end=20, nodes=4)
        # The outage takes the highest-numbered nodes; the job sits on the lowest.
        result = simulate(workload, FCFSScheduler(), machine_size=16, outages=outages)
        assert result.outage_kills == 0

    def test_outage_aware_scheduler_avoids_announced_window(self):
        # One job that would overlap a full-machine maintenance window.
        workload = make_workload([make_job(1, submit=0, runtime=100, processors=16, requested_time=100)])
        outages = self._maintenance(start=50, end=200, nodes=16, announced=0)
        aware = simulate(
            workload,
            EasyBackfillScheduler(outage_aware=True),
            machine_size=16,
            outages=outages,
        )
        blind = simulate(
            workload,
            EasyBackfillScheduler(outage_aware=False),
            machine_size=16,
            outages=outages,
        )
        assert aware.outage_kills == 0
        assert aware.by_job_id()[1].start_time >= 200
        assert blind.outage_kills == 1

    def test_available_node_seconds_recorded(self):
        workload = make_workload([make_job(1, submit=0, runtime=300, processors=4)])
        outages = self._maintenance(start=10, end=20, nodes=4)
        result = simulate(workload, FCFSScheduler(), machine_size=16, outages=outages)
        assert result.available_node_seconds is not None
        assert result.available_node_seconds < 16 * result.makespan + 1
