"""Unit tests for the Workload container."""

from __future__ import annotations

import pytest

from repro.core.swf import MISSING, Workload
from tests.conftest import make_job, make_workload


class TestContainerBasics:
    def test_len_iter_index(self, tiny_workload):
        assert len(tiny_workload) == 4
        assert [j.job_number for j in tiny_workload] == [1, 2, 3, 4]
        assert tiny_workload[0].job_number == 1

    def test_append_and_extend(self):
        workload = make_workload([])
        workload.append(make_job(1))
        workload.extend([make_job(2, submit=5)])
        assert len(workload) == 2

    def test_copy_is_independent(self, tiny_workload):
        clone = tiny_workload.copy(name="clone")
        clone.append(make_job(5, submit=100))
        assert len(tiny_workload) == 4
        assert len(clone) == 5
        assert clone.name == "clone"

    def test_equality(self, tiny_workload):
        assert tiny_workload == tiny_workload.copy()

    def test_summary_vs_partial_views(self):
        jobs = [make_job(1, status=1), make_job(1, status=2), make_job(1, status=3)]
        workload = make_workload(jobs)
        assert len(workload.summary_jobs()) == 1
        assert len(workload.partial_jobs()) == 2

    def test_filter(self, tiny_workload):
        small = tiny_workload.filter(lambda j: j.allocated_processors <= 8)
        assert [j.job_number for j in small] == [1, 4]


class TestDerivedQuantities:
    def test_span(self, tiny_workload):
        # Last completion: job 3 submits at 20, waits 0, runs 200 -> 220.
        assert tiny_workload.span() == 220

    def test_total_area(self, tiny_workload):
        expected = 8 * 100 + 16 * 50 + 32 * 200 + 4 * 25
        assert tiny_workload.total_area() == expected

    def test_offered_load_uses_submit_span(self, tiny_workload):
        load = tiny_workload.offered_load(32)
        assert load == pytest.approx(tiny_workload.total_area() / (32 * 30))

    def test_offered_load_zero_for_degenerate_cases(self):
        assert make_workload([make_job(1)]).offered_load(32) == 0.0
        assert make_workload([]).offered_load(32) == 0.0

    def test_max_processors_and_populations(self, tiny_workload):
        assert tiny_workload.max_processors() == 32
        assert tiny_workload.users() == [1]
        assert tiny_workload.groups() == [1]
        assert tiny_workload.executables() == [1]


class TestTransformations:
    def test_sorted_by_submit(self):
        jobs = [make_job(1, submit=50), make_job(2, submit=0)]
        ordered = make_workload(jobs).sorted_by_submit()
        assert [j.job_number for j in ordered] == [2, 1]

    def test_renumbered_rewrites_ids_and_dependencies(self):
        jobs = [
            make_job(10, submit=0),
            make_job(20, submit=5, preceding_job=10, think_time=5),
        ]
        renumbered = make_workload(jobs).renumbered()
        assert [j.job_number for j in renumbered] == [1, 2]
        assert renumbered[1].preceding_job == 1

    def test_renumbered_drops_dangling_dependencies(self):
        jobs = [make_job(5, submit=0, preceding_job=99, think_time=10)]
        renumbered = make_workload(jobs).renumbered()
        assert renumbered[0].preceding_job == MISSING
        assert renumbered[0].think_time == MISSING

    def test_scale_load_changes_offered_load_proportionally(self, lublin_workload):
        base = lublin_workload.offered_load(64)
        scaled = lublin_workload.scale_load(1.5)
        assert scaled.offered_load(64) == pytest.approx(1.5 * base, rel=0.05)
        assert len(scaled) == len(lublin_workload)

    def test_scale_load_requires_positive_factor(self, tiny_workload):
        with pytest.raises(ValueError):
            tiny_workload.scale_load(0)

    def test_truncate(self, tiny_workload):
        head = tiny_workload.truncate(2)
        assert len(head) == 2
        with pytest.raises(ValueError):
            tiny_workload.truncate(-1)

    def test_shift_origin(self):
        jobs = [make_job(1, submit=100), make_job(2, submit=160)]
        shifted = make_workload(jobs).shift_origin()
        assert [j.submit_time for j in shifted] == [0, 60]

    def test_shift_origin_empty_workload(self):
        assert len(make_workload([]).shift_origin()) == 0
