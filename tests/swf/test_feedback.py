"""Unit tests for feedback annotation and session extraction."""

from __future__ import annotations

import pytest

from repro.core.swf import MISSING, annotate_feedback, sessions_of, strip_feedback, validate
from tests.conftest import make_job, make_workload


def user_sequence():
    """User 1 submits three dependent jobs; user 2 submits one unrelated job."""
    return [
        make_job(1, submit=0, wait=0, runtime=100, user_id=1),
        # Submitted 50 s after job 1 finished (100): within the threshold.
        make_job(2, submit=150, wait=0, runtime=100, user_id=1),
        # Submitted 10 h after job 2 finished: a new session.
        make_job(3, submit=250 + 36000, wait=0, runtime=100, user_id=1),
        make_job(4, submit=300, wait=0, runtime=50, user_id=2),
    ]


class TestAnnotateFeedback:
    def test_dependencies_inserted_within_threshold(self):
        workload = make_workload(sorted(user_sequence(), key=lambda j: j.submit_time))
        workload = workload.renumbered()
        annotated, stats = annotate_feedback(workload, max_think_time=1200)
        by_user1 = [j for j in annotated if j.user_id == 1]
        dependent = [j for j in by_user1 if j.has_dependency]
        assert len(dependent) == 1
        assert stats.annotated_jobs == 1
        assert dependent[0].think_time == 50

    def test_session_count(self):
        workload = make_workload(sorted(user_sequence(), key=lambda j: j.submit_time)).renumbered()
        _, stats = annotate_feedback(workload, max_think_time=1200)
        # user 1: two sessions (jobs 1-2, job 3); user 2: one session.
        assert stats.sessions == 3

    def test_annotated_workload_remains_valid(self, lublin_workload):
        annotated, _ = annotate_feedback(lublin_workload)
        assert validate(annotated).is_clean

    def test_jobs_submitted_before_predecessor_ends_not_linked(self):
        jobs = [
            make_job(1, submit=0, wait=0, runtime=1000, user_id=1),
            make_job(2, submit=10, wait=0, runtime=10, user_id=1),  # overlaps job 1
        ]
        annotated, stats = annotate_feedback(make_workload(jobs))
        assert stats.annotated_jobs == 0
        assert not annotated[1].has_dependency

    def test_negative_threshold_rejected(self, tiny_workload):
        with pytest.raises(ValueError):
            annotate_feedback(tiny_workload, max_think_time=-1)

    def test_stats_fraction(self):
        workload = make_workload(sorted(user_sequence(), key=lambda j: j.submit_time)).renumbered()
        _, stats = annotate_feedback(workload, max_think_time=1200)
        assert stats.annotated_fraction == pytest.approx(1 / 4)


class TestStripAndSessions:
    def test_strip_removes_all_dependencies(self):
        workload = make_workload(sorted(user_sequence(), key=lambda j: j.submit_time)).renumbered()
        annotated, _ = annotate_feedback(workload, max_think_time=1200)
        stripped = strip_feedback(annotated)
        assert all(not j.has_dependency for j in stripped)
        assert all(j.think_time == MISSING for j in stripped)

    def test_sessions_of_builds_chains(self):
        jobs = [
            make_job(1, submit=0, runtime=10, user_id=1),
            make_job(2, submit=20, runtime=10, user_id=1, preceding_job=1, think_time=10),
            make_job(3, submit=40, runtime=10, user_id=1, preceding_job=2, think_time=10),
            make_job(4, submit=100, runtime=10, user_id=2),
        ]
        sessions = sessions_of(make_workload(jobs))
        lengths = sorted(len(chain) for chain in sessions)
        assert lengths == [1, 3]

    def test_sessions_ordered_by_first_submit(self):
        jobs = [
            make_job(1, submit=50, runtime=10, user_id=2),
            make_job(2, submit=0, runtime=10, user_id=1),
        ]
        sessions = sessions_of(make_workload(jobs).sorted_by_submit().renumbered())
        assert sessions[0][0].submit_time == 0
