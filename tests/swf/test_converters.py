"""Unit tests for the raw-accounting-log converters."""

from __future__ import annotations

import pytest

from repro.core.swf import (
    ConversionError,
    MISSING,
    convert_accounting_csv,
    convert_ipsc_log,
    validate,
)

CSV_LOG = """\
job_id,user,group,queue,submit_ts,start_ts,end_ts,processors,requested_processors,requested_seconds,mem_kb,requested_mem_kb,cpu_seconds,exit_status,executable,partition
A-17,alice,physics,batch,1000,1100,1400,16,16,600,2048,4096,280,0,solver,main
B-03,bob,chem,interactive,1010,1010,1040,1,1,60,128,256,25,0,shell,main
A-18,alice,physics,batch,1200,1500,2600,32,32,1800,4096,4096,1000,137,solver,main
"""

IPSC_LOG = """\
# user exe nodes submit runtime class
alice fft 32 0 120 batch
bob qcd 64 300 3600 batch
alice fft 1 500 15 interactive
"""


class TestAccountingCsv:
    def test_basic_conversion(self):
        workload = convert_accounting_csv(CSV_LOG, computer="Test SP2", max_nodes=64)
        assert len(workload) == 3
        assert validate(workload).is_clean
        # Sorted by submit and zero-origin.
        assert workload[0].submit_time == 0
        assert [j.job_number for j in workload] == [1, 2, 3]

    def test_times_derived_from_timestamps(self):
        workload = convert_accounting_csv(CSV_LOG)
        first = workload[0]  # alice's A-17 submitted at 1000
        assert first.wait_time == 100
        assert first.run_time == 300

    def test_exit_status_mapping(self):
        workload = convert_accounting_csv(CSV_LOG)
        statuses = [j.status for j in workload]
        assert statuses.count(1) == 2  # exit 0 -> completed
        assert statuses.count(0) == 1  # exit 137 -> killed

    def test_identities_are_anonymized_incrementally(self):
        workload = convert_accounting_csv(CSV_LOG)
        assert sorted(set(j.user_id for j in workload)) == [1, 2]
        assert sorted(set(j.group_id for j in workload)) == [1, 2]

    def test_interactive_queue_maps_to_zero(self):
        workload = convert_accounting_csv(CSV_LOG)
        interactive = [j for j in workload if j.is_interactive]
        assert len(interactive) == 1
        assert interactive[0].allocated_processors == 1

    def test_header_describes_machine(self):
        workload = convert_accounting_csv(CSV_LOG, computer="Test SP2", installation="Unit Test")
        assert workload.header.computer == "Test SP2"
        assert workload.header.max_nodes == 32  # max observed when not given

    def test_missing_required_column_rejected(self):
        with pytest.raises(ConversionError):
            convert_accounting_csv("job_id,user\n1,alice\n")

    def test_inconsistent_timestamps_rejected(self):
        bad = CSV_LOG.replace("1000,1100,1400", "1000,900,1400")
        with pytest.raises(ConversionError):
            convert_accounting_csv(bad)

    def test_empty_csv_rejected(self):
        with pytest.raises(ConversionError):
            convert_accounting_csv("")

    def test_missing_optional_values_become_missing(self):
        text = (
            "job_id,user,group,queue,submit_ts,start_ts,end_ts,processors\n"
            "1,alice,,batch,100,150,250,8\n"
        )
        workload = convert_accounting_csv(text)
        assert workload[0].used_memory == MISSING
        assert workload[0].group_id == MISSING


class TestIpscLog:
    def test_basic_conversion(self):
        workload = convert_ipsc_log(IPSC_LOG)
        assert len(workload) == 3
        assert validate(workload).is_clean
        assert workload.header.max_nodes == 128

    def test_power_of_two_enforced(self):
        bad = IPSC_LOG.replace(" 32 ", " 33 ")
        with pytest.raises(ConversionError):
            convert_ipsc_log(bad)

    def test_interactive_class_detected(self):
        workload = convert_ipsc_log(IPSC_LOG)
        assert sum(1 for j in workload if j.is_interactive) == 1

    def test_wrong_field_count_rejected(self):
        with pytest.raises(ConversionError):
            convert_ipsc_log("alice fft 32 0 120\n")

    def test_comment_lines_skipped(self):
        workload = convert_ipsc_log("; comment\n" + IPSC_LOG)
        assert len(workload) == 3

    def test_repeated_executable_gets_same_id(self):
        workload = convert_ipsc_log(IPSC_LOG)
        fft_jobs = [j for j in workload if j.executable_id == 1]
        assert len(fft_jobs) == 2
