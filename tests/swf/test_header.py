"""Unit tests for SWF header comments."""

from __future__ import annotations

import pytest

from repro.core.swf import RequestedTimeKind, SWFHeader
from repro.core.swf.header import HeaderEntry


class TestBasicAccess:
    def test_add_and_get(self):
        header = SWFHeader().add("Computer", "iPSC/860").add("MaxNodes", 128)
        assert header.get("Computer") == "iPSC/860"
        assert header.get_int("MaxNodes") == 128

    def test_get_is_case_insensitive(self):
        header = SWFHeader().add("MaxNodes", 64)
        assert header.get("maxnodes") == "64"

    def test_get_all_preserves_order(self):
        header = SWFHeader().add("Note", "first").add("Note", "second")
        assert header.get_all("Note") == ["first", "second"]
        assert header.notes == ["first", "second"]

    def test_set_replaces_all_occurrences(self):
        header = SWFHeader().add("Note", "a").add("Note", "b")
        header.set("Note", "only")
        assert header.get_all("Note") == ["only"]

    def test_missing_label_returns_default(self):
        header = SWFHeader()
        assert header.get("Computer") is None
        assert header.get_int("MaxNodes", 7) == 7
        assert "Computer" not in header

    def test_empty_label_rejected(self):
        with pytest.raises(ValueError):
            SWFHeader().add("  ", "value")

    def test_get_bool(self):
        header = SWFHeader().add("AllowOveruse", "Yes")
        assert header.get_bool("AllowOveruse") is True
        header.set("AllowOveruse", "No")
        assert header.get_bool("AllowOveruse") is False
        header.set("AllowOveruse", "maybe")
        assert header.get_bool("AllowOveruse", default=None) is None

    def test_entry_format(self):
        assert HeaderEntry("MaxNodes", "128").format() == "; MaxNodes: 128"

    def test_equality(self):
        a = SWFHeader().add("Version", 2)
        b = SWFHeader().add("Version", 2)
        assert a == b
        assert a != SWFHeader()


class TestTypedAccessors:
    def test_standard_header_carries_required_labels(self):
        header = SWFHeader.standard(
            computer="IBM SP2", installation="CTC", max_nodes=430, max_runtime=64800
        )
        assert header.version == 2
        assert header.computer == "IBM SP2"
        assert header.installation == "CTC"
        assert header.max_nodes == 430
        assert header.max_runtime == 64800
        assert header.allow_overuse is False
        assert "Queues" in header

    def test_max_nodes_falls_back_to_max_procs(self):
        header = SWFHeader().add("MaxProcs", 256)
        assert header.max_nodes == 256

    def test_get_int_parses_leading_number(self):
        header = SWFHeader().add("MaxNodes", "128 (4 partitions of 32)")
        assert header.max_nodes == 128

    def test_requested_time_kind_default_wallclock(self):
        assert SWFHeader().requested_time_kind is RequestedTimeKind.WALLCLOCK

    def test_requested_time_kind_cpu_from_note(self):
        header = SWFHeader().add("Note", "Requested time is average CPU time per processor")
        assert header.requested_time_kind is RequestedTimeKind.AVERAGE_CPU

    def test_known_and_unknown_labels(self):
        header = SWFHeader().add("MaxNodes", 1).add("MyCustomLabel", "x")
        assert header.known_labels() == ["MaxNodes"]
        assert header.unknown_labels() == ["MyCustomLabel"]
