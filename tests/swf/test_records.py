"""Unit tests for the SWFJob record and its derived quantities."""

from __future__ import annotations

import pytest

from repro.core.swf import FIELD_COUNT, FIELD_NAMES, MISSING, CompletionStatus, SWFJob
from tests.conftest import make_job


class TestConstruction:
    def test_defaults_are_missing(self):
        job = SWFJob(job_number=1)
        for name in FIELD_NAMES[1:]:
            assert getattr(job, name) == MISSING

    def test_job_number_must_be_positive(self):
        with pytest.raises(ValueError):
            SWFJob(job_number=0)

    def test_float_fields_coerced_when_integral(self):
        job = SWFJob(job_number=1, run_time=100.0)
        assert job.run_time == 100

    def test_non_integral_float_rejected(self):
        with pytest.raises(ValueError):
            SWFJob(job_number=1, run_time=100.5)

    def test_string_field_rejected(self):
        with pytest.raises(TypeError):
            SWFJob(job_number=1, run_time="fast")

    def test_bool_field_rejected(self):
        with pytest.raises(TypeError):
            SWFJob(job_number=1, status=True)

    def test_from_fields_round_trip(self):
        job = make_job(7, submit=100, runtime=250, processors=16)
        assert SWFJob.from_fields(job.to_fields()) == job

    def test_from_fields_wrong_length(self):
        with pytest.raises(ValueError):
            SWFJob.from_fields([1] * (FIELD_COUNT - 1))

    def test_replace_creates_modified_copy(self):
        job = make_job(1)
        changed = job.replace(run_time=999)
        assert changed.run_time == 999
        assert job.run_time == 100
        assert changed.job_number == job.job_number

    def test_records_are_hashable_and_frozen(self):
        job = make_job(1)
        with pytest.raises(AttributeError):
            job.run_time = 5  # type: ignore[misc]
        assert len({job, make_job(1)}) == 1


class TestDerivedTimes:
    def test_start_end_response(self):
        job = make_job(1, submit=100, wait=50, runtime=200)
        assert job.start_time == 150
        assert job.end_time == 350
        assert job.response_time == 250

    def test_unknown_times_propagate_none(self):
        job = SWFJob(job_number=1, submit_time=10)
        assert job.start_time is None
        assert job.end_time is None
        assert job.response_time is None

    def test_slowdown(self):
        job = make_job(1, wait=100, runtime=100)
        assert job.slowdown() == pytest.approx(2.0)

    def test_slowdown_undefined_for_zero_runtime(self):
        job = make_job(1, wait=100, runtime=0)
        assert job.slowdown() is None

    def test_bounded_slowdown_clamps_short_jobs(self):
        job = make_job(1, wait=100, runtime=1)
        assert job.bounded_slowdown(tau=10.0) == pytest.approx(101 / 10)
        # A long job is unaffected by the bound.
        long_job = make_job(2, wait=100, runtime=1000)
        assert long_job.bounded_slowdown(tau=10.0) == pytest.approx(long_job.slowdown())

    def test_bounded_slowdown_never_below_one(self):
        job = make_job(1, wait=0, runtime=5)
        assert job.bounded_slowdown(tau=10.0) == 1.0

    def test_bounded_slowdown_requires_positive_tau(self):
        with pytest.raises(ValueError):
            make_job(1).bounded_slowdown(tau=0)

    def test_area(self):
        job = make_job(1, runtime=100, processors=8)
        assert job.area == 800

    def test_processors_falls_back_to_requested(self):
        job = SWFJob(job_number=1, requested_processors=32)
        assert job.processors == 32


class TestPredicates:
    def test_completion_status_enum(self):
        assert make_job(1, status=1).completion_status is CompletionStatus.COMPLETED
        assert make_job(1, status=0).completion_status is CompletionStatus.KILLED
        assert make_job(1, status=-1).completion_status is CompletionStatus.UNKNOWN

    def test_out_of_range_status_maps_to_unknown(self):
        assert make_job(1, status=9).completion_status is CompletionStatus.UNKNOWN

    def test_summary_vs_partial_lines(self):
        assert make_job(1, status=1).is_summary_line
        assert not make_job(1, status=2).is_summary_line
        assert CompletionStatus.PARTIAL_LAST_KILLED.is_terminal_partial

    def test_interactive_queue_convention(self):
        assert make_job(1, queue_number=0).is_interactive
        assert not make_job(1, queue_number=1).is_interactive

    def test_dependency_predicate(self):
        assert not make_job(1).has_dependency
        assert make_job(2, preceding_job=1, think_time=30).has_dependency

    def test_requested_or_actual_time(self):
        assert make_job(1, runtime=100, requested_time=300).requested_or_actual_time() == 300
        assert make_job(1, runtime=100, requested_time=MISSING).requested_or_actual_time() == 100
