"""Unit tests for multi-line (checkpoint/swap-out) job records."""

from __future__ import annotations

import pytest

from repro.core.swf import (
    CompletionStatus,
    MISSING,
    expand_to_bursts,
    group_checkpointed,
    summarize_bursts,
)
from tests.conftest import make_job


class TestExpandToBursts:
    def test_line_layout_matches_standard(self):
        summary = make_job(1, submit=0, wait=5, runtime=300, status=1)
        lines = expand_to_bursts(summary, [100, 150, 50], swapped_out_gaps=[30, 60])
        assert len(lines) == 4
        assert lines[0] is summary
        # First burst carries the submit time, later bursts do not.
        assert lines[1].submit_time == 0
        assert lines[2].submit_time == MISSING
        assert lines[3].submit_time == MISSING
        # Later bursts carry the swapped-out gap as their wait time.
        assert lines[2].wait_time == 30
        assert lines[3].wait_time == 60
        # Status codes: 2, 2, then terminal 3 for a completed job.
        assert [l.status for l in lines[1:]] == [2, 2, 3]

    def test_killed_job_gets_terminal_code_4(self):
        summary = make_job(1, runtime=100, status=0)
        lines = expand_to_bursts(summary, [60, 40])
        assert lines[-1].status == CompletionStatus.PARTIAL_LAST_KILLED

    def test_runtime_mismatch_rejected(self):
        with pytest.raises(ValueError):
            expand_to_bursts(make_job(1, runtime=100), [50, 30])

    def test_gap_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            expand_to_bursts(make_job(1, runtime=100), [50, 50], swapped_out_gaps=[1, 2, 3])

    def test_empty_bursts_rejected(self):
        with pytest.raises(ValueError):
            expand_to_bursts(make_job(1, runtime=100), [])

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            expand_to_bursts(make_job(1, runtime=100), [110, -10])
        with pytest.raises(ValueError):
            expand_to_bursts(make_job(1, runtime=100), [50, 50], swapped_out_gaps=[-1])


class TestGroupAndSummarize:
    def test_group_checkpointed_pairs_summary_with_bursts(self):
        summary = make_job(1, runtime=200, status=1)
        lines = expand_to_bursts(summary, [120, 80], swapped_out_gaps=[45])
        other = make_job(2, submit=10, runtime=50)
        grouped = group_checkpointed(lines + [other])
        assert len(grouped) == 1
        record = grouped[0]
        assert record.burst_count == 2
        assert record.total_burst_runtime == 200
        assert record.swapped_out_time == 45

    def test_bursts_without_summary_are_ignored(self):
        orphan = make_job(3, status=2)
        assert group_checkpointed([orphan]) == []

    def test_summarize_bursts_rebuilds_summary(self):
        summary = make_job(1, submit=0, wait=5, runtime=300, status=1)
        lines = expand_to_bursts(summary, [100, 200])
        rebuilt = summarize_bursts(lines[1:])
        assert rebuilt.run_time == 300
        assert rebuilt.status == 1
        assert rebuilt.submit_time == 0

    def test_summarize_killed_bursts(self):
        summary = make_job(1, runtime=150, status=0)
        lines = expand_to_bursts(summary, [150])
        rebuilt = summarize_bursts(lines[1:])
        assert rebuilt.status == 0

    def test_summarize_requires_terminal_burst(self):
        with pytest.raises(ValueError):
            summarize_bursts([make_job(1, status=2)])

    def test_summarize_requires_nonempty_input(self):
        with pytest.raises(ValueError):
            summarize_bursts([])
