"""Unit tests for the SWF consistency rules."""

from __future__ import annotations

import pytest

from repro.core.swf import MISSING, Severity, validate
from repro.core.swf.checkpoint import expand_to_bursts
from tests.conftest import make_job, make_workload


def rules_of(report):
    return {issue.rule for issue in report.issues}


class TestCleanWorkloads:
    def test_valid_workload_is_clean(self, tiny_workload):
        report = validate(tiny_workload)
        assert report.is_clean
        assert report.errors == []

    def test_model_workload_with_missing_fields_is_clean(self):
        jobs = [
            make_job(1, submit=0, wait=MISSING, status=MISSING, used_memory=MISSING),
            make_job(2, submit=10, wait=MISSING, status=MISSING, used_memory=MISSING),
        ]
        assert validate(make_workload(jobs)).is_clean

    def test_summary_string_mentions_counts(self, tiny_workload):
        assert "error" in validate(tiny_workload).summary()


class TestNumberingAndOrder:
    def test_non_sequential_numbering_flagged(self):
        jobs = [make_job(1, submit=0), make_job(3, submit=10)]
        report = validate(make_workload(jobs))
        assert not report.is_clean
        assert "job-numbering" in rules_of(report)

    def test_duplicate_numbering_flagged(self):
        jobs = [make_job(1, submit=0), make_job(1, submit=10)]
        report = validate(make_workload(jobs))
        assert "job-numbering" in rules_of(report)

    def test_unsorted_submit_times_flagged(self):
        jobs = [make_job(1, submit=100), make_job(2, submit=50)]
        report = validate(make_workload(jobs))
        assert "submit-order" in rules_of(report)

    def test_nonzero_origin_flagged(self):
        jobs = [make_job(1, submit=500), make_job(2, submit=600)]
        report = validate(make_workload(jobs))
        assert "time-origin" in rules_of(report)


class TestFieldDomains:
    def test_negative_value_flagged(self):
        report = validate(make_workload([make_job(1, run_time=-5)]))
        assert "field-domain" in rules_of(report)
        assert not report.is_clean

    def test_zero_user_id_flagged(self):
        report = validate(make_workload([make_job(1, user_id=0)]))
        assert "field-domain" in rules_of(report)

    def test_invalid_status_flagged(self):
        report = validate(make_workload([make_job(1, status=7)]))
        assert "field-domain" in rules_of(report)

    def test_queue_zero_is_legal(self):
        report = validate(make_workload([make_job(1, queue_number=0)]))
        assert report.is_clean


class TestDependencies:
    def test_forward_reference_flagged(self):
        jobs = [make_job(1, submit=0, preceding_job=2, think_time=5), make_job(2, submit=10)]
        report = validate(make_workload(jobs))
        assert "feedback" in rules_of(report)
        assert not report.is_clean

    def test_unknown_preceding_job_flagged(self):
        jobs = [make_job(1, submit=0), make_job(2, submit=10, preceding_job=99, think_time=5)]
        report = validate(make_workload(jobs))
        assert not report.is_clean

    def test_missing_think_time_is_only_a_warning(self):
        jobs = [make_job(1, submit=0), make_job(2, submit=10, preceding_job=1)]
        report = validate(make_workload(jobs))
        assert report.is_clean
        assert any(i.severity is Severity.WARNING for i in report.issues)


class TestHeaderLimits:
    def test_oversized_job_is_a_warning(self):
        report = validate(make_workload([make_job(1, processors=64)], machine_size=32))
        assert report.is_clean
        assert "header-limits" in rules_of(report)

    def test_overuse_warning_when_disallowed(self):
        job = make_job(1, runtime=500, requested_time=100)
        report = validate(make_workload([job]))
        assert "overuse" in rules_of(report)
        assert report.is_clean


class TestCheckpointRules:
    def test_valid_checkpoint_group_passes(self):
        summary = make_job(1, submit=0, runtime=300)
        lines = expand_to_bursts(summary, [100, 100, 100], [10, 20])
        report = validate(make_workload(lines))
        assert report.is_clean

    def test_partial_without_summary_flagged(self):
        report = validate(make_workload([make_job(1, status=2)]))
        assert "checkpoint" in rules_of(report)
        assert not report.is_clean

    def test_nonterminal_last_burst_flagged(self):
        jobs = [make_job(1, status=1), make_job(1, submit=MISSING, status=2)]
        report = validate(make_workload(jobs))
        assert "checkpoint" in rules_of(report)

    def test_extra_submit_time_on_later_burst_flagged(self):
        summary = make_job(1, submit=0, runtime=200)
        lines = expand_to_bursts(summary, [100, 100])
        bad = [lines[0], lines[1], lines[2].replace(submit_time=50)]
        report = validate(make_workload(bad))
        assert not report.is_clean

    def test_runtime_mismatch_is_a_warning(self):
        summary = make_job(1, submit=0, runtime=300)
        lines = expand_to_bursts(summary, [150, 150])
        tampered = [lines[0], lines[1].replace(run_time=10), lines[2]]
        report = validate(make_workload(tampered))
        assert any(i.rule == "checkpoint" and i.severity is Severity.WARNING for i in report.issues)


class TestReportApi:
    def test_by_rule_counts(self):
        jobs = [make_job(1, submit=100, run_time=-1 * 5)]
        report = validate(make_workload(jobs))
        counts = report.by_rule()
        assert sum(counts.values()) == len(report.issues)

    def test_issue_string_mentions_job(self):
        report = validate(make_workload([make_job(1, user_id=0)]))
        assert any("job 1" in str(issue) for issue in report.issues)
