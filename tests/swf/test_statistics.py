"""Unit tests for workload descriptive statistics."""

from __future__ import annotations

import pytest

from repro.core.swf import MISSING, describe_distribution, summarize
from tests.conftest import make_job, make_workload


class TestDescribeDistribution:
    def test_basic_summary(self):
        summary = describe_distribution([1, 2, 3, 4, 5])
        assert summary.count == 5
        assert summary.mean == pytest.approx(3.0)
        assert summary.median == pytest.approx(3.0)
        assert summary.minimum == 1 and summary.maximum == 5

    def test_empty_sample(self):
        summary = describe_distribution([])
        assert summary.count == 0
        assert summary.mean == 0.0

    def test_cv_of_constant_sample_is_zero(self):
        assert describe_distribution([7, 7, 7]).cv == 0.0

    def test_none_values_filtered(self):
        assert describe_distribution([1, None, 3]).count == 2


class TestSummarize:
    def test_counts_and_fractions(self):
        jobs = [
            make_job(1, submit=0, runtime=100, processors=1, queue_number=0, user_id=1),
            make_job(2, submit=100, runtime=200, processors=4, queue_number=1, user_id=2),
            make_job(3, submit=200, runtime=300, processors=3, queue_number=1, user_id=1, status=0),
            make_job(4, submit=300, runtime=400, processors=8, queue_number=1, user_id=3),
        ]
        stats = summarize(make_workload(jobs), machine_size=32)
        assert stats.jobs == 4
        assert stats.users == 3
        assert stats.serial_fraction == pytest.approx(0.25)
        assert stats.power_of_two_fraction == pytest.approx(0.75)
        assert stats.interactive_fraction == pytest.approx(0.25)
        assert stats.killed_fraction == pytest.approx(0.25)
        assert stats.machine_size == 32

    def test_interarrival_statistics(self):
        jobs = [make_job(i + 1, submit=i * 100, runtime=10) for i in range(5)]
        stats = summarize(make_workload(jobs))
        assert stats.interarrival.mean == pytest.approx(100.0)
        assert stats.interarrival.cv == pytest.approx(0.0)

    def test_requested_time_accuracy(self):
        jobs = [make_job(1, runtime=100, requested_time=200), make_job(2, submit=10, runtime=50, requested_time=100)]
        stats = summarize(make_workload(jobs))
        assert stats.requested_time_accuracy == pytest.approx(0.5)

    def test_accuracy_none_when_no_estimates(self):
        jobs = [make_job(1, requested_time=MISSING)]
        assert summarize(make_workload(jobs)).requested_time_accuracy is None

    def test_machine_size_defaults_to_header(self, tiny_workload):
        stats = summarize(tiny_workload)
        assert stats.machine_size == 32

    def test_size_histogram(self, tiny_workload):
        stats = summarize(tiny_workload)
        assert stats.size_histogram == {8: 1, 16: 1, 32: 1, 4: 1}

    def test_dependency_fraction(self):
        jobs = [
            make_job(1, submit=0),
            make_job(2, submit=10, preceding_job=1, think_time=5),
        ]
        stats = summarize(make_workload(jobs))
        assert stats.with_dependency_fraction == pytest.approx(0.5)

    def test_as_dict_round_numbers(self, lublin_workload):
        stats = summarize(lublin_workload)
        flat = stats.as_dict()
        assert flat["jobs"] == len(lublin_workload)
        assert 0 < flat["offered_load"] < 2
        assert set(flat) >= {"mean_size", "mean_runtime", "interarrival_cv"}

    def test_partial_lines_excluded(self):
        jobs = [make_job(1, runtime=100), make_job(1, status=2, runtime=40)]
        stats = summarize(make_workload(jobs))
        assert stats.jobs == 1
