"""Parser/writer tests, including the property-based round-trip guarantee."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.swf import (
    MISSING,
    SWFJob,
    SWFParseError,
    Workload,
    parse_swf,
    parse_swf_text,
    write_swf,
    write_swf_text,
)
from repro.core.swf.parser import parse_swf_stream
from repro.core.swf.writer import format_job_line
from tests.conftest import make_job, make_workload

SAMPLE = """\
; Version: 2
; Computer: Test MPP
; MaxNodes: 64
; Note: tiny example
;
1 0 10 100 8 90 1024 8 200 2048 1 1 1 1 1 1 -1 -1
2 50 0 60 16 55 512 16 120 1024 1 2 1 2 1 1 -1 -1
3 80 5 30 4 25 256 4 60 512 0 1 1 1 0 1 1 20
"""


class TestParsing:
    def test_parse_sample(self):
        workload = parse_swf_text(SAMPLE, name="sample")
        assert len(workload) == 3
        assert workload.header.max_nodes == 64
        assert workload.header.computer == "Test MPP"
        assert workload[0].run_time == 100
        assert workload[2].preceding_job == 1
        assert workload[2].is_interactive

    def test_job_ids_match_line_numbers(self):
        workload = parse_swf_text(SAMPLE)
        assert [j.job_number for j in workload] == [1, 2, 3]

    def test_comments_and_blank_lines_ignored(self):
        text = "; comment only\n\n" + "1 " + " ".join(["-1"] * 17) + "\n; trailing comment\n"
        workload = parse_swf_text(text)
        assert len(workload) == 1

    def test_wrong_field_count_raises(self):
        with pytest.raises(SWFParseError) as exc:
            parse_swf_text("1 2 3\n")
        assert "line 1" in str(exc.value)

    def test_non_numeric_field_raises(self):
        bad = "1 0 0 abc " + " ".join(["-1"] * 14)
        with pytest.raises(SWFParseError):
            parse_swf_text(bad)

    def test_float_tokens_accepted(self):
        line = "1 0 0 100.0 8 " + " ".join(["-1"] * 13)
        workload = parse_swf_text(line)
        assert workload[0].run_time == 100

    def test_lenient_mode_skips_bad_lines(self):
        import io

        text = SAMPLE + "this is not a job line with 18 fields\n"
        workload, report = parse_swf_stream(io.StringIO(text), strict=False)
        assert len(workload) == 3
        assert report.skipped_count == 1
        assert report.job_lines == 3

    def test_header_comments_after_jobs_not_treated_as_header(self):
        text = "1 " + " ".join(["-1"] * 17) + "\n; MaxNodes: 9999\n"
        workload = parse_swf_text(text)
        assert workload.header.max_nodes is None

    def test_parse_file_roundtrip(self, tmp_path, tiny_workload):
        path = tmp_path / "trace.swf"
        write_swf(tiny_workload, path)
        loaded = parse_swf(path)
        assert loaded.jobs == tiny_workload.jobs
        assert loaded.name == "trace"

    def test_parse_file_with_report(self, tmp_path, tiny_workload):
        path = tmp_path / "trace.swf"
        write_swf(tiny_workload, path)
        workload, report = parse_swf(path, with_report=True)
        assert report.job_lines == len(tiny_workload)
        assert report.skipped_count == 0


class TestWriting:
    def test_format_job_line_has_18_fields(self):
        line = format_job_line(make_job(1))
        assert len(line.split()) == 18

    def test_written_header_precedes_jobs(self, tiny_workload):
        text = write_swf_text(tiny_workload)
        lines = text.strip().splitlines()
        job_lines = [l for l in lines if not l.startswith(";")]
        assert len(job_lines) == 4
        assert lines[0].startswith(";")

    def test_aligned_output_parses_identically(self, tiny_workload):
        plain = parse_swf_text(write_swf_text(tiny_workload, align=False))
        aligned = parse_swf_text(write_swf_text(tiny_workload, align=True))
        assert plain.jobs == aligned.jobs

    def test_write_creates_directories(self, tmp_path, tiny_workload):
        path = tmp_path / "nested" / "dir" / "trace.swf"
        write_swf(tiny_workload, path)
        assert path.exists()


# ----------------------------------------------------------------------
# property-based round trip: any valid job survives write -> parse intact
# ----------------------------------------------------------------------
field_value = st.one_of(st.just(MISSING), st.integers(min_value=0, max_value=10**9))


@st.composite
def swf_jobs(draw, number):
    values = [number] + [draw(field_value) for _ in range(17)]
    # Status must be a legal code.
    values[10] = draw(st.sampled_from([-1, 0, 1, 2, 3, 4]))
    return SWFJob.from_fields(values)


@given(st.data())
@settings(max_examples=100, deadline=None)
def test_round_trip_preserves_every_field(data):
    count = data.draw(st.integers(min_value=1, max_value=10))
    jobs = [data.draw(swf_jobs(number=i + 1)) for i in range(count)]
    workload = make_workload(jobs)
    reparsed = parse_swf_text(write_swf_text(workload))
    assert reparsed.jobs == workload.jobs
    assert [e.label for e in reparsed.header.entries] == [
        e.label for e in workload.header.entries
    ]
