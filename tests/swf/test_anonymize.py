"""Unit tests for identity anonymization."""

from __future__ import annotations

import pytest

from repro.core.swf import IdentityMapper, MISSING, anonymize_workload
from tests.conftest import make_job, make_workload


class TestIdentityMapper:
    def test_incremental_numbering_by_first_appearance(self):
        mapper = IdentityMapper()
        assert mapper.map("alice") == 1
        assert mapper.map("bob") == 2
        assert mapper.map("alice") == 1
        assert len(mapper) == 2

    def test_missing_inputs_map_to_missing(self):
        mapper = IdentityMapper()
        assert mapper.map(None) == MISSING
        assert mapper.map("") == MISSING
        assert mapper.map(MISSING) == MISSING
        assert len(mapper) == 0

    def test_inverse_mapping(self):
        mapper = IdentityMapper()
        mapper.map("x")
        mapper.map("y")
        assert mapper.inverse() == {1: "x", 2: "y"}

    def test_custom_start(self):
        mapper = IdentityMapper(start=5)
        assert mapper.map("a") == 5

    def test_invalid_start_rejected(self):
        with pytest.raises(ValueError):
            IdentityMapper(start=0)

    def test_mapping_copy_is_isolated(self):
        mapper = IdentityMapper()
        mapper.map("a")
        snapshot = mapper.mapping
        snapshot["b"] = 99
        assert "b" not in mapper.mapping


class TestAnonymizeWorkload:
    def test_ids_become_dense_by_first_appearance(self):
        jobs = [
            make_job(1, submit=0, user_id=500, group_id=77, executable_id=12),
            make_job(2, submit=1, user_id=300, group_id=77, executable_id=90),
            make_job(3, submit=2, user_id=500, group_id=88, executable_id=12),
        ]
        anonymized = anonymize_workload(make_workload(jobs))
        assert [j.user_id for j in anonymized] == [1, 2, 1]
        assert [j.group_id for j in anonymized] == [1, 1, 2]
        assert [j.executable_id for j in anonymized] == [1, 2, 1]

    def test_missing_identities_stay_missing(self):
        jobs = [make_job(1, user_id=MISSING, group_id=MISSING, executable_id=MISSING)]
        anonymized = anonymize_workload(make_workload(jobs))
        assert anonymized[0].user_id == MISSING

    def test_other_fields_untouched(self, tiny_workload):
        anonymized = anonymize_workload(tiny_workload)
        for before, after in zip(tiny_workload, anonymized):
            assert before.run_time == after.run_time
            assert before.allocated_processors == after.allocated_processors
            assert before.submit_time == after.submit_time

    def test_header_preserved(self, tiny_workload):
        anonymized = anonymize_workload(tiny_workload)
        assert anonymized.header == tiny_workload.header
